"""RI / RI-DS static subgraph matching with a temporal post-check.

The paper's primary baseline: *"We established a baseline using a static
subgraph matching algorithm RI-DS [26], with an additional temporal
constraint."*  RI (Bonnici et al., 2013) is a direct-enumeration matcher
built around the **GreatestConstraintFirst** vertex ordering; the **-DS**
variant additionally precomputes label/degree-compatible domains for each
query vertex and checks them during search.

Adaptation to TCSM: RI-DS enumerates *static* embeddings on the
de-temporal graph, completely ignoring timestamps; each embedding is then
post-processed by enumerating the per-edge timestamp combinations that
satisfy the constraint set (the same joint solver TCSM-V2V uses at its
leaves).  On temporally dense graphs almost all static embeddings die in
post-processing — which is exactly why the paper reports RI-DS taking
kiloseconds where TCSM-EVE takes seconds.
"""

from __future__ import annotations

import time
from collections.abc import Iterator, Sequence
from typing import cast

from ..core.match import Match
from ..core.options import RunContext, resolve_run_context
from ..core.stats import SearchStats
from ..core.timestamps import iter_timestamp_assignments
from ..errors import AlgorithmError
from ..graphs import (
    GraphView,
    QueryGraph,
    TemporalConstraints,
    ensure_snapshot,
)
from ..obs import NULL_TRACER, TraceSink

__all__ = ["RIMatcher", "greatest_constraint_first_order"]


def greatest_constraint_first_order(query: QueryGraph) -> list[int]:
    """RI's GreatestConstraintFirst vertex ordering.

    Iteratively select the unordered vertex maximising, in priority order:
    (1) edges to already-ordered vertices, (2) edges to unordered vertices
    that neighbour an ordered vertex, (3) remaining degree.  Seeded at the
    maximum-degree vertex; ties broken by vertex id for determinism.
    """
    n = query.num_vertices
    ordered: list[int] = []
    in_order = [False] * n
    seed = min(range(n), key=lambda u: (-query.degree(u), u))
    ordered.append(seed)
    in_order[seed] = True
    while len(ordered) < n:
        frontier_set: set[int] = set()
        for w in ordered:
            frontier_set |= query.neighbors(w)

        def rank(u: int) -> tuple[int, int, int, int]:
            neighbors = query.neighbors(u)
            v_vis = sum(1 for w in neighbors if in_order[w])
            v_neig = sum(
                1
                for w in neighbors
                if not in_order[w] and w in frontier_set
            )
            v_unv = sum(
                1
                for w in neighbors
                if not in_order[w] and w not in frontier_set
            )
            return (-v_vis, -v_neig, -v_unv, u)

        chosen = min(
            (u for u in range(n) if not in_order[u]), key=rank
        )
        ordered.append(chosen)
        in_order[chosen] = True
    return ordered


class RIMatcher:
    """RI / RI-DS adapted to TCSM by temporal post-filtering.

    Parameters
    ----------
    use_domains:
        True (default) gives RI-DS: per-vertex domains from label +
        degree-dominance compatibility, consulted during search.  False
        gives plain RI (label-only checks during search).
    """

    name = "ri-ds"
    supports_partition = False

    def __init__(
        self,
        query: QueryGraph,
        constraints: TemporalConstraints,
        graph: GraphView,
        use_domains: bool = True,
        compile_graph: bool = True,
    ) -> None:
        if constraints.num_edges != query.num_edges:
            raise AlgorithmError(
                f"constraints expect {constraints.num_edges} query edges, "
                f"query has {query.num_edges}"
            )
        self.query = query
        self.constraints = constraints
        self.graph = graph
        self.compile_graph = compile_graph
        #: Resolved data-plane view; ``prepare`` swaps in the frozen
        #: snapshot when ``compile_graph`` is set.
        self._view: GraphView = graph
        self.use_domains = use_domains
        if not use_domains:
            self.name = "ri"
        #: Filter counters accumulated during ``prepare`` (the engine
        #: merges them into the run stats exactly once per query).
        self.prepare_stats = SearchStats()
        self._prepared = False

    def prepare(self, tracer: TraceSink | None = None) -> None:
        """Compute the GCF order and (for -DS) the vertex domains."""
        if self._prepared:
            return
        tr = tracer if tracer is not None else NULL_TRACER
        if self.compile_graph:
            with tr.span("compile-snapshot"):
                self._view = ensure_snapshot(self.graph)
        query = self.query
        data = self._view.static_view()
        self._order = greatest_constraint_first_order(query)
        self._position = [0] * query.num_vertices
        for pos, u in enumerate(self._order):
            self._position[u] = pos
        domain_counters = self.prepare_stats.filter("domains")
        with tr.span(
            "candidate-filter:domains", vertices=query.num_vertices
        ) as sp:
            domains: list[frozenset[int]] = []
            for u in query.vertices():
                passing: set[int] = set()
                for v in self._view.vertices_with_label(query.label(u)):
                    domain_counters.considered += 1
                    if self.use_domains and (
                        data.in_degree(v) < query.in_degree(u)
                        or data.out_degree(v) < query.out_degree(u)
                    ):
                        domain_counters.pruned += 1
                        continue
                    passing.add(v)
                domains.append(frozenset(passing))
            self._domains = domains
            sp.annotate(**domain_counters.as_dict())
        # Structural checks per position: edges towards ordered vertices.
        self._edge_checks: list[tuple[tuple[int, bool, bool], ...]] = []
        for pos, u in enumerate(self._order):
            checks: list[tuple[int, bool, bool]] = []
            for w in query.neighbors(u):
                if self._position[w] < pos:
                    checks.append(
                        (w, query.has_edge(u, w), query.has_edge(w, u))
                    )
            self._edge_checks.append(tuple(checks))
        self._prepared = True

    def run(
        self,
        ctx: RunContext | None = None,
        *,
        limit: int | None = None,
        stats: SearchStats | None = None,
        deadline: float | None = None,
    ) -> Iterator[Match]:
        """Enumerate static embeddings, then timestamp assignments."""
        context = resolve_run_context(
            ctx, limit=limit, stats=stats, deadline=deadline
        )
        self.prepare()
        return self._run(context)

    def _run(self, ctx: RunContext) -> Iterator[Match]:
        limit = ctx.limit
        deadline = ctx.deadline
        search_stats = ctx.stats
        query = self.query
        graph = self._view
        n = query.num_vertices
        vertex_map: list[int | None] = [None] * n
        # Read-only view: _edge_checks only names vertices ordered earlier,
        # so every position read below is bound.
        bound = cast("list[int]", vertex_map)
        used: set[int] = set()
        emitted = 0
        inj_counters = search_stats.filter("injectivity")
        structure_counters = search_stats.filter("structure")

        def dfs(pos: int) -> Iterator[Match]:
            if deadline is not None and time.monotonic() > deadline:
                search_stats.budget_exhausted = True
                search_stats.deadline_hit = True
                return
            if pos == n:
                yield from self._temporal_postcheck(
                    vertex_map, search_stats, pos
                )
                return
            search_stats.nodes_expanded += 1
            u = self._order[pos]
            produced = False
            for v in self._domains[u]:
                search_stats.candidates_generated += 1
                inj_counters.considered += 1
                if v in used:
                    inj_counters.pruned += 1
                    search_stats.record_fail(pos + 1)
                    continue
                search_stats.validations += 1
                structure_counters.considered += 1
                ok = True
                for w, need_uw, need_wu in self._edge_checks[pos]:
                    dw = bound[w]
                    if need_uw and not graph.has_pair(v, dw):
                        ok = False
                        break
                    if need_wu and not graph.has_pair(dw, v):
                        ok = False
                        break
                if not ok:
                    structure_counters.pruned += 1
                    search_stats.record_fail(pos + 1)
                    continue
                produced = True
                vertex_map[u] = v
                used.add(v)
                yield from dfs(pos + 1)
                used.discard(v)
                vertex_map[u] = None
                if limit is not None and emitted >= limit:
                    return
            if not produced:
                search_stats.record_fail(pos + 1)

        for match in dfs(0):
            emitted += 1
            search_stats.matches += 1
            yield match
            if limit is not None and emitted >= limit:
                search_stats.budget_exhausted = True
                return

    def _temporal_postcheck(
        self,
        vertex_map: list[int | None],
        stats: SearchStats,
        pos: int,
    ) -> Iterator[Match]:
        """The 'additional temporal constraint' applied per embedding."""
        graph = self._view
        query = self.query
        complete = cast("list[int]", vertex_map)  # all positions bound here
        options: list[Sequence[int]] = []
        for index, (a, b) in enumerate(query.edges):
            required = query.edge_label(index)
            if required is None:
                times_list = graph.timestamps_list(complete[a], complete[b])
            else:
                times_list = graph.timestamps_with_label(
                    complete[a], complete[b], required
                )
            stats.timestamps_expanded += len(times_list)
            options.append(times_list)
        post_counters = stats.filter("temporal-postfilter")
        post_counters.considered += 1
        final_map = tuple(complete)
        found = False
        # Naive enumeration (use_windows=False): the baseline has no STN
        # machinery; this is the honest cost of bolting TC onto RI-DS.
        for times in iter_timestamp_assignments(
            options, self.constraints, use_windows=False
        ):
            found = True
            yield Match.from_vertex_map(self.query, final_map, times)
        if not found:
            post_counters.pruned += 1
            stats.record_fail(pos)
