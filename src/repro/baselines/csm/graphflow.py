"""Graphflow baseline [29]: index-free continuous matching.

Graphflow evaluates each edge insertion by directly re-enumerating, with
the new edge pinned — no auxiliary index is maintained, so insertion
processing is free but every search pays full price.  That is exactly the
shared :class:`CSMMatcherBase` machinery with the default (always-true)
candidate test.
"""

from __future__ import annotations

from .stream import CSMMatcherBase

__all__ = ["GraphflowMatcher"]


class GraphflowMatcher(CSMMatcherBase):
    """Index-free delta enumeration (Graphflow)."""

    name = "graphflow"
