"""CaLiG baseline [12]: candidate lighting with local look-ahead.

CaLiG maintains a "candidate lighting graph": a data vertex is *lit* for a
query vertex only while its neighbourhood can recursively support the
query vertex's neighbourhood.  We reproduce the lighting test as a
depth-bounded local consistency check evaluated lazily during the pinned
search and memoised per insertion: ``lit(u, v, depth)`` holds when labels
match and, for every query edge at ``u``, some data neighbour of ``v`` in
the right direction is lit for the other endpoint at ``depth - 1``.

Depth 2 captures the lighting/turn-off propagation one step beyond plain
label-degree filtering while keeping per-insertion cost bounded; the test
is a necessary condition, so no match is ever lost.
"""

from __future__ import annotations

from .stream import CSMMatcherBase

__all__ = ["CaLiGMatcher"]


class CaLiGMatcher(CSMMatcherBase):
    """Candidate-lighting delta enumeration (CaLiG)."""

    name = "calig"

    #: Look-ahead radius of the lighting test.
    depth = 2

    def _on_prepare(self) -> None:
        self._memo: dict[tuple[int, int, int], bool] = {}

    def _begin_insertion_searches(self) -> None:
        # Lighting states depend on the snapshot; invalidate per insertion.
        self._memo.clear()

    def vertex_allowed(self, qv: int, dv: int) -> bool:
        return self._lit(qv, dv, self.depth)

    def _lit(self, qv: int, dv: int, depth: int) -> bool:
        query = self.query
        snapshot = self.snapshot
        if snapshot.label(dv) != query.label(qv):
            return False
        if depth == 0:
            return True
        key = (qv, dv, depth)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        # Optimistically assume lit to cut cycles through (qv, dv); the
        # optimistic value only ever weakens pruning, never soundness.
        self._memo[key] = True
        result = True
        for w in query.out_neighbors(qv):
            if not any(
                self._lit(w, x, depth - 1)
                for x in snapshot.out_neighbor_ids(dv)
            ):
                result = False
                break
        if result:
            for w in query.in_neighbors(qv):
                if not any(
                    self._lit(w, x, depth - 1)
                    for x in snapshot.in_neighbor_ids(dv)
                ):
                    result = False
                    break
        self._memo[key] = result
        return result
