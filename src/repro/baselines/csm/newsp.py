"""NewSP baseline [11]: redundancy-reduced search process.

NewSP restructures continuous matching to avoid recomputing the same
intermediate results across a search: candidate lists are computed once
and reused instead of being regenerated at every backtracking node.  We
reproduce that mechanism by memoising the frontier expansions
(``da -> *`` / ``* -> db`` candidate edge lists) for the duration of one
insertion's searches — the snapshot is immutable between them, so the
cache is sound, and repeated visits to the same frontier (the dominant
redundancy in backtracking search) become dictionary lookups.
"""

from __future__ import annotations

from collections.abc import Hashable

from ...graphs import TemporalEdge
from .stream import CSMMatcherBase

__all__ = ["NewSPMatcher"]


class NewSPMatcher(CSMMatcherBase):
    """Cached-expansion delta enumeration (NewSP)."""

    name = "newsp"

    def _on_prepare(self) -> None:
        self._cache: dict[
            tuple[str, int, Hashable], tuple[TemporalEdge, ...]
        ] = {}

    def _begin_insertion_searches(self) -> None:
        # The snapshot grew: previously cached expansions are stale.
        self._cache.clear()

    def _expand_out(
        self, da: int, target_label: Hashable
    ) -> tuple[TemporalEdge, ...]:
        key = ("out", da, target_label)
        cached = self._cache.get(key)
        if cached is None:
            cached = tuple(super()._expand_out(da, target_label))
            self._cache[key] = cached
        return cached

    def _expand_in(
        self, db: int, source_label: Hashable
    ) -> tuple[TemporalEdge, ...]:
        key = ("in", db, source_label)
        cached = self._cache.get(key)
        if cached is None:
            cached = tuple(super()._expand_in(db, source_label))
            self._cache[key] = cached
        return cached
