"""TurboFlux baseline [13, 15]: data-centric spanning-tree index (DCG).

TurboFlux maintains, for a spanning tree of the query, per data-vertex
candidate states that are updated as edges stream in; searches only visit
data vertices whose state says the tree below the query vertex is still
matchable.  We reproduce that mechanism with a
:class:`DynamicCandidateIndex` whose dependencies are the spanning-tree
child edges (bottom-up evaluation), built by BFS from the highest-degree
query vertex.
"""

from __future__ import annotations

from ...graphs import QueryGraph, TemporalEdge
from .dynamic_index import Dependency, DynamicCandidateIndex
from .stream import CSMMatcherBase

__all__ = ["TurboFluxMatcher", "spanning_tree_dependencies"]


def spanning_tree_dependencies(
    query: QueryGraph, root: int | None = None
) -> list[Dependency]:
    """Bottom-up dependencies along a BFS spanning tree of the query.

    For tree edge parent—child realised by query edge ``(parent, child)``
    the parent's candidates need an *out*-witness; for ``(child, parent)``
    an *in*-witness.  When both antiparallel query edges exist, both
    dependencies are emitted (stronger, still sound).
    """
    if root is None:
        root = min(
            query.vertices(), key=lambda u: (-query.degree(u), u)
        )
    deps: list[Dependency] = []
    seen = {root}
    frontier = [root]
    while frontier:
        nxt: list[int] = []
        for parent in frontier:
            for child in sorted(query.neighbors(parent)):
                if child in seen:
                    continue
                seen.add(child)
                nxt.append(child)
                if query.has_edge(parent, child):
                    deps.append(Dependency(parent, child, "out"))
                if query.has_edge(child, parent):
                    deps.append(Dependency(parent, child, "in"))
        frontier = nxt
    # Disconnected queries: remaining components get their own BFS trees.
    for u in query.vertices():
        if u not in seen:
            seen.add(u)
            frontier = [u]
            while frontier:
                nxt: list[int] = []
                for parent in frontier:
                    for child in sorted(query.neighbors(parent)):
                        if child in seen:
                            continue
                        seen.add(child)
                        nxt.append(child)
                        if query.has_edge(parent, child):
                            deps.append(Dependency(parent, child, "out"))
                        if query.has_edge(child, parent):
                            deps.append(Dependency(parent, child, "in"))
                frontier = nxt
    return deps


class TurboFluxMatcher(CSMMatcherBase):
    """Spanning-tree-indexed delta enumeration (TurboFlux)."""

    name = "turboflux"

    def _on_prepare(self) -> None:
        self._index = DynamicCandidateIndex(
            self.query,
            self.snapshot,
            spanning_tree_dependencies(self.query),
        )

    def _on_insert(self, edge: TemporalEdge, pair_is_new: bool) -> None:
        if pair_is_new:
            self._index.insert_pair(edge.u, edge.v)

    def vertex_allowed(self, qv: int, dv: int) -> bool:
        return self._index.allows(qv, dv)
