"""SymBi baseline [14]: bidirectional dynamic candidate space (DCS).

SymBi turns the query into a rooted DAG and maintains, per (query vertex,
data vertex), two kinds of states: one aggregated from DAG parents
(top-down) and one from DAG children (bottom-up), updated under edge
insertions by dynamic programming.  We reproduce this with *two*
:class:`DynamicCandidateIndex` instances over the full query DAG — unlike
TurboFlux's spanning tree, every query edge contributes a dependency — and
admit a data vertex only when both directions agree.
"""

from __future__ import annotations

from ...graphs import QueryGraph, TemporalEdge
from .dynamic_index import Dependency, DynamicCandidateIndex
from .stream import CSMMatcherBase

__all__ = ["SymBiMatcher", "query_dag_orientation"]


def query_dag_orientation(query: QueryGraph) -> list[tuple[int, int, int]]:
    """Orient every query edge along BFS levels from a max-degree root.

    Returns one ``(dag_parent, dag_child, edge_index)`` triple per query
    edge.  Edges between equal BFS levels are oriented from the smaller
    vertex id, which keeps the orientation acyclic.
    """
    n = query.num_vertices
    level = [-1] * n
    order = sorted(query.vertices(), key=lambda u: (-query.degree(u), u))
    for seed in order:
        if level[seed] != -1:
            continue
        level[seed] = 0
        frontier = [seed]
        while frontier:
            nxt: list[int] = []
            for u in frontier:
                for w in sorted(query.neighbors(u)):
                    if level[w] == -1:
                        level[w] = level[u] + 1
                        nxt.append(w)
            frontier = nxt
    oriented: list[tuple[int, int, int]] = []
    for index, (a, b) in enumerate(query.edges):
        if (level[a], a) <= (level[b], b):
            oriented.append((a, b, index))
        else:
            oriented.append((b, a, index))
    return oriented


class SymBiMatcher(CSMMatcherBase):
    """Bidirectional DAG-indexed delta enumeration (SymBi)."""

    name = "symbi"

    def _on_prepare(self) -> None:
        query = self.query
        down_deps: list[Dependency] = []
        up_deps: list[Dependency] = []
        for parent, child, edge_index in query_dag_orientation(query):
            qa, _qb = query.edge(edge_index)
            # Witness direction from the owner's perspective.
            parent_dir = "out" if qa == parent else "in"
            child_dir = "in" if qa == parent else "out"
            down_deps.append(Dependency(parent, child, parent_dir))
            up_deps.append(Dependency(child, parent, child_dir))
        self._down = DynamicCandidateIndex(query, self.snapshot, down_deps)
        self._up = DynamicCandidateIndex(query, self.snapshot, up_deps)

    def _on_insert(self, edge: TemporalEdge, pair_is_new: bool) -> None:
        if pair_is_new:
            self._down.insert_pair(edge.u, edge.v)
            self._up.insert_pair(edge.u, edge.v)

    def vertex_allowed(self, qv: int, dv: int) -> bool:
        return self._down.allows(qv, dv) and self._up.allows(qv, dv)
