"""Incremental candidate index shared by the index-based CSM baselines.

TurboFlux's DCG, SymBi's DCS and IEDyn's delta structures are all, at
their core, *dynamically maintained necessary-condition candidate sets*:
data vertex ``v`` remains a candidate for query vertex ``u`` only while
``v``'s neighbourhood can still supply candidates for ``u``'s dependent
query vertices.  This module implements that core once, parameterised by
the dependency structure:

* **TurboFlux**: dependencies = children of a query spanning tree
  (bottom-up evaluation over the tree);
* **SymBi**: dependencies = children of the full query DAG, maintained in
  both directions (bottom-up and top-down indexes);
* **IEDyn**: both directions over the tree — exact on tree queries.

The dependency relation must be acyclic; candidate flags are then the
unique bottom-up fixpoint, and because edge insertions only ever *add*
support, flags flip monotonically from off to on and can be maintained by
counter propagation in amortised constant time per (edge, dependency).
"""

from __future__ import annotations

from ...graphs import QueryGraph, TemporalGraph

__all__ = ["Dependency", "DynamicCandidateIndex"]


class Dependency:
    """``cand[owner][v]`` requires a *direction*-neighbour in ``cand[child]``.

    ``direction`` is ``"out"`` when the query edge runs ``owner -> child``
    (so the data witness must be an out-neighbour of ``v``), ``"in"`` for
    ``child -> owner``.
    """

    __slots__ = ("owner", "child", "direction")

    def __init__(self, owner: int, child: int, direction: str) -> None:
        if direction not in ("out", "in"):
            raise ValueError(f"direction must be 'out' or 'in', not {direction!r}")
        self.owner = owner
        self.child = child
        self.direction = direction

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        arrow = "->" if self.direction == "out" else "<-"
        return f"Dependency({self.owner}{arrow}{self.child})"


class DynamicCandidateIndex:
    """Maintains per-(query vertex, data vertex) candidate flags.

    Parameters
    ----------
    query:
        The query graph (labels and vertex count).
    snapshot:
        The *empty* snapshot graph that the CSM driver will grow; the
        index reads labels and adjacency from it during propagation.
    dependencies:
        Acyclic dependency list (see module docstring).  Acyclicity is the
        caller's responsibility (trees and BFS-DAGs used by the baselines
        satisfy it by construction).
    """

    def __init__(
        self,
        query: QueryGraph,
        snapshot: TemporalGraph,
        dependencies: list[Dependency],
    ) -> None:
        self.query = query
        self.snapshot = snapshot
        self.deps_by_owner: dict[int, list[tuple[int, Dependency]]] = {}
        self.deps_by_child: dict[int, list[tuple[int, Dependency]]] = {}
        self.dep_count = [0] * query.num_vertices
        for dep in dependencies:
            slot = self.dep_count[dep.owner]
            self.dep_count[dep.owner] += 1
            self.deps_by_owner.setdefault(dep.owner, []).append((slot, dep))
            self.deps_by_child.setdefault(dep.child, []).append((slot, dep))
        # cand[u]: set of data vertices currently candidate for u.
        # support[u]: data vertex -> per-dependency witness counters.
        self.cand: list[set[int]] = [set() for _ in query.vertices()]
        self.support: list[dict[int, list[int]]] = [
            {} for _ in query.vertices()
        ]
        # Dependency-free query vertices are candidates by label alone.
        for u in query.vertices():
            if self.dep_count[u] == 0:
                self.cand[u] = set(
                    snapshot.vertices_with_label(query.label(u))
                )

    def allows(self, qv: int, dv: int) -> bool:
        """Is *dv* currently a candidate for *qv*?"""
        return dv in self.cand[qv]

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def insert_pair(self, src: int, dst: int) -> None:
        """Register the new static pair ``src -> dst`` and propagate.

        Call only when the de-temporal pair is new (extra timestamps on an
        existing pair change no structure the index looks at).
        """
        query = self.query
        snapshot = self.snapshot
        pending: list[tuple[int, int]] = []  # (query vertex, data vertex)

        def add_support(owner: int, v: int, slot: int) -> None:
            if snapshot.label(v) != query.label(owner):
                return
            counters = self.support[owner].get(v)
            if counters is None:
                counters = [0] * self.dep_count[owner]
                self.support[owner][v] = counters
            counters[slot] += 1
            if counters[slot] == 1 and all(c > 0 for c in counters):
                if v not in self.cand[owner]:
                    self.cand[owner].add(v)
                    pending.append((owner, v))

        # Direct effect of the new pair: src gained out-neighbour dst, dst
        # gained in-neighbour src.
        for u in range(query.num_vertices):
            for slot, dep in self.deps_by_owner.get(u, ()):
                if dep.direction == "out" and dst in self.cand[dep.child]:
                    add_support(u, src, slot)
                elif dep.direction == "in" and src in self.cand[dep.child]:
                    add_support(u, dst, slot)

        # Transitive effects of flags that flipped on.
        while pending:
            child_q, w = pending.pop()
            for slot, dep in self.deps_by_child.get(child_q, ()):
                owner = dep.owner
                if dep.direction == "out":
                    # Owners reach w through an out-edge: scan in-neighbours.
                    for z in self.snapshot.in_neighbor_ids(w):
                        add_support(owner, z, slot)
                else:
                    for z in self.snapshot.out_neighbor_ids(w):
                        add_support(owner, z, slot)

    def candidate_counts(self) -> list[int]:
        """Current candidate-set size per query vertex (for diagnostics)."""
        return [len(c) for c in self.cand]
