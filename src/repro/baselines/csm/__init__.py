"""Continuous subgraph matching baselines, adapted to TCSM.

All eight systems share the stream/pinned-delta substrate in
:mod:`repro.baselines.csm.stream`; each contributes the candidate-index
mechanism the original paper is known for.  See DESIGN.md §3 for the
fidelity notes per system.
"""

from .calig import CaLiGMatcher
from .graphflow import GraphflowMatcher
from .iedyn import IEDynMatcher
from .newsp import NewSPMatcher
from .rapidflow import RapidFlowMatcher
from .sjtree import SJTreeMatcher
from .stream import CSMMatcherBase, connected_edge_order
from .symbi import SymBiMatcher
from .turboflux import TurboFluxMatcher

__all__ = [
    "CSMMatcherBase",
    "CaLiGMatcher",
    "GraphflowMatcher",
    "IEDynMatcher",
    "NewSPMatcher",
    "RapidFlowMatcher",
    "SJTreeMatcher",
    "SymBiMatcher",
    "TurboFluxMatcher",
    "connected_edge_order",
]
