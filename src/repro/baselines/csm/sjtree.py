"""SJ-Tree baseline [30]: subgraph join tree with materialised partials.

SJ-Tree decomposes the query into a left-deep join tree over its edges and
*stores every partial match* at every level; an edge insertion joins the
new edge with the stored partials of the previous level and propagates the
deltas upward.  Enumeration work is traded for memory — the paper's
Table IV shows SJ-Tree needing 7977 MB on WT where others need hundreds —
and our reproduction keeps that character by genuinely materialising all
levels.
"""

from __future__ import annotations

import time
from collections.abc import Iterator
from typing import cast

from ...core.match import Match
from ...core.options import RunContext, resolve_run_context
from ...core.stats import SearchStats
from ...graphs import TemporalEdge
from .stream import CSMMatcherBase, connected_edge_order

__all__ = ["SJTreeMatcher"]

# A partial match: per-query-edge temporal edges (None = unmatched) plus
# the induced per-query-vertex map (None = unbound).
_Partial = tuple[tuple[TemporalEdge | None, ...], tuple[int | None, ...]]


class SJTreeMatcher(CSMMatcherBase):
    """Left-deep join-tree continuous matching (SJ-Tree)."""

    name = "sj-tree"

    def _on_prepare(self) -> None:
        self._order = connected_edge_order(self.query, 0)
        # levels[k]: all partial matches covering order[: k + 1].
        self._levels: list[list[_Partial]] = [
            [] for _ in range(self.query.num_edges)
        ]

    # The generic pinned search is replaced wholesale.
    def run(
        self,
        ctx: RunContext | None = None,
        *,
        limit: int | None = None,
        stats: SearchStats | None = None,
        deadline: float | None = None,
    ) -> Iterator[Match]:
        context = resolve_run_context(
            ctx, limit=limit, stats=stats, deadline=deadline
        )
        self.prepare()
        return self._run(context)

    def _run(self, ctx: RunContext) -> Iterator[Match]:
        limit = ctx.limit
        deadline = ctx.deadline
        stats = ctx.stats
        emitted = 0
        m = self.query.num_edges
        post_counters = stats.filter("temporal-postfilter")
        for edge in self._stream:
            if deadline is not None and time.monotonic() > deadline:
                stats.budget_exhausted = True
                stats.deadline_hit = True
                return
            self.snapshot.add_edge(
                edge.u, edge.v, edge.t,
                label=self._view.edge_label(edge.u, edge.v, edge.t),
            )
            deltas = self._process_insertion(edge, stats)
            for partial in deltas:
                edge_map, vertex_map = partial
                # Deltas surviving all m join levels are fully bound.
                full = cast("tuple[TemporalEdge, ...]", edge_map)
                times = [e.t for e in full]
                post_counters.considered += 1
                if not self.constraints.check(times):
                    post_counters.pruned += 1
                    stats.record_fail(m)
                    continue
                emitted += 1
                stats.matches += 1
                yield Match(full, cast("tuple[int, ...]", vertex_map))
                if limit is not None and emitted >= limit:
                    stats.budget_exhausted = True
                    return
        return

    # ------------------------------------------------------------------
    # join machinery
    # ------------------------------------------------------------------
    def _process_insertion(
        self, edge: TemporalEdge, stats: SearchStats
    ) -> list[_Partial]:
        """Join the new edge through all levels; returns complete deltas."""
        query = self.query
        m = query.num_edges
        empty_partial: _Partial = (
            (None,) * m,
            (None,) * query.num_vertices,
        )
        delta_prev: list[_Partial] = []
        for k in range(m):
            edge_index = self._order[k]
            delta_k: list[_Partial] = []
            base = [empty_partial] if k == 0 else self._levels[k - 1]
            # (a) the new edge sits at level k, joined with old partials.
            for partial in base:
                stats.validations += 1
                extended = self._try_extend(partial, edge_index, edge)
                if extended is not None:
                    delta_k.append(extended)
                else:
                    stats.record_fail(k + 1)
            # (b) deltas from below, joined with existing snapshot edges.
            for partial in delta_prev:
                for candidate in self._candidates(partial, edge_index):
                    stats.candidates_generated += 1
                    extended = self._try_extend(partial, edge_index, candidate)
                    if extended is not None:
                        delta_k.append(extended)
                    else:
                        stats.record_fail(k + 1)
            if k < m - 1:
                self._levels[k].extend(delta_k)
            stats.nodes_expanded += len(delta_k)
            delta_prev = delta_k
        return delta_prev

    def _try_extend(
        self,
        partial: _Partial,
        edge_index: int,
        candidate: TemporalEdge,
    ) -> _Partial | None:
        """Bind *candidate* at *edge_index* if labels/consistency allow."""
        query = self.query
        snapshot = self.snapshot
        qa, qb = query.edge(edge_index)
        if snapshot.label(candidate.u) != query.label(qa):
            return None
        if snapshot.label(candidate.v) != query.label(qb):
            return None
        required = query.edge_label(edge_index)
        if required is not None and snapshot.edge_label(
            candidate.u, candidate.v, candidate.t
        ) != required:
            return None
        edge_map, vertex_map = partial
        da, db = vertex_map[qa], vertex_map[qb]
        if da is not None and da != candidate.u:
            return None
        if db is not None and db != candidate.v:
            return None
        bound = set(v for v in vertex_map if v is not None)
        if da is None and candidate.u in bound:
            return None  # injectivity
        if db is None and candidate.v in bound:
            return None
        if da is None and db is None and candidate.u == candidate.v:
            return None
        new_edges = list(edge_map)
        new_edges[edge_index] = candidate
        new_vertices = list(vertex_map)
        new_vertices[qa] = candidate.u
        new_vertices[qb] = candidate.v
        return (tuple(new_edges), tuple(new_vertices))

    def _candidates(
        self, partial: _Partial, edge_index: int
    ) -> Iterator[TemporalEdge]:
        """Snapshot edges joinable at *edge_index* given *partial*."""
        query = self.query
        snapshot = self.snapshot
        qa, qb = query.edge(edge_index)
        _, vertex_map = partial
        da, db = vertex_map[qa], vertex_map[qb]
        if da is not None and db is not None:
            for t in snapshot.timestamps_list(da, db):
                yield TemporalEdge(da, db, t)
        elif da is not None:
            for x in snapshot.out_neighbor_ids(da):
                for t in snapshot.timestamps_list(da, x):
                    yield TemporalEdge(da, x, t)
        elif db is not None:
            for x in snapshot.in_neighbor_ids(db):
                for t in snapshot.timestamps_list(x, db):
                    yield TemporalEdge(x, db, t)
        else:
            label_a = query.label(qa)
            for du in snapshot.vertices_with_label(label_a):
                for dv in snapshot.out_neighbor_ids(du):
                    for t in snapshot.timestamps_list(du, dv):
                        yield TemporalEdge(du, dv, t)
