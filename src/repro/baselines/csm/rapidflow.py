"""RapidFlow baseline [10]: query reduction before enumeration.

RapidFlow's key idea is to shrink the query before searching: degree-1
query vertices are stripped (they can be re-attached afterwards by a
simple neighbourhood scan), the reduced core is matched first, and the
stripped parts are re-expanded.  Dead ends caused by abundant leaf
candidates are thereby avoided.

Reproduction: we keep the shared pinned delta search, but replace the
query-edge order with a *core-first* order — edges of the iteratively
leaf-stripped core come first, stripped leaf edges re-attach in reverse
strip order.  (RapidFlow's dual-matching optimisation for automorphic
queries is out of scope; DESIGN.md records the simplification.)
"""

from __future__ import annotations

from ...graphs import QueryGraph
from .stream import CSMMatcherBase, connected_edge_order

__all__ = ["RapidFlowMatcher", "core_first_edge_order"]


def core_first_edge_order(query: QueryGraph, start_edge: int) -> list[int]:
    """Edges of the leaf-stripped core first, stripped edges last.

    The start (pinned) edge is always first regardless of stripping, so
    the order remains usable for delta searches.  Within the core and the
    stripped tail, edges keep connected-order adjacency.
    """
    m = query.num_edges
    # Iteratively strip degree-1 vertices and their single incident edge.
    alive_edges = set(range(m))
    stripped: list[int] = []
    changed = True
    while changed:
        changed = False
        for u in sorted(query.vertices()):
            incident_alive = [
                e for e in query.incident_edges(u) if e in alive_edges
            ]
            if len(incident_alive) == 1 and incident_alive[0] != start_edge:
                edge = incident_alive[0]
                alive_edges.discard(edge)
                stripped.append(edge)
                changed = True
    base = connected_edge_order(query, start_edge)
    core = [e for e in base if e in alive_edges]
    tail = [e for e in base if e not in alive_edges]
    return core + tail


class RapidFlowMatcher(CSMMatcherBase):
    """Query-reduction delta enumeration (RapidFlow)."""

    name = "rapidflow"

    def _on_prepare(self) -> None:
        self._pin_orders = [
            core_first_edge_order(self.query, e)
            for e in range(self.query.num_edges)
        ]
