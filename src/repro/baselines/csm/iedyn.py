"""IEDyn baseline [31]: dynamic Yannakakis for tree-shaped queries.

IEDyn targets acyclic (tree) queries: it maintains semi-join reduced
candidate relations in both directions along the tree, so enumeration on
tree queries proceeds with *no dead ends* (constant delay).  We reproduce
this with two :class:`DynamicCandidateIndex` instances over the query tree
(bottom-up and top-down) when the query is a tree; for non-tree queries —
outside IEDyn's native class — we fall back to its spanning tree, exactly
like the paper had to adapt the system to arbitrary patterns.
"""

from __future__ import annotations

from ...graphs import QueryGraph, TemporalEdge
from .dynamic_index import Dependency, DynamicCandidateIndex
from .stream import CSMMatcherBase
from .turboflux import spanning_tree_dependencies

__all__ = ["IEDynMatcher", "is_tree_query"]


def is_tree_query(query: QueryGraph) -> bool:
    """Is the underlying undirected graph a tree (connected, n-1 edges)?

    Antiparallel edge pairs count as two edges and disqualify the query
    (the de-directed multigraph would have a 2-cycle).
    """
    if query.num_edges != query.num_vertices - 1:
        return False
    return query.is_weakly_connected()


def _reverse(deps: list[Dependency]) -> list[Dependency]:
    """Top-down counterpart of bottom-up tree dependencies."""
    flipped_direction = {"out": "in", "in": "out"}
    return [
        Dependency(d.child, d.owner, flipped_direction[d.direction])
        for d in deps
    ]


class IEDynMatcher(CSMMatcherBase):
    """Tree-specialised delta enumeration (IEDyn)."""

    name = "iedyn"

    def _on_prepare(self) -> None:
        down = spanning_tree_dependencies(self.query)
        self._indexes = [
            DynamicCandidateIndex(self.query, self.snapshot, down)
        ]
        if is_tree_query(self.query):
            # Full semi-join reduction: also maintain the top-down pass.
            self._indexes.append(
                DynamicCandidateIndex(
                    self.query, self.snapshot, _reverse(down)
                )
            )

    def _on_insert(self, edge: TemporalEdge, pair_is_new: bool) -> None:
        if pair_is_new:
            for index in self._indexes:
                index.insert_pair(edge.u, edge.v)

    def vertex_allowed(self, qv: int, dv: int) -> bool:
        return all(index.allows(qv, dv) for index in self._indexes)
