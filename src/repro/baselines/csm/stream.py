"""Shared substrate for the continuous-subgraph-matching (CSM) baselines.

The paper adapts eight CSM systems as baselines by feeding them the
temporal graph as an insertion stream and bolting the temporal-constraint
check onto match reporting ("we also modified algorithms to satisfy
temporal-constraints").  This module provides that shared machinery:

* the **edge stream**: temporal edges sorted by time, inserted one by one
  into an initially empty *snapshot* graph (all vertices/labels known up
  front, as in the CSM literature);
* **delta semantics**: after each insertion, exactly the matches that
  contain the new edge are searched for, by pinning the new edge to every
  compatible query-edge position — each match is thus reported exactly
  once, when its stream-latest edge arrives;
* a generic **backtracking search** over a connected query-edge order,
  parameterised by a per-baseline candidate test (``vertex_allowed``);
* the **temporal post-filter**: constraints are checked only on complete
  matches, never used for pruning — precisely the handicap the paper's
  TCSM algorithms remove.

Every concrete baseline subclasses :class:`CSMMatcherBase` and supplies
its candidate index through the ``_on_prepare`` / ``_on_insert`` /
``vertex_allowed`` hooks (SJ-Tree overrides the search itself).
"""

from __future__ import annotations

import time
from collections.abc import Hashable, Iterator
from typing import cast

from ...core.match import Match
from ...core.options import RunContext, resolve_run_context
from ...core.stats import SearchStats
from ...errors import AlgorithmError
from ...obs import TraceSink
from ...graphs import (
    GraphView,
    QueryGraph,
    TemporalConstraints,
    TemporalEdge,
    TemporalGraph,
    ensure_snapshot,
)

__all__ = ["CSMMatcherBase", "connected_edge_order"]


def connected_edge_order(query: QueryGraph, start_edge: int) -> list[int]:
    """A query-edge order starting at *start_edge*, connected prefix first.

    BFS over edge adjacency (shared query vertex); edges in components not
    reachable from the start edge are appended in index order (their
    searches fall back to label scans).
    """
    m = query.num_edges
    order = [start_edge]
    seen = {start_edge}
    frontier = [start_edge]
    while frontier:
        nxt: list[int] = []
        for e in frontier:
            for other in range(m):
                if other in seen:
                    continue
                if query.edges_share_vertex(e, other):
                    seen.add(other)
                    order.append(other)
                    nxt.append(other)
        frontier = nxt
    for other in range(m):
        if other not in seen:
            order.append(other)
    return order


class CSMMatcherBase:
    """Base class for CSM baselines (see module docstring).

    Subclass hooks
    --------------
    ``_on_prepare()``
        Build the (empty-graph) candidate index; called from ``prepare``.
    ``_on_insert(edge, pair_is_new)``
        Maintain the index after ``edge`` enters the snapshot;
        ``pair_is_new`` is True when the static pair did not exist before
        (indexes over de-temporal structure only care about those).
    ``vertex_allowed(qv, dv)``
        Necessary-condition candidate test consulted during search.
    ``_begin_insertion_searches()``
        Called once per insertion, before the pin loop (cache resets).
    """

    name = "csm-base"
    #: Delta semantics tie the search to one global stream replay, so the
    #: CSM baselines do not honour seed partitioning.
    supports_partition = False

    def __init__(
        self,
        query: QueryGraph,
        constraints: TemporalConstraints,
        graph: GraphView,
        compile_graph: bool = True,
    ) -> None:
        if constraints.num_edges != query.num_edges:
            raise AlgorithmError(
                f"constraints expect {constraints.num_edges} query edges, "
                f"query has {query.num_edges}"
            )
        if query.num_edges == 0:
            raise AlgorithmError("CSM baselines need at least one query edge")
        self.query = query
        self.constraints = constraints
        self.graph = graph
        self.compile_graph = compile_graph
        #: Resolved stream source; ``prepare`` swaps in the frozen
        #: snapshot when ``compile_graph`` is set.  Distinct from
        #: :attr:`snapshot`, the *growing* mutable graph the stream is
        #: replayed into.
        self._view: GraphView = graph
        self._prepared = False

    # ------------------------------------------------------------------
    # hooks
    # ------------------------------------------------------------------
    def _on_prepare(self) -> None:
        """Index initialisation hook (default: none)."""

    def _on_insert(self, edge: TemporalEdge, pair_is_new: bool) -> None:
        """Index maintenance hook (default: none)."""

    def _begin_insertion_searches(self) -> None:
        """Per-insertion hook before pinned searches (default: none)."""

    def vertex_allowed(self, qv: int, dv: int) -> bool:
        """Candidate test; the default accepts everything label-compatible
        (labels are already enforced by candidate generation)."""
        return True

    def edge_assignment_allowed(
        self,
        pin: int,
        pos: int,
        edge_index: int,
        cand: TemporalEdge,
        edge_map: list[TemporalEdge | None],
    ) -> bool:
        """Per-assignment test before recursing (default: accept).

        The CSM baselines deliberately leave this open — their
        temporal-constraint handling is the leaf post-filter, exactly as
        the paper adapted them.  The continuous TCSM extension
        (:mod:`repro.core.continuous`) overrides it to prune with the
        constraints *during* the delta search.
        """
        return True

    def _expand_out(
        self, da: int, target_label: Hashable
    ) -> Iterator[TemporalEdge]:
        """All snapshot edges ``da -> x`` with ``label(x) == target_label``.

        Overridable frontier expansion (NewSP caches these lists).
        """
        labels = self.snapshot.labels
        for x, times in self.snapshot.out_items(da):
            if labels[x] != target_label:
                continue
            for t in times:
                yield TemporalEdge(da, x, t)

    def _expand_in(
        self, db: int, source_label: Hashable
    ) -> Iterator[TemporalEdge]:
        """All snapshot edges ``x -> db`` with ``label(x) == source_label``."""
        labels = self.snapshot.labels
        for x, times in self.snapshot.in_items(db):
            if labels[x] != source_label:
                continue
            for t in times:
                yield TemporalEdge(x, db, t)

    # ------------------------------------------------------------------
    # protocol
    # ------------------------------------------------------------------
    def prepare(self, tracer: TraceSink | None = None) -> None:
        """Sort the stream, allocate the snapshot, build pin orders."""
        if self._prepared:
            return
        query = self.query
        if self.compile_graph:
            self._view = ensure_snapshot(self.graph)
        self._stream = self._view.edges_by_time()
        self.snapshot = TemporalGraph(self._view.labels)
        self._pin_orders = [
            connected_edge_order(query, e) for e in range(query.num_edges)
        ]
        self._pin_labels = [
            (query.label(u), query.label(v)) for (u, v) in query.edges
        ]
        # Hot-loop caches (avoid bounds-checked accessors during search).
        self._edge_endpoints = query.edges
        self._query_labels = query.labels
        self._on_prepare()
        self._prepared = True

    def run(
        self,
        ctx: RunContext | None = None,
        *,
        limit: int | None = None,
        stats: SearchStats | None = None,
        deadline: float | None = None,
    ) -> Iterator[Match]:
        """Replay the stream, reporting TC-satisfying delta matches."""
        context = resolve_run_context(
            ctx, limit=limit, stats=stats, deadline=deadline
        )
        self.prepare()
        return self._run(context)

    def _run(self, ctx: RunContext) -> Iterator[Match]:
        limit = ctx.limit
        deadline = ctx.deadline
        stats = ctx.stats
        emitted = 0
        for edge in self._stream:
            if deadline is not None and time.monotonic() > deadline:
                stats.budget_exhausted = True
                stats.deadline_hit = True
                return
            before_static = self.snapshot.num_static_edges
            self.snapshot.add_edge(
                edge.u, edge.v, edge.t,
                label=self._view.edge_label(edge.u, edge.v, edge.t),
            )
            pair_is_new = self.snapshot.num_static_edges != before_static
            self._on_insert(edge, pair_is_new)
            self._begin_insertion_searches()
            src_label = self.snapshot.label(edge.u)
            dst_label = self.snapshot.label(edge.v)
            for pin in range(self.query.num_edges):
                if self._pin_labels[pin] != (src_label, dst_label):
                    continue
                for match in self._pinned_search(pin, edge, stats, deadline):
                    emitted += 1
                    stats.matches += 1
                    yield match
                    if limit is not None and emitted >= limit:
                        stats.budget_exhausted = True
                        return
        return

    # ------------------------------------------------------------------
    # pinned backtracking search
    # ------------------------------------------------------------------
    def _pinned_search(
        self,
        pin: int,
        pinned_edge: TemporalEdge,
        stats: SearchStats,
        deadline: float | None,
    ) -> Iterator[Match]:
        query = self.query
        snapshot = self.snapshot
        order = self._pin_orders[pin]
        edge_endpoints = self._edge_endpoints
        query_labels = self._query_labels
        m = query.num_edges
        n = query.num_vertices
        edge_map: list[TemporalEdge | None] = [None] * m
        vertex_map: list[int | None] = [None] * n
        used: set[int] = set()

        # The CSM adaptation checks temporal constraints only on complete
        # embeddings; the bucket makes that leaf-filter cost observable.
        post_counters = stats.filter("temporal-postfilter")

        qa, qb = edge_endpoints[pin]
        stats.candidates_generated += 1
        stats.validations += 1
        if not (
            self.vertex_allowed(qa, pinned_edge.u)
            and self.vertex_allowed(qb, pinned_edge.v)
        ):
            stats.record_fail(1)
            return
        pin_label = query.edge_label(pin)
        if pin_label is not None and snapshot.edge_label(
            pinned_edge.u, pinned_edge.v, pinned_edge.t
        ) != pin_label:
            stats.record_fail(1)
            return
        required_labels = query.edge_labels
        check_edge_labels = query.has_edge_labels
        edge_map[pin] = pinned_edge
        vertex_map[qa] = pinned_edge.u
        vertex_map[qb] = pinned_edge.v
        used.add(pinned_edge.u)
        used.add(pinned_edge.v)

        def candidates(pos: int) -> Iterator[TemporalEdge]:
            edge_index = order[pos]
            a, b = edge_endpoints[edge_index]
            da, db = vertex_map[a], vertex_map[b]
            if da is not None and db is not None:
                for t in snapshot.timestamps_list(da, db):
                    yield TemporalEdge(da, db, t)
            elif da is not None:
                label_b = query_labels[b]
                for cand in self._expand_out(da, label_b):
                    if cand.v in used or not self.vertex_allowed(b, cand.v):
                        continue
                    yield cand
            elif db is not None:
                label_a = query_labels[a]
                for cand in self._expand_in(db, label_a):
                    if cand.u in used or not self.vertex_allowed(a, cand.u):
                        continue
                    yield cand
            else:
                # Disconnected component seed: label-indexed scan.
                label_a = query_labels[a]
                label_b = query_labels[b]
                data_labels = snapshot.labels
                for du in snapshot.vertices_with_label(label_a):
                    if du in used or not self.vertex_allowed(a, du):
                        continue
                    for dv, times in snapshot.out_items(du):
                        if dv in used or data_labels[dv] != label_b:
                            continue
                        if not self.vertex_allowed(b, dv):
                            continue
                        for t in times:
                            yield TemporalEdge(du, dv, t)

        def dfs(pos: int) -> Iterator[Match]:
            if deadline is not None and time.monotonic() > deadline:
                stats.budget_exhausted = True
                stats.deadline_hit = True
                return
            if pos == m:
                full = cast("list[TemporalEdge]", edge_map)  # all bound here
                times = [full[i].t for i in range(m)]
                post_counters.considered += 1
                if self.constraints.check(times):
                    yield Match(
                        tuple(full),
                        cast("tuple[int, ...]", tuple(vertex_map)),
                    )
                else:
                    post_counters.pruned += 1
                    stats.record_fail(pos)
                return
            edge_index = order[pos]
            if edge_index == pin:
                yield from dfs(pos + 1)
                return
            stats.nodes_expanded += 1
            a, b = edge_endpoints[edge_index]
            produced = False
            required = required_labels[edge_index] if check_edge_labels else None
            for cand in candidates(pos):
                stats.candidates_generated += 1
                stats.validations += 1
                if required is not None and snapshot.edge_label(
                    cand.u, cand.v, cand.t
                ) != required:
                    stats.record_fail(pos + 1)
                    continue
                if not self.edge_assignment_allowed(
                    pin, pos, edge_index, cand, edge_map
                ):
                    stats.record_fail(pos + 1)
                    continue
                new_a = vertex_map[a] is None
                new_b = vertex_map[b] is None
                if new_a and new_b and cand.u == cand.v:
                    stats.record_fail(pos + 1)
                    continue
                edge_map[edge_index] = cand
                if new_a:
                    vertex_map[a] = cand.u
                    used.add(cand.u)
                if new_b:
                    vertex_map[b] = cand.v
                    used.add(cand.v)
                produced = True
                yield from dfs(pos + 1)
                if new_a:
                    used.discard(cand.u)
                    vertex_map[a] = None
                if new_b:
                    used.discard(cand.v)
                    vertex_map[b] = None
                edge_map[edge_index] = None
            if not produced:
                stats.record_fail(pos + 1)

        yield from dfs(0)
