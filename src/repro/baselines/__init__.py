"""Baseline matchers the paper compares against.

Importing this package registers every baseline with the engine registry,
so ``find_matches(..., algorithm="ri-ds")`` works after a plain
``import repro``.  Registered names::

    ri          RI without domains (extra point of comparison)
    ri-ds       RI-DS: static matching + temporal post-check (paper baseline)
    graphflow   index-free continuous matching
    sj-tree     join-tree with materialised partial matches
    turboflux   spanning-tree candidate index (DCG)
    symbi       bidirectional DAG candidate space (DCS)
    iedyn       dynamic Yannakakis for tree queries
    rapidflow   query reduction before enumeration
    calig       candidate lighting (local look-ahead)
    newsp       cached-expansion search process
"""

from ..core.engine import register_algorithm
from .csm import (
    CaLiGMatcher,
    CSMMatcherBase,
    GraphflowMatcher,
    IEDynMatcher,
    NewSPMatcher,
    RapidFlowMatcher,
    SJTreeMatcher,
    SymBiMatcher,
    TurboFluxMatcher,
)
from .ri import RIMatcher, greatest_constraint_first_order

__all__ = [
    "CSMMatcherBase",
    "CaLiGMatcher",
    "GraphflowMatcher",
    "IEDynMatcher",
    "NewSPMatcher",
    "RIMatcher",
    "RapidFlowMatcher",
    "SJTreeMatcher",
    "SymBiMatcher",
    "TurboFluxMatcher",
    "greatest_constraint_first_order",
    "BASELINE_NAMES",
]

BASELINE_NAMES: tuple[str, ...] = (
    "ri",
    "ri-ds",
    "graphflow",
    "sj-tree",
    "turboflux",
    "symbi",
    "iedyn",
    "rapidflow",
    "calig",
    "newsp",
)


def _register() -> None:
    register_algorithm(
        "ri", lambda q, c, g, **kw: RIMatcher(q, c, g, use_domains=False, **kw)
    )
    register_algorithm("ri-ds", RIMatcher)
    register_algorithm("graphflow", GraphflowMatcher)
    register_algorithm("sj-tree", SJTreeMatcher)
    register_algorithm("turboflux", TurboFluxMatcher)
    register_algorithm("symbi", SymBiMatcher)
    register_algorithm("iedyn", IEDynMatcher)
    register_algorithm("rapidflow", RapidFlowMatcher)
    register_algorithm("calig", CaLiGMatcher)
    register_algorithm("newsp", NewSPMatcher)


_register()
