"""Exception hierarchy for the :mod:`repro` package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch one type to handle all library
failures while still letting programming errors (``TypeError`` and friends)
propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphError",
    "QueryError",
    "ConstraintError",
    "InfeasibleConstraintsError",
    "DatasetError",
    "AlgorithmError",
    "UnknownAlgorithmError",
    "BudgetExceededError",
    "ServiceError",
    "UnknownGraphError",
    "AdmissionError",
    "StreamingError",
    "UnknownSubscriptionError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Invalid data-graph construction or access (bad vertex id, bad edge)."""


class QueryError(ReproError):
    """Invalid query graph (duplicate edge, self loop, missing label, ...)."""


class ConstraintError(ReproError):
    """Invalid temporal-constraint set (bad edge index, negative gap, ...)."""


class InfeasibleConstraintsError(ConstraintError):
    """The temporal-constraint set admits no timestamp assignment at all.

    Detected by a negative cycle in the difference-constraint graph, e.g.
    ``(0, 1, 5)`` together with ``(1, 0, 3)`` forces ``t0 == t1`` which is
    feasible, but ``(0, 1, 5)`` with an implied strict ordering the other way
    is not.  Raised eagerly by :meth:`TemporalConstraints.closed` so matchers
    can skip work that provably yields zero matches.
    """


class DatasetError(ReproError):
    """Problems loading or generating datasets."""


class AlgorithmError(ReproError):
    """A matcher was invoked with inputs it cannot process."""


class UnknownAlgorithmError(AlgorithmError):
    """An algorithm name passed to the engine is not registered."""


class BudgetExceededError(ReproError):
    """A matcher exceeded its configured time or match budget.

    Only raised when the caller opts in (``on_budget="raise"``); by default
    matchers stop quietly and flag :attr:`SearchStats.budget_exhausted`.
    """


class ServiceError(ReproError):
    """Base class for errors raised by the query-serving subsystem."""


class UnknownGraphError(ServiceError):
    """A request referenced a graph name not present in the registry."""


class AdmissionError(ServiceError):
    """The service refused a query because it is at its in-flight limit.

    Load shedding, not failure: the request was never executed and can be
    retried once in-flight queries drain.
    """


class StreamingError(ReproError):
    """Invalid standing-subscription or edge-ingest request."""


class UnknownSubscriptionError(StreamingError):
    """A request referenced a subscription id not registered on the engine."""
