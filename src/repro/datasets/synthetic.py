"""Synthetic instance generators.

Two families live here:

* **Uniform random instances** (`random_query`, `random_constraints`,
  `random_temporal_graph`) — small, fully random problems used for
  differential testing against the brute-force oracle and by the
  scalability experiments that sweep query shape (Exp-3/4).
* **Dataset stand-ins** (`synthetic_dataset`) — temporal graphs whose
  summary statistics mimic the paper's SNAP datasets (Table II): a
  preferential-attachment de-temporal topology for a heavy-tailed degree
  distribution, timestamp multiplicities matching |ℰ|/|E|, a uniform
  label assignment of configurable alphabet size, and timestamps spread
  over the recorded time span.

All generators take an explicit ``seed`` and are deterministic for a
given seed.
"""

from __future__ import annotations

import random
from collections.abc import Hashable, Sequence

from ..errors import DatasetError
from ..graphs import QueryGraph, TemporalConstraints, TemporalGraph
from ..graphs.io import default_label_alphabet

__all__ = [
    "random_query",
    "random_constraints",
    "random_temporal_graph",
    "random_instance",
    "synthetic_dataset",
    "plant_motifs",
]


def random_query(
    num_vertices: int,
    num_edges: int,
    labels: Sequence[Hashable],
    seed: int = 0,
    connected: bool = True,
) -> QueryGraph:
    """A random labeled directed simple query graph.

    With ``connected`` (default) the first ``num_vertices - 1`` edges form
    a random spanning tree (random orientation), so the query is weakly
    connected — required for meaningful prec-based candidate generation
    and the regime all paper experiments operate in.  Extra edges are
    sampled uniformly among the missing ordered pairs.

    Raises
    ------
    DatasetError
        If ``num_edges`` cannot be realised (too few for connectivity or
        more than ``n*(n-1)``).
    """
    rng = random.Random(seed)
    n = num_vertices
    if n < 1:
        raise DatasetError("query needs at least one vertex")
    max_edges = n * (n - 1)
    if num_edges > max_edges:
        raise DatasetError(
            f"{num_edges} edges impossible on {n} vertices (max {max_edges})"
        )
    if connected and n > 1 and num_edges < n - 1:
        raise DatasetError(
            f"{num_edges} edges cannot connect {n} vertices"
        )
    vertex_labels = [rng.choice(list(labels)) for _ in range(n)]
    edges: list[tuple[int, int]] = []
    present: set[tuple[int, int]] = set()

    if connected and n > 1:
        order = list(range(n))
        rng.shuffle(order)
        for i in range(1, n):
            a = order[i]
            b = order[rng.randrange(i)]
            pair = (a, b) if rng.random() < 0.5 else (b, a)
            edges.append(pair)
            present.add(pair)

    while len(edges) < num_edges:
        a = rng.randrange(n)
        b = rng.randrange(n)
        if a == b or (a, b) in present:
            continue
        edges.append((a, b))
        present.add((a, b))

    rng.shuffle(edges)  # edge indices should not encode the spanning tree
    return QueryGraph(vertex_labels, edges)


def random_constraints(
    query: QueryGraph,
    num_constraints: int,
    max_gap: int,
    seed: int = 0,
    prefer_adjacent: bool = True,
) -> TemporalConstraints:
    """Random temporal constraints over the query's edge indices.

    With ``prefer_adjacent`` (default) constrained edge pairs are drawn
    from pairs sharing a query vertex when possible — the pattern of all
    the paper's workloads (Fig. 12) and the regime where the TCF has
    structure.  Gaps are uniform on ``[0, max_gap]``.
    """
    rng = random.Random(seed)
    m = query.num_edges
    if m < 2 and num_constraints > 0:
        raise DatasetError("constraints need at least two query edges")
    adjacent_pairs = [
        (i, j)
        for i in range(m)
        for j in range(m)
        if i != j and query.edges_share_vertex(i, j)
    ]
    all_pairs = [(i, j) for i in range(m) for j in range(m) if i != j]
    pool = adjacent_pairs if (prefer_adjacent and adjacent_pairs) else all_pairs
    max_possible = len({frozenset(p) for p in pool})
    chosen: dict[frozenset[int], tuple[int, int]] = {}
    attempts = 0
    while len(chosen) < min(num_constraints, max_possible):
        attempts += 1
        if attempts > 50 * (num_constraints + 1) and pool is not all_pairs:
            pool = all_pairs  # adjacency exhausted; widen
        pair = rng.choice(pool)
        key = frozenset(pair)
        if key not in chosen:
            chosen[key] = pair
    triples = [
        (i, j, rng.randint(0, max_gap)) for (i, j) in chosen.values()
    ]
    return TemporalConstraints(triples, num_edges=m)


def random_temporal_graph(
    num_vertices: int,
    num_temporal_edges: int,
    labels: Sequence[Hashable],
    max_time: int = 100,
    seed: int = 0,
) -> TemporalGraph:
    """A uniform random temporal graph (pairs and timestamps uniform)."""
    rng = random.Random(seed)
    if num_vertices < 2 and num_temporal_edges > 0:
        raise DatasetError("temporal edges need at least two vertices")
    vertex_labels = [rng.choice(list(labels)) for _ in range(num_vertices)]
    graph = TemporalGraph(vertex_labels)
    inserted = 0
    while inserted < num_temporal_edges:
        u = rng.randrange(num_vertices)
        v = rng.randrange(num_vertices)
        if u == v:
            continue
        if graph.add_edge(u, v, rng.randint(0, max_time)):
            inserted += 1
    return graph


def random_instance(
    seed: int = 0,
    query_vertices: int = 4,
    query_edges: int = 5,
    num_constraints: int = 3,
    max_gap: int = 10,
    data_vertices: int = 12,
    data_edges: int = 60,
    num_labels: int = 3,
    max_time: int = 30,
) -> tuple[QueryGraph, TemporalConstraints, TemporalGraph]:
    """A complete random TCSM instance (query, constraints, data graph).

    Sized for oracle-checkable differential tests by default.
    """
    labels = default_label_alphabet(num_labels)
    query = random_query(query_vertices, query_edges, labels, seed=seed)
    constraints = random_constraints(
        query, num_constraints, max_gap, seed=seed + 1
    )
    graph = random_temporal_graph(
        data_vertices, data_edges, labels, max_time=max_time, seed=seed + 2
    )
    return query, constraints, graph


def plant_motifs(
    graph: TemporalGraph,
    queries: Sequence[QueryGraph],
    copies: int = 4,
    window: int | Sequence[int] = 86_400,
    seed: int = 0,
) -> TemporalGraph:
    """Embed copies of *queries* into *graph* (returns a new graph).

    Real interaction networks contain recurring labeled patterns; uniform
    random labeling destroys them, leaving pattern queries with zero
    matches and making runtime comparisons degenerate.  Planting restores
    that character: for each query, up to *copies* instances are embedded
    on fresh vertices (relabeled to the query's labels) with timestamps
    strictly increasing in edge-index order inside a *window*-wide slot —
    so any constraint set whose pairs follow edge order with gaps >=
    *window* is satisfied by the planted instance.

    Vertices are drawn without replacement across all plants; planting
    stops early if the graph runs out of vertices.

    *window* may be a sequence, in which case copy ``i`` of each query
    uses ``window[i % len(window)]`` — planting instances at several
    temporal densities gives the gap sweep of Exp-10 its gradual growth.
    """
    rng = random.Random(seed)
    windows = (
        [int(window)] if isinstance(window, (int, float)) else list(window)
    )
    labels = list(graph.labels)
    extra: list[tuple[int, int, int]] = []
    pool = list(graph.vertices())
    rng.shuffle(pool)
    max_window = max(windows)
    lo = graph.min_time if graph.min_time is not None else 0
    hi = graph.max_time if graph.max_time is not None else max_window
    hi = max(hi - max_window, lo)
    for query in queries:
        for copy_index in range(copies):
            if len(pool) < query.num_vertices:
                break
            copy_window = windows[copy_index % len(windows)]
            chosen = [pool.pop() for _ in range(query.num_vertices)]
            for u, v in zip(query.vertices(), chosen):
                labels[v] = query.label(u)
            base = rng.randint(lo, hi) if hi > lo else lo
            step = max(1, copy_window // max(1, query.num_edges))
            for index, (a, b) in enumerate(query.edges):
                extra.append((chosen[a], chosen[b], base + index * step))
    planted = TemporalGraph(labels)
    for u, v, t in graph.edges():
        planted.add_edge(u, v, t)
    for u, v, t in extra:
        planted.add_edge(u, v, t)
    return planted


def synthetic_dataset(
    num_vertices: int,
    num_temporal_edges: int,
    num_labels: int = 8,
    time_span: int = 1000,
    attachment: int = 2,
    multiplicity_skew: float = 0.3,
    seed: int = 0,
) -> TemporalGraph:
    """A dataset stand-in with SNAP-like shape (see module docstring).

    Parameters
    ----------
    num_vertices, num_temporal_edges:
        Target sizes (|V| and |ℰ| of Table II, possibly down-scaled).
    num_labels:
        Label alphabet size (|L|, swept in Exp-8).
    time_span:
        Timestamps are drawn from ``[0, time_span]``.
    attachment:
        Out-links per arriving vertex in the preferential-attachment
        phase; controls average degree.
    multiplicity_skew:
        Probability that a new temporal edge reuses an existing vertex
        pair rather than creating a new one; controls |ℰ|/|E|.
    seed:
        RNG seed.
    """
    if num_vertices < 2:
        raise DatasetError("synthetic dataset needs at least two vertices")
    rng = random.Random(seed)
    alphabet = default_label_alphabet(num_labels)
    vertex_labels = [rng.choice(alphabet) for _ in range(num_vertices)]
    graph = TemporalGraph(vertex_labels)

    # Repeated-vertex list implements preferential attachment cheaply.
    attachment_pool: list[int] = [0, 1]
    pairs: list[tuple[int, int]] = []

    def random_time() -> int:
        return rng.randint(0, time_span)

    def add_pair(u: int, v: int) -> None:
        if graph.add_edge(u, v, random_time()):
            pairs.append((u, v))
            attachment_pool.append(u)
            attachment_pool.append(v)

    # Phase 1: grow the topology vertex by vertex.
    for v in range(2, num_vertices):
        for _ in range(attachment):
            u = rng.choice(attachment_pool)
            if u == v:
                continue
            if rng.random() < 0.5:
                add_pair(v, u)
            else:
                add_pair(u, v)
        if graph.num_temporal_edges >= num_temporal_edges:
            break

    # Phase 2: top up to the edge budget, mixing pair reuse (timestamp
    # multiplicity) with fresh preferential pairs.
    guard = 0
    while graph.num_temporal_edges < num_temporal_edges:
        guard += 1
        if guard > 50 * num_temporal_edges:
            raise DatasetError(
                "could not reach the requested edge count; "
                "graph too small for the budget"
            )
        if pairs and rng.random() < multiplicity_skew:
            u, v = rng.choice(pairs)
            graph.add_edge(u, v, random_time())
        else:
            u = rng.choice(attachment_pool)
            v = rng.choice(attachment_pool)
            if u == v:
                continue
            add_pair(u, v)
    return graph
