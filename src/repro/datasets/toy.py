"""The paper's running toy example (Figure 2), reconstructed.

The query graph, temporal constraints and data temporal graph below follow
Figure 2 and Examples 1-8 of the paper as closely as the text allows:

* Query ``G_q``: vertices ``u1..u5`` with labels A, B, C, D, A and edges
  ``e1..e7`` (0-based indices 0..6 in code).
* Constraints: the five triples of Figure 2(b).  The gap of ``tc4`` is not
  recoverable from the text; we use 6 so that the paper's highlighted red
  match is valid (see DESIGN.md, reconstruction notes).
* Data graph ``G``: the subset of Figure 2(c) that participates in
  Examples 1-8, plus the distractor vertices the examples prune
  (``v4, v5, v6, v9, v10, v12``).

Ground truth (verified by the brute-force oracle in the test suite): the
instance has exactly **two** matches — the paper's red match, in two
timestamp variants because ``(v2, v3)`` interacts at both t=4 and t=5.
"""

from __future__ import annotations

from ..graphs import (
    QueryBuilder,
    QueryGraph,
    TemporalConstraints,
    TemporalGraph,
    TemporalGraphBuilder,
)

__all__ = [
    "toy_query",
    "toy_constraints",
    "toy_data_graph",
    "toy_instance",
    "TOY_EXPECTED_MATCH_COUNT",
]

TOY_EXPECTED_MATCH_COUNT = 2


def toy_query() -> tuple[QueryGraph, dict[str, int]]:
    """The 5-vertex, 7-edge query of Figure 2(a).

    Edge indices (0-based) map to the paper's ``e1..e7`` as ``index = i-1``:
    ``0=(u1,u2), 1=(u2,u1), 2=(u2,u3), 3=(u2,u4), 4=(u4,u3), 5=(u3,u5),
    6=(u5,u4)``.
    """
    builder = QueryBuilder()
    builder.vertex("u1", "A").vertex("u2", "B").vertex("u3", "C")
    builder.vertex("u4", "D").vertex("u5", "A")
    builder.edge("u1", "u2")  # e1
    builder.edge("u2", "u1")  # e2
    builder.edge("u2", "u3")  # e3
    builder.edge("u2", "u4")  # e4
    builder.edge("u4", "u3")  # e5
    builder.edge("u3", "u5")  # e6
    builder.edge("u5", "u4")  # e7
    return builder.build()


def toy_constraints() -> TemporalConstraints:
    """The five constraints of Figure 2(b), 0-based.

    tc1: 0 <= e1.t - e2.t <= 3   ->  (1, 0, 3)
    tc2: 0 <= e3.t - e2.t <= 5   ->  (1, 2, 5)
    tc3: 0 <= e7.t - e4.t <= 4   ->  (3, 6, 4)
    tc4: 0 <= e7.t - e6.t <= 6   ->  (5, 6, 6)  (gap reconstructed)
    tc5: 0 <= e2.t - e6.t <= 3   ->  (5, 1, 3)
    """
    return TemporalConstraints(
        [(1, 0, 3), (1, 2, 5), (3, 6, 4), (5, 6, 6), (5, 1, 3)],
        num_edges=7,
    )


def toy_data_graph() -> tuple[TemporalGraph, dict[str, int]]:
    """The data temporal graph of Figure 2(c) (reconstructed subset).

    Contains the red match (``u1..u5 -> v1, v2, v3, v7, v11``), the blue
    distractor embedding (``u3..u5 -> v6, v10, v12``) that violates tc5,
    and the pruning targets of Examples 3, 5 and 7.
    """
    builder = TemporalGraphBuilder()
    builder.vertex("v1", "A").vertex("v2", "B").vertex("v3", "C")
    builder.vertex("v4", "C").vertex("v5", "C").vertex("v6", "C")
    builder.vertex("v7", "D").vertex("v9", "D").vertex("v10", "D")
    builder.vertex("v11", "A").vertex("v12", "A")
    # The red match's edges.
    builder.edge("v1", "v2", 6)
    builder.edge("v2", "v1", 3)
    builder.edge("v2", "v3", 4, 5)  # two timestamps -> two match variants
    builder.edge("v2", "v7", 6)
    builder.edge("v7", "v3", 3)
    builder.edge("v3", "v11", 1)
    builder.edge("v11", "v7", 7)
    # The blue distractor embedding (structurally fine, violates tc5).
    builder.edge("v2", "v6", 4)
    builder.edge("v6", "v12", 4)
    builder.edge("v2", "v10", 5)
    builder.edge("v10", "v6", 6)
    builder.edge("v12", "v10", 7)
    # Pruning targets from the worked examples.
    builder.edge("v2", "v4", 4)
    builder.edge("v4", "v12", 4)
    builder.edge("v2", "v5", 2)
    builder.edge("v2", "v9", 7)
    builder.edge("v11", "v9", 8)
    return builder.build()


def toy_instance() -> tuple[
    QueryGraph, TemporalConstraints, TemporalGraph, dict[str, int], dict[str, int]
]:
    """Convenience bundle: ``(query, constraints, graph, qnames, vnames)``."""
    query, qnames = toy_query()
    graph, vnames = toy_data_graph()
    return query, toy_constraints(), graph, qnames, vnames
