"""Datasets: the paper's toy example, synthetic dataset stand-ins, workloads."""

from .catalog import DATASETS, DatasetSpec, dataset_keys, load_dataset
from .queries import (
    DEFAULT_GAP,
    extract_instance,
    extract_query,
    paper_constraints,
    paper_query,
    paper_workloads,
)
from .synthetic import (
    random_constraints,
    random_instance,
    random_query,
    random_temporal_graph,
    synthetic_dataset,
)
from .toy import (
    TOY_EXPECTED_MATCH_COUNT,
    toy_constraints,
    toy_data_graph,
    toy_instance,
    toy_query,
)

__all__ = [
    "DATASETS",
    "DEFAULT_GAP",
    "DatasetSpec",
    "TOY_EXPECTED_MATCH_COUNT",
    "dataset_keys",
    "extract_instance",
    "extract_query",
    "load_dataset",
    "paper_constraints",
    "paper_query",
    "paper_workloads",
    "random_constraints",
    "random_instance",
    "random_query",
    "random_temporal_graph",
    "synthetic_dataset",
    "toy_constraints",
    "toy_data_graph",
    "toy_instance",
    "toy_query",
]
