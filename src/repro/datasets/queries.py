"""The paper's query/constraint workloads (Figure 12) and generators.

Figure 12 defines three labeled 6-vertex queries (q1-q3) and three
temporal-constraint shapes (tc1 linear, tc2 tree, tc3 graph).  The figure
itself is an image; the reconstructions below honour every property the
text states — six vertices each, and constraint graphs that are
respectively a chain, a tree and a (cyclic underlying) graph — with the
structural flavours the case study motivates (a circulation loop, a fan,
and a dense double-triangle).

For the scalability sweeps (Exp-3: |q| in 3..10, |tc| in 2..6; Exp-4:
density 0.5..3) the module provides *query extraction*: queries are
sampled as connected subgraphs of the data graph, and constraint gaps are
derived from the sampled embedding's real timestamps — so the workload is
guaranteed to have at least one match, keeping runtimes comparable across
parameters.
"""

from __future__ import annotations

import random
from collections.abc import Iterator

from ..errors import DatasetError
from ..graphs import QueryGraph, TemporalConstraints, TemporalGraph

__all__ = [
    "paper_query",
    "paper_constraints",
    "paper_workloads",
    "extract_query",
    "extract_instance",
    "DEFAULT_GAP",
]

DEFAULT_GAP = 7 * 86_400
"""Default constraint gap: seven days in seconds (the Δt window of the
bill-circulation motivation runs over days)."""


def paper_query(index: int) -> QueryGraph:
    """The reconstructed q1 / q2 / q3 of Figure 12 (six vertices each).

    * **q1** — circulation loop: a directed 6-cycle with a chord, the
      shape of the bill-intermediary pattern in Figure 1.
    * **q2** — fan: a hub receiving from two sources and paying out to
      three sinks, the online-brushing star of Figure 13.
    * **q3** — dense: two directed triangles sharing a vertex plus a
      pendant, the hardest structural load.
    """
    if index == 1:
        return QueryGraph(
            ["A", "B", "C", "A", "D", "B"],
            [
                (0, 1),  # e0
                (1, 2),  # e1
                (2, 3),  # e2
                (3, 4),  # e3
                (4, 5),  # e4
                (5, 0),  # e5
                (1, 4),  # e6 (chord)
            ],
        )
    if index == 2:
        return QueryGraph(
            ["A", "B", "B", "C", "D", "C"],
            [
                (0, 1),  # e0 hub pays B
                (0, 2),  # e1 hub pays B'
                (0, 3),  # e2 hub pays C
                (4, 0),  # e3 D funds hub
                (5, 0),  # e4 C' funds hub
                (1, 2),  # e5 sink-to-sink transfer
            ],
        )
    if index == 3:
        return QueryGraph(
            ["A", "B", "C", "B", "D", "A"],
            [
                (0, 1),  # e0  triangle 1
                (1, 2),  # e1
                (2, 0),  # e2
                (2, 3),  # e3  triangle 2
                (3, 4),  # e4
                (4, 2),  # e5
                (0, 5),  # e6  pendant
            ],
        )
    raise DatasetError(f"paper queries are q1..q3, got q{index}")


def paper_constraints(
    index: int, num_edges: int = 6, gap: float = DEFAULT_GAP
) -> TemporalConstraints:
    """The reconstructed tc1 / tc2 / tc3 of Figure 12.

    All constraint edge indices stay below 6 so each tc combines with each
    query (q2 has only six edges), mirroring the paper's 3x3 grid.

    * **tc1** — linear: a chain ``e0 -> e1 -> e2 -> e3``.
    * **tc2** — tree: ``e0`` fans out to ``e1``/``e2``; ``e2`` to
      ``e3``/``e4``.
    * **tc3** — graph: a diamond ``e0 -> {e1, e2} -> e3`` closed by
      ``e1 -> e2``.
    """
    if index == 1:
        triples = [(0, 1, gap), (1, 2, gap), (2, 3, gap)]
    elif index == 2:
        triples = [
            (0, 1, gap),
            (0, 2, gap),
            (2, 3, gap),
            (2, 4, gap),
        ]
    elif index == 3:
        triples = [
            (0, 1, gap),
            (0, 2, gap),
            (1, 3, gap),
            (2, 3, gap),
            (1, 2, gap),
        ]
    else:
        raise DatasetError(f"paper constraints are tc1..tc3, got tc{index}")
    return TemporalConstraints(triples, num_edges=num_edges)


def paper_workloads(
    gap: float = DEFAULT_GAP,
) -> Iterator[tuple[str, str, QueryGraph, TemporalConstraints]]:
    """All nine (q_i, tc_j) combinations, as in Tables III and V.

    Yields ``(query_name, tc_name, query, constraints)``.
    """
    for qi in (1, 2, 3):
        query = paper_query(qi)
        for tj in (1, 2, 3):
            constraints = paper_constraints(
                tj, num_edges=query.num_edges, gap=gap
            )
            yield (f"q{qi}", f"tc{tj}", query, constraints)


# ----------------------------------------------------------------------
# query extraction (guaranteed-match workloads for the sweeps)
# ----------------------------------------------------------------------
def extract_query(
    graph: TemporalGraph,
    num_vertices: int,
    num_edges: int,
    seed: int = 0,
    max_attempts: int = 200,
) -> tuple[QueryGraph, list[int], list[tuple[int, int]]]:
    """Sample a connected subgraph of *graph* as a query.

    Returns ``(query, data_vertices, data_edges)`` where
    ``data_vertices[u]`` is the data vertex that query vertex ``u`` was
    copied from (one guaranteed structural embedding) and ``data_edges``
    the corresponding data pairs per query edge.

    Raises
    ------
    DatasetError
        If no connected subgraph with the requested shape is found after
        *max_attempts* random restarts (graph too small/sparse).
    """
    if num_vertices < 2:
        raise DatasetError("extracted queries need at least two vertices")
    max_possible = num_vertices * (num_vertices - 1)
    if num_edges < num_vertices - 1 or num_edges > max_possible:
        raise DatasetError(
            f"cannot build a connected query with {num_vertices} vertices "
            f"and {num_edges} edges"
        )
    rng = random.Random(seed)
    data = graph.de_temporal()
    population = [
        v for v in graph.vertices() if data.degree(v) > 0
    ]
    if not population:
        raise DatasetError("data graph has no edges to extract from")

    for _ in range(max_attempts):
        seed_vertex = rng.choice(population)
        chosen = [seed_vertex]
        chosen_set = {seed_vertex}
        # Grow a connected vertex set by random frontier expansion.
        while len(chosen) < num_vertices:
            frontier: list[int] = []
            for v in chosen:
                frontier.extend(
                    w for w in data.neighbors(v) if w not in chosen_set
                )
            if not frontier:
                break
            nxt = rng.choice(frontier)
            chosen.append(nxt)
            chosen_set.add(nxt)
        if len(chosen) < num_vertices:
            continue
        # Collect the induced directed pairs.
        induced = [
            (a, b)
            for a in chosen
            for b in data.out_neighbors(a)
            if b in chosen_set
        ]
        if len(induced) < num_edges:
            continue
        # Keep a connected selection: spanning structure first.
        rng.shuffle(induced)
        selected: list[tuple[int, int]] = []
        connected: set[int] = set()
        for a, b in induced:
            if not selected:
                selected.append((a, b))
                connected |= {a, b}
            elif a in connected or b in connected:
                if (a, b) not in selected:
                    selected.append((a, b))
                    connected |= {a, b}
            if len(selected) == num_edges and len(connected) == len(chosen):
                break
        if len(connected) != len(chosen) or len(selected) != num_edges:
            continue
        index_of = {v: i for i, v in enumerate(chosen)}
        labels = [graph.label(v) for v in chosen]
        edges = [(index_of[a], index_of[b]) for a, b in selected]
        return QueryGraph(labels, edges), chosen, selected
    raise DatasetError(
        f"could not extract a ({num_vertices} vertices, {num_edges} edges) "
        f"query after {max_attempts} attempts"
    )


def extract_instance(
    graph: TemporalGraph,
    num_vertices: int,
    num_edges: int,
    num_constraints: int,
    seed: int = 0,
    slack: float = DEFAULT_GAP,
) -> tuple[QueryGraph, TemporalConstraints]:
    """An extracted query plus constraints its source embedding satisfies.

    Constraint pairs are sampled among query edges sharing a vertex (the
    paper's workload style); the gap of each is set to the source
    embedding's actual timestamp difference plus *slack*, and the
    direction follows that difference — so the instance has at least one
    match by construction.
    """
    rng = random.Random(seed)
    query, _vertices, data_edges = extract_query(
        graph, num_vertices, num_edges, seed=seed
    )
    # One concrete timestamp per query edge (earliest interaction).
    witness_times = [graph.timestamps(a, b)[0] for a, b in data_edges]
    m = query.num_edges
    adjacent_pairs = [
        (i, j)
        for i in range(m)
        for j in range(i + 1, m)
        if query.edges_share_vertex(i, j)
    ]
    if not adjacent_pairs:
        adjacent_pairs = [
            (i, j) for i in range(m) for j in range(i + 1, m)
        ]
    rng.shuffle(adjacent_pairs)
    triples: list[tuple[int, int, float]] = []
    for i, j in adjacent_pairs[:num_constraints]:
        if witness_times[i] <= witness_times[j]:
            earlier, later = i, j
        else:
            earlier, later = j, i
        gap = witness_times[later] - witness_times[earlier] + slack
        triples.append((earlier, later, gap))
    return query, TemporalConstraints(triples, num_edges=m)
