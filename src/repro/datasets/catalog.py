"""Dataset catalog: the paper's six SNAP datasets and their stand-ins.

Table II of the paper records, per dataset, |V|, |ℰ| (temporal edges),
|E| (static pairs), the time span and the average temporal degree.  The
real files are SNAP downloads; in offline environments we generate
synthetic stand-ins whose summary statistics match the catalog entry at a
configurable scale (see :func:`repro.datasets.synthetic.synthetic_dataset`
and DESIGN.md §3 for why the substitution preserves the experiments'
shape).

``load_dataset("UB")`` returns the stand-in at the dataset's default
scale — chosen so a pure-Python matcher finishes in seconds; pass
``scale=1.0`` (and patience) for paper-scale graphs, or point
``snap_path`` at a real SNAP file to use the original data.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from ..errors import DatasetError
from ..graphs import TemporalGraph
from ..graphs.io import load_snap_temporal
from .synthetic import plant_motifs, synthetic_dataset

__all__ = ["DatasetSpec", "DATASETS", "dataset_keys", "load_dataset"]

SECONDS_PER_DAY = 86_400


@dataclass(frozen=True)
class DatasetSpec:
    """One Table II row plus stand-in generation parameters."""

    key: str
    name: str
    vertices: int
    temporal_edges: int
    static_edges: int
    time_span_days: int
    avg_degree: float
    default_scale: float
    """Scale factor giving a pure-Python-friendly stand-in (10-20k edges)."""

    vertex_scale_boost: float = 1.0
    """Vertices shrink by ``scale * vertex_scale_boost`` (capped at 1).

    Extremely dense datasets (EE) keep more vertices than edges when
    down-scaled, otherwise the stand-in's match counts explode
    combinatorially in a way the original never does."""

    def scaled_sizes(self, scale: float) -> tuple[int, int, int]:
        """(vertices, temporal edges, static edges) at *scale*."""
        if not 0 < scale <= 1.0:
            raise DatasetError(f"scale must be in (0, 1], got {scale}")
        vertex_scale = min(1.0, scale * self.vertex_scale_boost)
        return (
            max(16, int(self.vertices * vertex_scale)),
            max(32, int(self.temporal_edges * scale)),
            max(16, int(self.static_edges * scale)),
        )


DATASETS: dict[str, DatasetSpec] = {
    spec.key: spec
    for spec in (
        DatasetSpec(
            key="CM",
            name="CollegeMsg",
            vertices=1_899,
            temporal_edges=59_835,
            static_edges=20_296,
            time_span_days=193,
            avg_degree=31.5,
            default_scale=0.12,
            vertex_scale_boost=3.0,
        ),
        DatasetSpec(
            key="EE",
            name="email-Eu-core-temporal",
            vertices=986,
            temporal_edges=332_334,
            static_edges=24_929,
            time_span_days=803,
            avg_degree=337.0,
            default_scale=0.05,
            vertex_scale_boost=6.0,
        ),
        DatasetSpec(
            key="MO",
            name="sx-mathoverflow",
            vertices=24_818,
            temporal_edges=506_550,
            static_edges=239_978,
            time_span_days=2_350,
            avg_degree=20.41,
            default_scale=0.02,
        ),
        DatasetSpec(
            key="UB",
            name="sx-askubuntu",
            vertices=159_316,
            temporal_edges=964_437,
            static_edges=596_933,
            time_span_days=2_613,
            avg_degree=6.05,
            default_scale=0.012,
        ),
        DatasetSpec(
            key="SU",
            name="sx-superuser",
            vertices=194_085,
            temporal_edges=1_443_339,
            static_edges=924_886,
            time_span_days=2_773,
            avg_degree=7.43,
            default_scale=0.008,
        ),
        DatasetSpec(
            key="WT",
            name="wiki-talk-temporal",
            vertices=1_140_149,
            temporal_edges=7_833_140,
            static_edges=3_309_592,
            time_span_days=2_320,
            avg_degree=6.87,
            default_scale=0.002,
        ),
        # The paper's text says "7 real-world temporal datasets" while
        # Table II lists six; the likely seventh (same SNAP family as
        # MO/UB/SU) is sx-stackoverflow.  Included for completeness; the
        # tables only report the six above.
        DatasetSpec(
            key="SO",
            name="sx-stackoverflow",
            vertices=2_601_977,
            temporal_edges=63_497_050,
            static_edges=36_233_450,
            time_span_days=2_774,
            avg_degree=24.4,
            default_scale=0.0003,
        ),
    )
}


def dataset_keys(include_extra: bool = False) -> tuple[str, ...]:
    """Catalog keys in the paper's (size-ascending) order.

    The six Table II datasets by default; ``include_extra`` adds SO
    (sx-stackoverflow), the likely seventh dataset of the paper's text.
    """
    keys = tuple(DATASETS)
    if include_extra:
        return keys
    return tuple(k for k in keys if k != "SO")


def load_dataset(
    key: str,
    scale: float | None = None,
    num_labels: int = 8,
    seed: int = 0,
    snap_path: str | Path | None = None,
    plant_patterns: bool = True,
    plant_copies: int = 4,
) -> TemporalGraph:
    """Return the dataset stand-in (or the real file, if provided).

    Parameters
    ----------
    key:
        Catalog key: CM, EE, MO, UB, SU or WT.
    scale:
        Size factor relative to Table II; defaults to the spec's
        Python-friendly scale.
    num_labels:
        Vertex-label alphabet size (SNAP graphs are unlabeled; the paper's
        default setup and Exp-8 vary this).
    seed:
        Generator / label-assignment seed.
    snap_path:
        Path to the real SNAP edge list; when given, the file is loaded
        (with random labels as above) instead of generating a stand-in.
    plant_patterns:
        Embed ``plant_copies`` instances of each Figure-12 query into the
        stand-in (see :func:`repro.datasets.synthetic.plant_motifs`), so
        the paper workloads have non-trivial match sets.  Ignored when a
        real SNAP file is loaded.
    """
    try:
        spec = DATASETS[key.upper()]
    except KeyError:
        known = ", ".join(DATASETS)
        raise DatasetError(f"unknown dataset {key!r}; known: {known}") from None
    if snap_path is not None:
        cap = None
        if scale is not None:
            cap = int(spec.temporal_edges * scale)
        return load_snap_temporal(
            snap_path, num_labels=num_labels, seed=seed, max_edges=cap
        )
    if scale is None:
        scale = spec.default_scale
    vertices, temporal_edges, static_edges = spec.scaled_sizes(scale)
    attachment = max(1, round(static_edges / vertices))
    multiplicity_skew = max(
        0.0, 1.0 - spec.static_edges / spec.temporal_edges
    )
    graph = synthetic_dataset(
        num_vertices=vertices,
        num_temporal_edges=temporal_edges,
        num_labels=num_labels,
        time_span=spec.time_span_days * SECONDS_PER_DAY,
        attachment=attachment,
        multiplicity_skew=multiplicity_skew,
        seed=seed,
    )
    if plant_patterns:
        from .queries import paper_query  # local import avoids a cycle

        graph = plant_motifs(
            graph,
            [paper_query(i) for i in (1, 2, 3)],
            copies=plant_copies,
            # Varied temporal densities: matches appear gradually as the
            # constraint gap k grows (Exp-10's growth-then-saturate shape).
            window=[
                SECONDS_PER_DAY // 4,
                SECONDS_PER_DAY,
                3 * SECONDS_PER_DAY,
                6 * SECONDS_PER_DAY,
            ],
            seed=seed + 1,
        )
    return graph
