"""Measurement records shared by all experiment drivers."""

from __future__ import annotations

import csv
from dataclasses import dataclass, field, fields
from pathlib import Path

__all__ = ["Measurement", "write_csv"]


@dataclass
class Measurement:
    """One (workload, algorithm) data point.

    Every experiment driver produces a list of these; table and figure
    renderers, as well as the CSV exporter, consume them uniformly.
    """

    experiment: str
    dataset: str
    algorithm: str
    query: str = ""
    constraint: str = ""
    seconds: float = 0.0
    build_seconds: float = 0.0
    match_seconds: float = 0.0
    matches: int = 0
    timestamps_expanded: int = 0
    timestamps_skipped: int = 0
    memory_mb: float = 0.0
    failed_enumerations: int = 0
    first_fail_layer: int | None = None
    budget_exhausted: bool = False
    filters: dict[str, dict[str, int]] = field(default_factory=dict)
    params: dict[str, object] = field(default_factory=dict)

    def label(self) -> str:
        """Compact workload label, e.g. ``UB q1,tc2``."""
        parts = [self.dataset]
        if self.query:
            tail = self.query
            if self.constraint:
                tail += f",{self.constraint}"
            parts.append(tail)
        return " ".join(parts)


def write_csv(measurements: list[Measurement], path: str | Path) -> None:
    """Dump measurements to CSV.

    ``params`` flattens as ``key=value;...``; ``filters`` flattens as
    ``name=considered/pruned/survivors;...``.
    """
    path = Path(path)
    columns = [f.name for f in fields(Measurement)]
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(columns)
        for m in measurements:
            row: list[object] = []
            for name in columns:
                value = getattr(m, name)
                if name == "params":
                    value = ";".join(f"{k}={v}" for k, v in value.items())
                elif name == "filters":
                    value = ";".join(
                        f"{k}={v['considered']}/{v['pruned']}/{v['survivors']}"
                        for k, v in value.items()
                    )
                row.append(value)
            writer.writerow(row)
