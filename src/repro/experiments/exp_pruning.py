"""Exp-9: observations on failed enumeration and pruning (Fig. 21).

Compares, per algorithm, the total number of failed enumerations and the
matching-tree layer of the first failure — both come straight from the
matchers' :class:`~repro.core.stats.SearchStats`.  The paper's claim:
edge-based matching fails less often and fails shallower than
vertex-based matching, and EVE fails slightly less than E2E.

A second table breaks down each algorithm's per-filter pruning
(candidates considered / pruned / survivors) from the live counters the
matchers emit during the *same* runs — no re-execution with filters
toggled off, so the ablation is free and exactly consistent with the
failed-enumeration numbers above it.

Usage::

    python -m repro.experiments.exp_pruning [--dataset UB]
"""

from __future__ import annotations

from ..datasets import load_dataset, paper_constraints, paper_query
from .records import Measurement, write_csv
from .runner import CORE_ALGORITHMS, common_parser, measure
from .tables import render_table

__all__ = ["run", "main", "print_report"]

DEFAULT_ALGORITHMS = ("graphflow", "symbi", "ri-ds") + CORE_ALGORITHMS


def run(
    dataset: str = "UB",
    algorithms: tuple[str, ...] = DEFAULT_ALGORITHMS,
    scale: float | None = None,
    seed: int = 1,
    time_budget: float = 30.0,
) -> list[Measurement]:
    """Failed-enumeration statistics on (q1, tc2)."""
    graph = load_dataset(dataset, scale=scale, seed=seed)
    query = paper_query(1)
    constraints = paper_constraints(2, num_edges=query.num_edges)
    measurements: list[Measurement] = []
    for algorithm in algorithms:
        measurements.append(
            measure(
                "exp9-pruning",
                dataset,
                algorithm,
                query,
                constraints,
                graph,
                query_name="q1",
                constraint_name="tc2",
                time_budget=time_budget,
            )
        )
    return measurements


def print_report(measurements: list[Measurement]) -> None:
    rows = [
        [
            m.algorithm,
            m.failed_enumerations,
            "-" if m.first_fail_layer is None else m.first_fail_layer,
            m.matches,
            m.timestamps_expanded,
            m.timestamps_skipped,
        ]
        for m in measurements
    ]
    print(
        render_table(
            [
                "Methods",
                "failed enumerations",
                "first-fail layer",
                "matches",
                "ts expanded",
                "ts skipped",
            ],
            rows,
            title="Fig. 21: failed enumeration statistics",
        )
    )
    filter_rows = [
        [
            m.algorithm if index == 0 else "",
            name,
            row["considered"],
            row["pruned"],
            row["survivors"],
        ]
        for m in measurements
        for index, (name, row) in enumerate(sorted(m.filters.items()))
    ]
    if filter_rows:
        print()
        print(
            render_table(
                ["Methods", "filter", "considered", "pruned", "survivors"],
                filter_rows,
                title="Per-filter pruning (live counters)",
            )
        )


def main(argv: list[str] | None = None) -> list[Measurement]:
    parser = common_parser(__doc__.splitlines()[0])
    parser.add_argument("--dataset", type=str, default="UB")
    args = parser.parse_args(argv)
    measurements = run(
        dataset=args.dataset.upper(),
        scale=args.scale,
        seed=args.seed,
        time_budget=args.time_budget,
    )
    print_report(measurements)
    if args.csv:
        write_csv(measurements, args.csv)
    return measurements


if __name__ == "__main__":  # pragma: no cover - CLI entry
    main()
