"""Exp-6: memory usage of the algorithms (Table IV).

The paper reports resident memory in MB; the portable Python equivalent
is the ``tracemalloc`` allocation peak over one full run (graph storage is
shared by all algorithms and excluded, so the numbers isolate each
algorithm's working set — candidate sets, indexes, partial-match stores).
SJ-Tree's materialised partials should dominate, as in the paper.

Usage::

    python -m repro.experiments.exp_memory [--datasets CM,MO,UB]
"""

from __future__ import annotations

from ..datasets import load_dataset, paper_constraints, paper_query
from .records import Measurement, write_csv
from .runner import CORE_ALGORITHMS, common_parser, measure
from .tables import render_table

__all__ = ["run", "main", "print_report"]

DEFAULT_DATASETS = ("CM", "EE", "MO", "UB")
DEFAULT_ALGORITHMS = (
    "symbi",
    "turboflux",
    "graphflow",
    "sj-tree",
    "iedyn",
    "ri-ds",
    "rapidflow",
    "calig",
    "newsp",
) + CORE_ALGORITHMS


def run(
    datasets: tuple[str, ...] = DEFAULT_DATASETS,
    algorithms: tuple[str, ...] = DEFAULT_ALGORITHMS,
    scale: float | None = None,
    seed: int = 1,
    time_budget: float = 30.0,
) -> list[Measurement]:
    """Peak allocation per algorithm and dataset on (q1, tc2)."""
    measurements: list[Measurement] = []
    query = paper_query(1)
    constraints = paper_constraints(2, num_edges=query.num_edges)
    for key in datasets:
        graph = load_dataset(key, scale=scale, seed=seed)
        # Pre-warm the lazily built graph-level caches (de-temporal view,
        # label index, neighbourhood label counters) so they are not
        # attributed to whichever algorithm happens to run first.
        data = graph.de_temporal()
        graph.vertices_with_label(query.label(0))
        for v in graph.vertices():
            data.neighbor_label_counts(v)
        for algorithm in algorithms:
            measurements.append(
                measure(
                    "exp6-memory",
                    key,
                    algorithm,
                    query,
                    constraints,
                    graph,
                    query_name="q1",
                    constraint_name="tc2",
                    time_budget=time_budget,
                    track_memory=True,
                )
            )
    return measurements


def print_report(measurements: list[Measurement]) -> None:
    datasets = list(dict.fromkeys(m.dataset for m in measurements))
    algorithms = list(dict.fromkeys(m.algorithm for m in measurements))
    by_key = {(m.algorithm, m.dataset): m for m in measurements}
    rows: list[list[str]] = []
    for algorithm in algorithms:
        row = [algorithm]
        for dataset in datasets:
            m = by_key.get((algorithm, dataset))
            row.append("-" if m is None else f"{m.memory_mb:.2f}")
        rows.append(row)
    print(
        render_table(
            ["Methods"] + datasets,
            rows,
            title="Table IV: peak allocations of the algorithms (MB)",
        )
    )


def main(argv: list[str] | None = None) -> list[Measurement]:
    parser = common_parser(__doc__.splitlines()[0])
    parser.add_argument(
        "--datasets", type=str, default=",".join(DEFAULT_DATASETS)
    )
    args = parser.parse_args(argv)
    measurements = run(
        datasets=tuple(args.datasets.upper().split(",")),
        scale=args.scale,
        seed=args.seed,
        time_budget=args.time_budget,
    )
    print_report(measurements)
    if args.csv:
        write_csv(measurements, args.csv)
    return measurements


if __name__ == "__main__":  # pragma: no cover - CLI entry
    main()
