"""Experiment drivers regenerating the paper's tables and figures.

Each ``exp_*`` module maps to one experiment of Section V (see DESIGN.md
§4 for the index) and can be run standalone::

    python -m repro.experiments.exp_runtime --help
"""

from .records import Measurement, write_csv
from .runner import (
    ALL_BASELINES,
    CORE_ALGORITHMS,
    DEFAULT_COMPARISON,
    FAST_BASELINES,
    HEAVY_BASELINES,
    common_parser,
    measure,
)
from .tables import format_seconds, render_series, render_table

__all__ = [
    "ALL_BASELINES",
    "CORE_ALGORITHMS",
    "DEFAULT_COMPARISON",
    "FAST_BASELINES",
    "HEAVY_BASELINES",
    "Measurement",
    "common_parser",
    "format_seconds",
    "measure",
    "render_series",
    "render_table",
    "write_csv",
]
