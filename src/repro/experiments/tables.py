"""Plain-text rendering of tables and line-chart series.

The paper reports results as tables (III-VI) and line charts (Figures
14-22).  The drivers print the same rows and series as aligned monospace
text, so a terminal diff against the paper is straightforward.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence

__all__ = ["format_seconds", "render_table", "render_series"]


def format_seconds(value: float) -> str:
    """Format a runtime like the paper (seconds, adaptive precision)."""
    if value >= 100:
        return f"{value:.0f}"
    if value >= 1:
        return f"{value:.2f}"
    if value >= 0.001:
        return f"{value:.4f}"
    return f"{value:.2e}"


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned text table with a rule under the header."""
    cells = [[str(h) for h in headers]] + [
        [str(c) for c in row] for row in rows
    ]
    widths = [
        max(len(row[col]) for row in cells) for col in range(len(headers))
    ]
    lines: list[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        cells[0][col].ljust(widths[col]) for col in range(len(headers))
    )
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append(
            "  ".join(row[col].ljust(widths[col]) for col in range(len(row)))
        )
    return "\n".join(lines)


def render_series(
    x_label: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[object]],
    title: str = "",
    y_format: Callable[[object], str] | None = None,
) -> str:
    """Render line-chart data as one column per x value, one row per line.

    This is the textual equivalent of the paper's figures: the series name
    is the legend entry, the x axis runs across columns.
    """
    if y_format is None:
        y_format = lambda v: v if isinstance(v, str) else str(v)  # noqa: E731
    headers = [x_label] + [str(x) for x in x_values]
    rows: list[list[str]] = []
    for name, values in series.items():
        rows.append([name] + [y_format(v) for v in values])
    return render_table(headers, rows, title=title)
