"""Exp-2: runtime split between building TCQ(+) and matching (Fig. 14, Table VI).

For the TCSM algorithms "processing" is exactly the preparation phase
(initial candidates + TCQ/TCQ+ construction) and "matching" the DFS; for
the baselines, preparation covers their setup (orders, indexes on the
empty snapshot) while stream replay and search both land in the matching
phase — the paper's Table VI mixes analogous microbenchmarks, see
EXPERIMENTS.md.

Usage::

    python -m repro.experiments.exp_distribution [--datasets MO,UB,SU]
"""

from __future__ import annotations

from ..datasets import load_dataset, paper_constraints, paper_query
from .records import Measurement, write_csv
from .runner import CORE_ALGORITHMS, common_parser, measure
from .tables import render_table

__all__ = ["run", "main", "print_report"]

DEFAULT_DATASETS = ("MO", "UB", "SU")
DEFAULT_ALGORITHMS = (
    "symbi",
    "turboflux",
    "graphflow",
    "sj-tree",
    "iedyn",
    "ri-ds",
) + CORE_ALGORITHMS


def run(
    datasets: tuple[str, ...] = DEFAULT_DATASETS,
    algorithms: tuple[str, ...] = DEFAULT_ALGORITHMS,
    scale: float | None = None,
    seed: int = 1,
    time_budget: float = 30.0,
) -> list[Measurement]:
    """Build/match split on (q1, tc2) per dataset and algorithm."""
    measurements: list[Measurement] = []
    query = paper_query(1)
    constraints = paper_constraints(2, num_edges=query.num_edges)
    for key in datasets:
        graph = load_dataset(key, scale=scale, seed=seed)
        for algorithm in algorithms:
            measurements.append(
                measure(
                    "exp2-distribution",
                    key,
                    algorithm,
                    query,
                    constraints,
                    graph,
                    query_name="q1",
                    constraint_name="tc2",
                    time_budget=time_budget,
                )
            )
    return measurements


def print_report(measurements: list[Measurement]) -> None:
    datasets = list(dict.fromkeys(m.dataset for m in measurements))
    algorithms = list(dict.fromkeys(m.algorithm for m in measurements))
    by_key = {(m.algorithm, m.dataset): m for m in measurements}
    headers = ["Methods"]
    for dataset in datasets:
        headers += [f"{dataset} build(ms)", f"{dataset} match(ms)"]
    rows: list[list[str]] = []
    for algorithm in algorithms:
        row = [algorithm]
        for dataset in datasets:
            m = by_key.get((algorithm, dataset))
            if m is None:
                row += ["-", "-"]
            else:
                row += [
                    f"{m.build_seconds * 1000:.3f}",
                    f"{m.match_seconds * 1000:.3f}",
                ]
        rows.append(row)
    print(
        render_table(
            headers,
            rows,
            title="Fig. 14 / Table VI: runtime distribution "
            "(processing vs matching, milliseconds)",
        )
    )


def main(argv: list[str] | None = None) -> list[Measurement]:
    parser = common_parser(__doc__.splitlines()[0])
    parser.add_argument(
        "--datasets", type=str, default=",".join(DEFAULT_DATASETS)
    )
    args = parser.parse_args(argv)
    measurements = run(
        datasets=tuple(args.datasets.upper().split(",")),
        scale=args.scale,
        seed=args.seed,
        time_budget=args.time_budget,
    )
    print_report(measurements)
    if args.csv:
        write_csv(measurements, args.csv)
    return measurements


if __name__ == "__main__":  # pragma: no cover - CLI entry
    main()
