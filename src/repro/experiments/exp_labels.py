"""Exp-7/8: effect of label-alphabet sizes (Figures 19 and 20).

* **Exp-7** (Fig. 19): the query's distinct-label count |L_q| sweeps 1..6
  on a fixed 6-vertex query shape; fewer distinct labels mean larger
  candidate sets and more automorphic structure.
* **Exp-8** (Fig. 20): synthetic data graphs with |L| in {8, 12, 16, 20,
  24}; more data labels thin candidates, so all algorithms get faster.

Usage::

    python -m repro.experiments.exp_labels --sweep query-labels
"""

from __future__ import annotations

from ..datasets import load_dataset, paper_constraints, paper_query
from ..graphs import QueryGraph
from ..graphs.io import default_label_alphabet
from .records import Measurement, write_csv
from .runner import CORE_ALGORITHMS, common_parser, measure
from .tables import format_seconds, render_series

__all__ = ["run_query_labels", "run_data_labels", "relabel_query", "main"]

SWEEP_BASELINES = ("graphflow", "symbi", "ri-ds")


def relabel_query(query: QueryGraph, num_labels: int) -> QueryGraph:
    """Rewrite the query's labels to use exactly *num_labels* symbols.

    Vertex ``u`` gets label ``alphabet[u % num_labels]``, preserving the
    structure; used by the |L_q| sweep.
    """
    alphabet = default_label_alphabet(num_labels)
    labels = [alphabet[u % num_labels] for u in query.vertices()]
    return QueryGraph(labels, query.edges)


def run_query_labels(
    dataset: str = "UB",
    label_counts: tuple[int, ...] = (1, 2, 3, 4, 5, 6),
    algorithms: tuple[str, ...] = SWEEP_BASELINES + CORE_ALGORITHMS,
    scale: float | None = None,
    seed: int = 1,
    time_budget: float = 30.0,
) -> list[Measurement]:
    """Fig. 19: runtime versus |L_q| on the q1 shape."""
    graph = load_dataset(dataset, scale=scale, seed=seed, num_labels=6)
    base = paper_query(1)
    constraints = paper_constraints(2, num_edges=base.num_edges)
    measurements: list[Measurement] = []
    for count in label_counts:
        query = relabel_query(base, count)
        for algorithm in algorithms:
            measurements.append(
                measure(
                    "exp7-query-labels",
                    dataset,
                    algorithm,
                    query,
                    constraints,
                    graph,
                    query_name=f"|Lq|={count}",
                    constraint_name="tc2",
                    time_budget=time_budget,
                    params={"labels": count},
                )
            )
    return measurements


def run_data_labels(
    label_counts: tuple[int, ...] = (8, 12, 16, 20, 24),
    algorithms: tuple[str, ...] = SWEEP_BASELINES + CORE_ALGORITHMS,
    scale: float | None = None,
    seed: int = 1,
    time_budget: float = 30.0,
    dataset: str = "UB",
) -> list[Measurement]:
    """Fig. 20: runtime versus the data graph's |L| (synthetic graphs)."""
    query = paper_query(1)
    constraints = paper_constraints(2, num_edges=query.num_edges)
    measurements: list[Measurement] = []
    for count in label_counts:
        graph = load_dataset(
            dataset, scale=scale, seed=seed, num_labels=count
        )
        for algorithm in algorithms:
            measurements.append(
                measure(
                    "exp8-data-labels",
                    f"{dataset}|L|={count}",
                    algorithm,
                    query,
                    constraints,
                    graph,
                    query_name="q1",
                    constraint_name="tc2",
                    time_budget=time_budget,
                    params={"labels": count},
                )
            )
    return measurements


def _print_sweep(measurements: list[Measurement], title: str) -> None:
    x_values = list(dict.fromkeys(m.params["labels"] for m in measurements))
    algorithms = list(dict.fromkeys(m.algorithm for m in measurements))
    series: dict[str, list[str]] = {}
    for algorithm in algorithms:
        values: list[str] = []
        for x in x_values:
            found = [
                m
                for m in measurements
                if m.algorithm == algorithm and m.params["labels"] == x
            ]
            if found:
                suffix = "*" if found[0].budget_exhausted else ""
                values.append(format_seconds(found[0].seconds) + suffix)
            else:
                values.append("-")
        series[algorithm] = values
    print(
        render_series(
            "labels", x_values, series, title=f"{title} (seconds; * = budget)"
        )
    )


def main(argv: list[str] | None = None) -> list[Measurement]:
    parser = common_parser(__doc__.splitlines()[0])
    parser.add_argument(
        "--sweep", choices=("query-labels", "data-labels"),
        default="query-labels",
    )
    parser.add_argument("--dataset", type=str, default="UB")
    args = parser.parse_args(argv)
    kwargs = dict(
        scale=args.scale, seed=args.seed, time_budget=args.time_budget,
        dataset=args.dataset,
    )
    if args.sweep == "query-labels":
        measurements = run_query_labels(**kwargs)
        _print_sweep(measurements, "Fig. 19: runtime vs |L_q|")
    else:
        measurements = run_data_labels(**kwargs)
        _print_sweep(measurements, "Fig. 20: runtime vs |L|")
    if args.csv:
        write_csv(measurements, args.csv)
    return measurements


if __name__ == "__main__":  # pragma: no cover - CLI entry
    main()
