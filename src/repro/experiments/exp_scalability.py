"""Exp-3/4/5: scalability sweeps (Figures 15, 17 and 18).

Three sweeps share this module:

* **query size** (Fig. 15 left): |q| from 3 to 10 vertices, queries
  extracted from the data graph so every size has at least one match;
* **constraint count** (Fig. 15 right): |tc| from 2 to 6 on a fixed
  extracted query — the baselines ignore |tc| and are excluded, as in the
  paper;
* **query density** (Fig. 17): |E_q|/|V_q| from 0.5 to 3.0 (random
  queries; densities below 1 are necessarily disconnected);
* **data scale** (Fig. 18): time-prefix subgraphs keeping 20..100% of
  the temporal edges.

Usage::

    python -m repro.experiments.exp_scalability --sweep query-size
"""

from __future__ import annotations

from ..datasets import (
    extract_instance,
    load_dataset,
    paper_constraints,
    paper_query,
    random_constraints,
    random_query,
)
from ..errors import DatasetError
from ..graphs import TemporalGraph
from .records import Measurement, write_csv
from .runner import CORE_ALGORITHMS, common_parser, measure
from .tables import format_seconds, render_series

__all__ = [
    "run_query_size",
    "run_constraint_count",
    "run_density",
    "run_data_scale",
    "main",
]

SWEEP_BASELINES = ("graphflow", "symbi", "ri-ds")
"""A fast/medium/slow baseline cross-section for the sweep figures."""


def run_query_size(
    dataset: str = "UB",
    sizes: tuple[int, ...] = (3, 4, 5, 6, 7, 8, 9, 10),
    algorithms: tuple[str, ...] = SWEEP_BASELINES + CORE_ALGORITHMS,
    scale: float | None = None,
    seed: int = 1,
    time_budget: float = 30.0,
) -> list[Measurement]:
    """Fig. 15 (left): runtime versus |q| (vertices)."""
    graph = load_dataset(dataset, scale=scale, seed=seed)
    measurements: list[Measurement] = []
    for size in sizes:
        # Prefer density ~1.2 (size + 1 edges); sparse stand-ins may not
        # contain such a subgraph at small sizes, so fall back to a tree.
        query = constraints = None
        for num_edges in (size + 1, size, size - 1):
            if num_edges < size - 1:
                continue
            try:
                query, constraints = extract_instance(
                    graph, size, num_edges, num_constraints=3,
                    seed=seed + size,
                )
                break
            except DatasetError:
                continue
        if query is None:
            raise DatasetError(
                f"no extractable query of {size} vertices in {dataset}"
            )
        for algorithm in algorithms:
            measurements.append(
                measure(
                    "exp3-query-size",
                    dataset,
                    algorithm,
                    query,
                    constraints,
                    graph,
                    query_name=f"|q|={size}",
                    time_budget=time_budget,
                    params={"size": size},
                )
            )
    return measurements


def run_constraint_count(
    dataset: str = "UB",
    counts: tuple[int, ...] = (2, 3, 4, 5, 6),
    algorithms: tuple[str, ...] = CORE_ALGORITHMS,
    scale: float | None = None,
    seed: int = 1,
    time_budget: float = 30.0,
) -> list[Measurement]:
    """Fig. 15 (right): runtime versus |tc| (TCSM algorithms only)."""
    graph = load_dataset(dataset, scale=scale, seed=seed)
    measurements: list[Measurement] = []
    for count in counts:
        query, constraints = extract_instance(
            graph, 6, 7, num_constraints=count, seed=seed
        )
        for algorithm in algorithms:
            measurements.append(
                measure(
                    "exp3-constraint-count",
                    dataset,
                    algorithm,
                    query,
                    constraints,
                    graph,
                    constraint_name=f"|tc|={count}",
                    time_budget=time_budget,
                    params={"count": count},
                )
            )
    return measurements


def run_density(
    dataset: str = "UB",
    densities: tuple[float, ...] = (0.5, 1.0, 1.5, 2.0, 2.5, 3.0),
    algorithms: tuple[str, ...] = CORE_ALGORITHMS,
    num_vertices: int = 6,
    scale: float | None = None,
    seed: int = 1,
    time_budget: float = 30.0,
) -> list[Measurement]:
    """Fig. 17: runtime versus query density |E_q|/|V_q|."""
    graph = load_dataset(dataset, scale=scale, seed=seed)
    labels = sorted(set(graph.labels))[:4]
    measurements: list[Measurement] = []
    for density in densities:
        num_edges = max(1, round(density * num_vertices))
        query = random_query(
            num_vertices,
            num_edges,
            labels,
            seed=seed,
            connected=num_edges >= num_vertices - 1,
        )
        constraints = random_constraints(
            query, min(3, max(0, num_edges - 1)), 7 * 86_400, seed=seed
        )
        for algorithm in algorithms:
            measurements.append(
                measure(
                    "exp4-density",
                    dataset,
                    algorithm,
                    query,
                    constraints,
                    graph,
                    query_name=f"d={density}",
                    time_budget=time_budget,
                    params={"density": density},
                )
            )
    return measurements


def run_data_scale(
    datasets: tuple[str, ...] = ("UB", "SU"),
    fractions: tuple[float, ...] = (0.2, 0.4, 0.6, 0.8, 1.0),
    algorithms: tuple[str, ...] = SWEEP_BASELINES + CORE_ALGORITHMS,
    scale: float | None = None,
    seed: int = 1,
    time_budget: float = 30.0,
) -> list[Measurement]:
    """Fig. 18: runtime versus |ℰ| (time-prefix subgraphs)."""
    query = paper_query(1)
    constraints = paper_constraints(2, num_edges=query.num_edges)
    measurements: list[Measurement] = []
    for key in datasets:
        full: TemporalGraph = load_dataset(key, scale=scale, seed=seed)
        for fraction in fractions:
            graph = full.time_prefix(fraction) if fraction < 1.0 else full
            for algorithm in algorithms:
                measurements.append(
                    measure(
                        "exp5-data-scale",
                        key,
                        algorithm,
                        query,
                        constraints,
                        graph,
                        query_name="q1",
                        constraint_name="tc2",
                        time_budget=time_budget,
                        params={"fraction": fraction},
                    )
                )
    return measurements


def _print_sweep(
    measurements: list[Measurement], x_param: str, title: str
) -> None:
    x_values = list(
        dict.fromkeys(m.params[x_param] for m in measurements)
    )
    algorithms = list(dict.fromkeys(m.algorithm for m in measurements))
    datasets = list(dict.fromkeys(m.dataset for m in measurements))
    for dataset in datasets:
        series: dict[str, list[str]] = {}
        for algorithm in algorithms:
            values: list[str] = []
            for x in x_values:
                found = [
                    m
                    for m in measurements
                    if m.algorithm == algorithm
                    and m.dataset == dataset
                    and m.params[x_param] == x
                ]
                if found:
                    suffix = "*" if found[0].budget_exhausted else ""
                    values.append(format_seconds(found[0].seconds) + suffix)
                else:
                    values.append("-")
            series[algorithm] = values
        print(
            render_series(
                x_param,
                x_values,
                series,
                title=f"{title} [{dataset}] (seconds; * = budget)",
            )
        )
        print()


def main(argv: list[str] | None = None) -> list[Measurement]:
    parser = common_parser(__doc__.splitlines()[0])
    parser.add_argument(
        "--sweep",
        choices=("query-size", "constraint-count", "density", "data-scale"),
        default="query-size",
    )
    parser.add_argument("--dataset", type=str, default="UB")
    args = parser.parse_args(argv)
    kwargs = dict(
        scale=args.scale, seed=args.seed, time_budget=args.time_budget
    )
    if args.sweep == "query-size":
        measurements = run_query_size(dataset=args.dataset, **kwargs)
        _print_sweep(measurements, "size", "Fig. 15: runtime vs |q|")
    elif args.sweep == "constraint-count":
        measurements = run_constraint_count(dataset=args.dataset, **kwargs)
        _print_sweep(measurements, "count", "Fig. 15: runtime vs |tc|")
    elif args.sweep == "density":
        measurements = run_density(dataset=args.dataset, **kwargs)
        _print_sweep(measurements, "density", "Fig. 17: runtime vs density")
    else:
        measurements = run_data_scale(**kwargs)
        _print_sweep(measurements, "fraction", "Fig. 18: runtime vs |E|")
    if args.csv:
        write_csv(measurements, args.csv)
    return measurements


if __name__ == "__main__":  # pragma: no cover - CLI entry
    main()
