"""Exp-1: running time of all methods (Table III and Table V).

Table III compares every algorithm on the default workload (q1, tc2)
across the six datasets; Table V expands to the full 3x3 (query,
constraint) grid for the four strongest baselines and our three
algorithms.  ``run_table3`` / ``run_table5`` regenerate those rows;
``main`` prints them in the paper's layout.

Usage::

    python -m repro.experiments.exp_runtime [--full] [--datasets CM,EE]
"""

from __future__ import annotations

from ..datasets import dataset_keys, load_dataset, paper_constraints, paper_query
from .records import Measurement, write_csv
from .runner import (
    CORE_ALGORITHMS,
    DEFAULT_COMPARISON,
    common_parser,
    measure,
)
from .tables import format_seconds, render_table

__all__ = ["run_table3", "run_table5", "main"]

#: Table V restricts the baseline set (as the paper does).
TABLE5_ALGORITHMS: tuple[str, ...] = (
    "rapidflow",
    "calig",
    "newsp",
    "ri-ds",
) + CORE_ALGORITHMS


def run_table3(
    datasets: tuple[str, ...] = dataset_keys(),
    algorithms: tuple[str, ...] = DEFAULT_COMPARISON,
    scale: float | None = None,
    seed: int = 1,
    time_budget: float = 30.0,
) -> list[Measurement]:
    """Runtime of every algorithm on (q1, tc2) per dataset (Table III)."""
    measurements: list[Measurement] = []
    query = paper_query(1)
    constraints = paper_constraints(2, num_edges=query.num_edges)
    for key in datasets:
        graph = load_dataset(key, scale=scale, seed=seed)
        for algorithm in algorithms:
            measurements.append(
                measure(
                    "exp1-table3",
                    key,
                    algorithm,
                    query,
                    constraints,
                    graph,
                    query_name="q1",
                    constraint_name="tc2",
                    time_budget=time_budget,
                )
            )
    return measurements


def run_table5(
    datasets: tuple[str, ...] = ("CM", "EE", "MO", "UB", "SU"),
    algorithms: tuple[str, ...] = TABLE5_ALGORITHMS,
    scale: float | None = None,
    seed: int = 1,
    time_budget: float = 30.0,
) -> list[Measurement]:
    """Runtime over the full (q, tc) grid (Table V)."""
    measurements: list[Measurement] = []
    for key in datasets:
        graph = load_dataset(key, scale=scale, seed=seed)
        for qi in (1, 2, 3):
            query = paper_query(qi)
            for tj in (1, 2, 3):
                constraints = paper_constraints(
                    tj, num_edges=query.num_edges
                )
                for algorithm in algorithms:
                    measurements.append(
                        measure(
                            "exp1-table5",
                            key,
                            algorithm,
                            query,
                            constraints,
                            graph,
                            query_name=f"q{qi}",
                            constraint_name=f"tc{tj}",
                            time_budget=time_budget,
                        )
                    )
    return measurements


def _print_table3(measurements: list[Measurement]) -> None:
    datasets = list(dict.fromkeys(m.dataset for m in measurements))
    algorithms = list(dict.fromkeys(m.algorithm for m in measurements))
    by_key = {(m.algorithm, m.dataset): m for m in measurements}
    rows: list[list[str]] = []
    for algorithm in algorithms:
        row = [algorithm]
        for dataset in datasets:
            m = by_key.get((algorithm, dataset))
            if m is None:
                row.append("-")
            else:
                suffix = "*" if m.budget_exhausted else ""
                row.append(format_seconds(m.seconds) + suffix)
        rows.append(row)
    print(
        render_table(
            ["Methods"] + datasets,
            rows,
            title="Table III: running time of various methods (seconds; "
            "* = stopped at time budget)",
        )
    )


def _print_table5(measurements: list[Measurement]) -> None:
    algorithms = list(dict.fromkeys(m.algorithm for m in measurements))
    combos = list(
        dict.fromkeys((m.dataset, m.query, m.constraint) for m in measurements)
    )
    by_key = {
        (m.dataset, m.query, m.constraint, m.algorithm): m
        for m in measurements
    }
    rows: list[list[str]] = []
    for dataset, query, constraint in combos:
        row = [dataset, f"{query},{constraint}"]
        for algorithm in algorithms:
            m = by_key.get((dataset, query, constraint, algorithm))
            if m is None:
                row.append("-")
            else:
                suffix = "*" if m.budget_exhausted else ""
                row.append(format_seconds(m.seconds) + suffix)
        rows.append(row)
    print(
        render_table(
            ["DataSet", "q,tc"] + algorithms,
            rows,
            title="Table V: running time of various q and tc (seconds; "
            "* = stopped at time budget)",
        )
    )


def main(argv: list[str] | None = None) -> list[Measurement]:
    parser = common_parser(__doc__.splitlines()[0])
    parser.add_argument(
        "--datasets",
        type=str,
        default=None,
        help="comma-separated dataset keys (default: all six)",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="also run the full (q, tc) grid (Table V)",
    )
    args = parser.parse_args(argv)
    datasets = (
        tuple(args.datasets.upper().split(",")) if args.datasets else dataset_keys()
    )
    measurements = run_table3(
        datasets=datasets,
        scale=args.scale,
        seed=args.seed,
        time_budget=args.time_budget,
    )
    _print_table3(measurements)
    if args.full:
        table5 = run_table5(
            datasets=datasets,
            scale=args.scale,
            seed=args.seed,
            time_budget=args.time_budget,
        )
        print()
        _print_table5(table5)
        measurements += table5
    if args.csv:
        write_csv(measurements, args.csv)
    return measurements


if __name__ == "__main__":  # pragma: no cover - CLI entry
    main()
