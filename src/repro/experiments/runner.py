"""Measurement harness: timed (and optionally memory-profiled) runs.

All experiment drivers funnel their matcher invocations through
:func:`measure`, which wraps :func:`repro.core.find_matches` with a time
budget, repetition, and optional ``tracemalloc`` peak-memory tracking —
the paper's Table IV measures resident memory; allocation peaks are the
closest language-portable equivalent.
"""

from __future__ import annotations

import argparse
import tracemalloc
from typing import Any

from ..core import MatchOptions, MatchResult, find_matches
from ..graphs import QueryGraph, TemporalConstraints, TemporalGraph
from .records import Measurement

__all__ = [
    "CORE_ALGORITHMS",
    "FAST_BASELINES",
    "HEAVY_BASELINES",
    "ALL_BASELINES",
    "DEFAULT_COMPARISON",
    "measure",
    "common_parser",
]

CORE_ALGORITHMS: tuple[str, ...] = ("tcsm-v2v", "tcsm-e2e", "tcsm-eve")
"""The paper's three algorithms, in presentation order."""

FAST_BASELINES: tuple[str, ...] = (
    "symbi",
    "turboflux",
    "graphflow",
    "iedyn",
)
"""CSM baselines that stay usable at our default scales."""

HEAVY_BASELINES: tuple[str, ...] = (
    "sj-tree",
    "rapidflow",
    "calig",
    "newsp",
    "ri-ds",
)
"""Baselines that routinely hit the time budget (as in the paper)."""

ALL_BASELINES: tuple[str, ...] = FAST_BASELINES + HEAVY_BASELINES

DEFAULT_COMPARISON: tuple[str, ...] = (
    FAST_BASELINES + HEAVY_BASELINES + CORE_ALGORITHMS
)
"""Table III's row order: baselines first, our algorithms last."""


def measure(
    experiment: str,
    dataset: str,
    algorithm: str,
    query: QueryGraph,
    constraints: TemporalConstraints,
    graph: TemporalGraph,
    query_name: str = "",
    constraint_name: str = "",
    time_budget: float | None = 30.0,
    repeat: int = 1,
    track_memory: bool = False,
    params: dict[str, object] | None = None,
    **options: Any,
) -> Measurement:
    """Run one (workload, algorithm) pair and record the outcome.

    With ``repeat > 1`` the minimum wall time over repetitions is kept
    (standard benchmarking practice); match counts and search statistics
    come from the first repetition.
    """
    best: MatchResult | None = None
    first: MatchResult | None = None
    memory_mb = 0.0
    for attempt in range(max(1, repeat)):
        if track_memory and attempt == 0:
            tracemalloc.start()
        result = find_matches(
            query,
            constraints,
            graph,
            algorithm=algorithm,
            options=MatchOptions(
                time_budget=time_budget, collect_matches=False
            ),
            **options,
        )
        if track_memory and attempt == 0:
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            memory_mb = peak / (1024 * 1024)
        if best is None or result.total_seconds < best.total_seconds:
            if best is None:
                first = result
            best = result
    assert best is not None and first is not None  # loop runs >= once
    return Measurement(
        experiment=experiment,
        dataset=dataset,
        algorithm=algorithm,
        query=query_name,
        constraint=constraint_name,
        seconds=best.total_seconds,
        build_seconds=best.build_seconds,
        match_seconds=best.match_seconds,
        matches=first.stats.matches,
        timestamps_expanded=first.stats.timestamps_expanded,
        timestamps_skipped=first.stats.timestamps_skipped,
        memory_mb=memory_mb,
        failed_enumerations=first.stats.failed_enumerations,
        first_fail_layer=first.stats.first_fail_layer,
        budget_exhausted=first.stats.budget_exhausted,
        filters=first.stats.filter_summary(),
        params=params or {},
    )


def common_parser(description: str) -> argparse.ArgumentParser:
    """Shared CLI options for the experiment drivers."""
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="dataset scale factor (default: per-dataset Python-friendly)",
    )
    parser.add_argument(
        "--seed", type=int, default=1, help="generator seed (default 1)"
    )
    parser.add_argument(
        "--time-budget",
        type=float,
        default=30.0,
        help="per-run wall-clock budget in seconds (default 30)",
    )
    parser.add_argument(
        "--csv",
        type=str,
        default=None,
        help="also write measurements to this CSV file",
    )
    return parser
