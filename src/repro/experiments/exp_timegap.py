"""Exp-10: matches and runtime versus the interaction time gap k (Fig. 22).

The constraint gap ``k`` sweeps from 0 to several days: the number of
matches grows quickly and then saturates (a larger window admits more —
eventually all — timestamp combinations), and runtime follows the match
count.  The paper's axis runs 0..3000 in its dataset's native time unit;
ours is seconds, so the sweep covers fractions of a day up to a week.

Usage::

    python -m repro.experiments.exp_timegap [--datasets MO,UB,SU]
"""

from __future__ import annotations

from ..datasets import load_dataset, paper_constraints, paper_query
from .records import Measurement, write_csv
from .runner import common_parser, measure
from .tables import format_seconds, render_series

__all__ = ["run", "main", "print_report", "DEFAULT_GAPS"]

SECONDS_PER_DAY = 86_400

DEFAULT_GAPS: tuple[int, ...] = (
    0,
    SECONDS_PER_DAY // 4,
    SECONDS_PER_DAY // 2,
    SECONDS_PER_DAY,
    2 * SECONDS_PER_DAY,
    4 * SECONDS_PER_DAY,
    7 * SECONDS_PER_DAY,
)


def run(
    datasets: tuple[str, ...] = ("MO", "UB", "SU"),
    gaps: tuple[int, ...] = DEFAULT_GAPS,
    algorithms: tuple[str, ...] = ("tcsm-eve",),
    scale: float | None = None,
    seed: int = 1,
    time_budget: float = 30.0,
) -> list[Measurement]:
    """Match counts and runtime for (q1, tc2) with varying gap k."""
    query = paper_query(1)
    measurements: list[Measurement] = []
    for key in datasets:
        graph = load_dataset(key, scale=scale, seed=seed)
        for gap in gaps:
            constraints = paper_constraints(
                2, num_edges=query.num_edges, gap=gap
            )
            for algorithm in algorithms:
                measurements.append(
                    measure(
                        "exp10-timegap",
                        key,
                        algorithm,
                        query,
                        constraints,
                        graph,
                        query_name="q1",
                        constraint_name=f"k={gap}",
                        time_budget=time_budget,
                        params={"gap": gap},
                    )
                )
    return measurements


def print_report(measurements: list[Measurement]) -> None:
    gaps = list(dict.fromkeys(m.params["gap"] for m in measurements))
    datasets = list(dict.fromkeys(m.dataset for m in measurements))
    algorithms = list(dict.fromkeys(m.algorithm for m in measurements))
    match_series: dict[str, list[str]] = {}
    time_series: dict[str, list[str]] = {}
    for dataset in datasets:
        for algorithm in algorithms:
            counts: list[str] = []
            times: list[str] = []
            for gap in gaps:
                found = [
                    m
                    for m in measurements
                    if m.dataset == dataset
                    and m.algorithm == algorithm
                    and m.params["gap"] == gap
                ]
                if found:
                    counts.append(str(found[0].matches))
                    times.append(format_seconds(found[0].seconds))
                else:
                    counts.append("-")
                    times.append("-")
            name = (
                dataset if len(algorithms) == 1 else f"{dataset}/{algorithm}"
            )
            match_series[name] = counts
            time_series[name] = times
    gap_labels = [f"{g / SECONDS_PER_DAY:g}d" for g in gaps]
    print(
        render_series(
            "k", gap_labels, match_series,
            title="Fig. 22 (top): number of matches vs k",
        )
    )
    print()
    print(
        render_series(
            "k", gap_labels, time_series,
            title="Fig. 22 (bottom): runtime vs k (seconds)",
        )
    )


def main(argv: list[str] | None = None) -> list[Measurement]:
    parser = common_parser(__doc__.splitlines()[0])
    parser.add_argument("--datasets", type=str, default="MO,UB,SU")
    args = parser.parse_args(argv)
    measurements = run(
        datasets=tuple(args.datasets.upper().split(",")),
        scale=args.scale,
        seed=args.seed,
        time_budget=args.time_budget,
    )
    print_report(measurements)
    if args.csv:
        write_csv(measurements, args.csv)
    return measurements


if __name__ == "__main__":  # pragma: no cover - CLI entry
    main()
