"""Frozen CSR snapshots: the compiled, immutable data plane.

A :class:`GraphSnapshot` is a :class:`~repro.graphs.TemporalGraph`
compiled once into a compact CSR-style representation backed by
``array``-module typed arrays:

* per-vertex neighbour *offsets* into a flat, id-sorted neighbour array
  (one entry per distinct ``(u, v)`` pair, out- and in-directions
  mirrored);
* per-pair timestamp *runs*: a second offset array maps each neighbour
  slot to its sorted slice of one flat timestamp array, so window queries
  are a bisect over machine integers instead of a dict probe plus list
  scan;
* label-partitioned vertex arrays (the label index), CSR degrees and
  lazily cached neighbour-label signatures, which together serve the NLF
  and LDF candidate filters without materialising a second static graph;
* a per-label edge index, so :meth:`timestamps_with_label` is one dict
  probe instead of a linear scan over per-timestamp label lookups.

Snapshots expose the same accessor API as :class:`TemporalGraph` (they
are interchangeable behind :data:`GraphView`), so every matcher hot loop
runs unchanged against either backend — which is exactly what lets the
test suite pin byte-for-byte match equivalence between the two paths.
Being flat and immutable, a snapshot pickles compactly (the arrays ship
as machine bytes), shares safely across threads without locks, and
carries a stable :attr:`fingerprint` for cache keys.

Build one with :meth:`TemporalGraph.freeze` (cached per graph) or
:func:`compile_snapshot` (always recompiles); :func:`ensure_snapshot`
accepts either backend and is what the matchers call.
"""

from __future__ import annotations

import bisect
import hashlib
from array import array
from collections import Counter
from collections.abc import Hashable, Iterator, Sequence
from typing import TYPE_CHECKING, Union

from ..errors import GraphError
from .temporal_graph import TemporalEdge, TemporalGraph

if TYPE_CHECKING:
    from .segmented import SegmentedGraph
    from .static_graph import StaticGraph

__all__ = [
    "GraphSnapshot",
    "GraphView",
    "SnapshotWriteBarrier",
    "StaticView",
    "compile_snapshot",
    "ensure_snapshot",
    "snapshot_compile_count",
    "snapshot_write_barrier",
]

Timestamp = int

_EMPTY_TIMES: Sequence[int] = memoryview(array("q"))

#: Process-wide count of CSR compilations (the service's compile-once
#: guarantee is asserted against this probe in the test suite).
_COMPILE_COUNT = 0


def snapshot_compile_count() -> int:
    """Number of :func:`compile_snapshot` calls in this process."""
    return _COMPILE_COUNT


class GraphSnapshot:
    """Immutable CSR view of a temporal graph (see module docstring).

    Instances are produced by :func:`compile_snapshot` /
    :meth:`TemporalGraph.freeze`; the constructor is an internal
    assembly detail.  All mutating state is build-time only — the lazy
    caches (neighbour-label signatures, time-sorted edge list,
    fingerprint) are append-only and safe to race on.
    """

    __slots__ = (
        "_labels",
        "_num_temporal_edges",
        "_num_static_edges",
        "_min_time",
        "_max_time",
        "_out_offsets",
        "_out_nbrs",
        "_out_ts_offsets",
        "_out_times",
        "_in_offsets",
        "_in_nbrs",
        "_in_ts_offsets",
        "_in_times",
        "_out_nbrs_mv",
        "_out_times_mv",
        "_in_nbrs_mv",
        "_in_times_mv",
        "_label_index",
        "_edge_labels",
        "_label_times",
        "_nlc",
        "_edges_by_time",
        "_fingerprint",
        "_barrier",
    )

    def __init__(
        self,
        labels: tuple[Hashable, ...],
        out_offsets: array[int],
        out_nbrs: array[int],
        out_ts_offsets: array[int],
        out_times: array[int],
        in_offsets: array[int],
        in_nbrs: array[int],
        in_ts_offsets: array[int],
        in_times: array[int],
        label_index: dict[Hashable, tuple[int, ...]],
        edge_labels: dict[tuple[int, int, Timestamp], Hashable],
        min_time: Timestamp | None,
        max_time: Timestamp | None,
    ) -> None:
        self._labels = labels
        self._out_offsets = out_offsets
        self._out_nbrs = out_nbrs
        self._out_ts_offsets = out_ts_offsets
        self._out_times = out_times
        self._in_offsets = in_offsets
        self._in_nbrs = in_nbrs
        self._in_ts_offsets = in_ts_offsets
        self._in_times = in_times
        self._label_index = label_index
        self._edge_labels = dict(edge_labels)
        self._min_time = min_time
        self._max_time = max_time
        self._num_static_edges = len(out_nbrs)
        self._num_temporal_edges = len(out_times)
        # Per-label edge index: (u, v, label) -> sorted timestamp tuple.
        label_times: dict[tuple[int, int, Hashable], tuple[Timestamp, ...]] = {}
        if edge_labels:
            grouped: dict[tuple[int, int, Hashable], list[Timestamp]] = {}
            for (u, v, t), lab in edge_labels.items():
                grouped.setdefault((u, v, lab), []).append(t)
            label_times = {
                key: tuple(sorted(times)) for key, times in grouped.items()
            }
        self._label_times = label_times
        self._init_views()
        self._nlc: list[Counter[Hashable] | None] = [None] * len(labels)
        self._edges_by_time: list[TemporalEdge] | None = None
        self._fingerprint: str | None = None
        self._barrier: GraphSnapshot | None = None

    def _init_views(self) -> None:
        """(Re)build the zero-copy memoryviews over the flat arrays."""
        self._out_nbrs_mv = memoryview(self._out_nbrs)
        self._out_times_mv = memoryview(self._out_times)
        self._in_nbrs_mv = memoryview(self._in_nbrs)
        self._in_times_mv = memoryview(self._in_times)

    # ------------------------------------------------------------------
    # pickling (ship arrays as machine bytes; drop lazy caches)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict[str, object]:
        return {
            "labels": self._labels,
            "out_offsets": self._out_offsets,
            "out_nbrs": self._out_nbrs,
            "out_ts_offsets": self._out_ts_offsets,
            "out_times": self._out_times,
            "in_offsets": self._in_offsets,
            "in_nbrs": self._in_nbrs,
            "in_ts_offsets": self._in_ts_offsets,
            "in_times": self._in_times,
            "label_index": self._label_index,
            "edge_labels": self._edge_labels,
            "min_time": self._min_time,
            "max_time": self._max_time,
        }

    def __setstate__(self, state: dict[str, object]) -> None:
        GraphSnapshot.__init__(
            self,
            labels=state["labels"],  # type: ignore[arg-type]
            out_offsets=state["out_offsets"],  # type: ignore[arg-type]
            out_nbrs=state["out_nbrs"],  # type: ignore[arg-type]
            out_ts_offsets=state["out_ts_offsets"],  # type: ignore[arg-type]
            out_times=state["out_times"],  # type: ignore[arg-type]
            in_offsets=state["in_offsets"],  # type: ignore[arg-type]
            in_nbrs=state["in_nbrs"],  # type: ignore[arg-type]
            in_ts_offsets=state["in_ts_offsets"],  # type: ignore[arg-type]
            in_times=state["in_times"],  # type: ignore[arg-type]
            label_index=state["label_index"],  # type: ignore[arg-type]
            edge_labels=state["edge_labels"],  # type: ignore[arg-type]
            min_time=state["min_time"],  # type: ignore[arg-type]
            max_time=state["max_time"],  # type: ignore[arg-type]
        )

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    @property
    def fingerprint(self) -> str:
        """Stable hex digest of the compiled payload (cache-key safe).

        Covers labels, both CSR planes and the edge-label map; equal
        graphs produce equal fingerprints across processes (the arrays
        hash as machine bytes, the labels as canonical reprs).
        """
        if self._fingerprint is None:
            h = hashlib.sha256()
            h.update(repr(self._labels).encode("utf-8"))
            for arr in (
                self._out_offsets,
                self._out_nbrs,
                self._out_ts_offsets,
                self._out_times,
                self._in_offsets,
                self._in_nbrs,
                self._in_ts_offsets,
                self._in_times,
            ):
                h.update(arr.tobytes())
            if self._edge_labels:
                h.update(repr(sorted(self._edge_labels.items())).encode("utf-8"))
            # idempotent lazy cache: a racy recompute yields an identical digest
            self._fingerprint = h.hexdigest()  # reprolint: disable=R014
        return self._fingerprint

    @property
    def nbytes(self) -> int:
        """Bytes held by the CSR arrays (the compiled data plane payload)."""
        return sum(
            arr.itemsize * len(arr)
            for arr in (
                self._out_offsets,
                self._out_nbrs,
                self._out_ts_offsets,
                self._out_times,
                self._in_offsets,
                self._in_nbrs,
                self._in_ts_offsets,
                self._in_times,
            )
        )

    @property
    def owned_nbytes(self) -> int:
        """CSR bytes this process pays for this snapshot instance.

        Equal to :attr:`nbytes` for ordinary snapshots (the arrays are
        private to the process); the shared-memory subclass overrides
        this to 0 because its buffers alias one OS-level segment.  The
        fan-out benchmarks sum this across workers to demonstrate the
        K-process / one-graph-image memory win.
        """
        return self.nbytes

    # ------------------------------------------------------------------
    # basic accessors (TemporalGraph-compatible)
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self._labels)

    @property
    def num_temporal_edges(self) -> int:
        """Number of distinct ``(u, v, t)`` triples (|ℰ| in Table II)."""
        return self._num_temporal_edges

    @property
    def num_static_edges(self) -> int:
        """Number of distinct ``(u, v)`` pairs (|E| in Table II)."""
        return self._num_static_edges

    @property
    def min_time(self) -> Timestamp | None:
        return self._min_time

    @property
    def max_time(self) -> Timestamp | None:
        return self._max_time

    @property
    def time_span(self) -> Timestamp:
        """``max_time - min_time`` (0 for graphs with < 2 timestamps)."""
        if self._min_time is None or self._max_time is None:
            return 0
        return self._max_time - self._min_time

    def vertices(self) -> range:
        return range(len(self._labels))

    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < len(self._labels):
            raise GraphError(f"vertex {v} out of range [0, {len(self._labels)})")

    def label(self, v: int) -> Hashable:
        self._check_vertex(v)
        return self._labels[v]

    @property
    def labels(self) -> tuple[Hashable, ...]:
        return self._labels

    def vertices_with_label(self, label: Hashable) -> tuple[int, ...]:
        return self._label_index.get(label, ())

    # ------------------------------------------------------------------
    # adjacency
    # ------------------------------------------------------------------
    def _out_slot(self, u: int, v: int) -> int:
        """CSR slot of pair ``(u, v)`` in the out-plane, or -1."""
        offsets = self._out_offsets
        lo, hi = offsets[u], offsets[u + 1]
        k = bisect.bisect_left(self._out_nbrs, v, lo, hi)
        if k < hi and self._out_nbrs[k] == v:
            return k
        return -1

    def _in_slot(self, v: int, u: int) -> int:
        """CSR slot of pair ``(u, v)`` in the in-plane, or -1."""
        offsets = self._in_offsets
        lo, hi = offsets[v], offsets[v + 1]
        k = bisect.bisect_left(self._in_nbrs, u, lo, hi)
        if k < hi and self._in_nbrs[k] == u:
            return k
        return -1

    def has_pair(self, u: int, v: int) -> bool:
        """Does at least one temporal edge ``u -> v`` exist?"""
        self._check_vertex(u)
        self._check_vertex(v)
        return self._out_slot(u, v) >= 0

    def timestamps(self, u: int, v: int) -> tuple[Timestamp, ...]:
        """Sorted timestamps of interactions ``u -> v`` (``T(u, v)``)."""
        return tuple(self.timestamps_list(u, v))

    def timestamps_list(self, u: int, v: int) -> Sequence[Timestamp]:
        """Sorted timestamps of ``u -> v`` as a zero-copy array slice.

        Hot-path accessor: the returned :class:`memoryview` aliases the
        snapshot's flat timestamp array (read-only by construction).
        Returns an empty sequence for absent pairs.
        """
        self._check_vertex(u)
        self._check_vertex(v)
        k = self._out_slot(u, v)
        if k < 0:
            return _EMPTY_TIMES
        toff = self._out_ts_offsets
        return self._out_times_mv[toff[k] : toff[k + 1]]

    def timestamps_with_label(
        self, u: int, v: int, label: Hashable
    ) -> Sequence[Timestamp]:
        """Timestamps of ``u -> v`` edges carrying exactly *label*.

        One probe into the per-label edge index built at compile time —
        no per-timestamp label lookups.
        """
        self._check_vertex(u)
        self._check_vertex(v)
        return self._label_times.get((u, v, label), ())

    def timestamps_in_window(
        self, u: int, v: int, lo: float, hi: float
    ) -> tuple[Timestamp, ...]:
        """Timestamps ``t`` of ``u -> v`` edges with ``lo <= t <= hi``.

        Two bisects into the pair's sorted run; bounds may be floats
        (including ``±inf``) so STN-closure windows plug in directly.
        """
        self._check_vertex(u)
        self._check_vertex(v)
        k = self._out_slot(u, v)
        if k < 0:
            return ()
        toff = self._out_ts_offsets
        times = self._out_times
        start, stop = toff[k], toff[k + 1]
        left = bisect.bisect_left(times, lo, start, stop)
        right = bisect.bisect_right(times, hi, start, stop)
        return tuple(self._out_times_mv[left:right])

    def timestamps_with_label_in_window(
        self, u: int, v: int, label: Hashable, lo: float, hi: float
    ) -> Sequence[Timestamp]:
        """Timestamps of ``u -> v`` edges with *label* and ``lo <= t <= hi``.

        One probe into the per-label edge index, then two bisects into
        that (sorted) run — the labeled twin of
        :meth:`timestamps_in_window`.
        """
        self._check_vertex(u)
        self._check_vertex(v)
        times = self._label_times.get((u, v, label), ())
        if not times:
            return ()
        left = bisect.bisect_left(times, lo)
        right = bisect.bisect_right(times, hi)
        return times[left:right]

    def edge_label(self, u: int, v: int, t: Timestamp) -> Hashable | None:
        """Label of temporal edge ``(u, v, t)``, or None if unlabeled."""
        return self._edge_labels.get((u, v, t))

    @property
    def has_edge_labels(self) -> bool:
        """True if any temporal edge carries a label."""
        return bool(self._edge_labels)

    def out_neighbor_ids(self, u: int) -> Sequence[int]:
        """Distinct out-neighbours of ``u``, id-sorted, zero-copy."""
        self._check_vertex(u)
        offsets = self._out_offsets
        return self._out_nbrs_mv[offsets[u] : offsets[u + 1]]

    def in_neighbor_ids(self, v: int) -> Sequence[int]:
        """Distinct in-neighbours of ``v``, id-sorted, zero-copy."""
        self._check_vertex(v)
        offsets = self._in_offsets
        return self._in_nbrs_mv[offsets[v] : offsets[v + 1]]

    def out_items(
        self, u: int
    ) -> Iterator[tuple[int, Sequence[Timestamp]]]:
        """Iterate ``(v, sorted timestamps)`` over out-neighbours of ``u``."""
        self._check_vertex(u)
        offsets = self._out_offsets
        nbrs = self._out_nbrs
        toff = self._out_ts_offsets
        times = self._out_times_mv
        for k in range(offsets[u], offsets[u + 1]):
            yield nbrs[k], times[toff[k] : toff[k + 1]]

    def in_items(
        self, v: int
    ) -> Iterator[tuple[int, Sequence[Timestamp]]]:
        """Iterate ``(u, sorted timestamps)`` over in-neighbours of ``v``."""
        self._check_vertex(v)
        offsets = self._in_offsets
        nbrs = self._in_nbrs
        toff = self._in_ts_offsets
        times = self._in_times_mv
        for k in range(offsets[v], offsets[v + 1]):
            yield nbrs[k], times[toff[k] : toff[k + 1]]

    def out_pairs(
        self, u: int
    ) -> Iterator[tuple[int, tuple[Timestamp, ...]]]:
        """Iterate ``(v, timestamps)`` over out-neighbours of ``u``."""
        for v, times in self.out_items(u):
            yield v, tuple(times)

    def in_pairs(
        self, v: int
    ) -> Iterator[tuple[int, tuple[Timestamp, ...]]]:
        """Iterate ``(u, timestamps)`` over in-neighbours of ``v``."""
        for u, times in self.in_items(v):
            yield u, tuple(times)

    def out_edges(self, u: int) -> Iterator[TemporalEdge]:
        """All temporal edges leaving ``u``, timestamps expanded."""
        for v, times in self.out_items(u):
            for t in times:
                yield TemporalEdge(u, v, t)

    def in_edges(self, v: int) -> Iterator[TemporalEdge]:
        """All temporal edges entering ``v``, timestamps expanded."""
        for u, times in self.in_items(v):
            for t in times:
                yield TemporalEdge(u, v, t)

    def edges(self) -> Iterator[TemporalEdge]:
        """All temporal edges in vertex order (not time order)."""
        for u in self.vertices():
            yield from self.out_edges(u)

    def edges_by_time(self) -> list[TemporalEdge]:
        """All temporal edges sorted by ``(t, u, v)`` (cached; read-only).

        This is the insertion stream consumed by the continuous
        subgraph-matching baselines.
        """
        if self._edges_by_time is None:
            # idempotent lazy cache: a racy recompute yields an identical list
            self._edges_by_time = sorted(  # reprolint: disable=R014
                self.edges(), key=lambda e: (e.t, e.u, e.v)
            )
        return self._edges_by_time

    # ------------------------------------------------------------------
    # static (de-temporal) view: degrees and label signatures
    # ------------------------------------------------------------------
    def out_degree(self, v: int) -> int:
        """Distinct out-neighbours of ``v`` (static out-degree)."""
        self._check_vertex(v)
        return self._out_offsets[v + 1] - self._out_offsets[v]

    def in_degree(self, v: int) -> int:
        """Distinct in-neighbours of ``v`` (static in-degree)."""
        self._check_vertex(v)
        return self._in_offsets[v + 1] - self._in_offsets[v]

    def out_neighbors(self, v: int) -> Sequence[int]:
        """Distinct out-neighbours (alias of :meth:`out_neighbor_ids`)."""
        return self.out_neighbor_ids(v)

    def in_neighbors(self, v: int) -> Sequence[int]:
        """Distinct in-neighbours (alias of :meth:`in_neighbor_ids`)."""
        return self.in_neighbor_ids(v)

    def neighbor_label_counts(self, v: int) -> Counter[Hashable]:
        """Multiset of labels over the undirected neighbourhood of ``v``.

        Cached per vertex; this is the label signature consumed by the
        NLF filter (Definition 6) and the EVE ``Vmatch`` look-ahead.  A
        vertex that is both an in- and an out-neighbour counts once, as
        in :meth:`StaticGraph.neighbor_label_counts`.
        """
        self._check_vertex(v)
        cached = self._nlc[v]
        if cached is None:
            labels = self._labels
            union = set(self.out_neighbor_ids(v))
            union.update(self.in_neighbor_ids(v))
            cached = Counter(labels[w] for w in union)
            self._nlc[v] = cached  # reprolint: disable=R014 -- idempotent lazy cache slot
        return cached

    def static_view(self) -> "GraphSnapshot":
        """The static (de-temporal) accessor surface — the snapshot itself.

        Degrees, neighbour sets and label signatures all come straight
        from the CSR planes, so no second graph is materialised.
        """
        return self

    def de_temporal(self) -> "StaticGraph":
        """A materialised :class:`StaticGraph` (compatibility shim).

        Prefer :meth:`static_view`; this exists for callers that need a
        genuine :class:`StaticGraph` object.  Not cached.
        """
        from .static_graph import StaticGraph

        graph = StaticGraph(self._labels)
        for u in self.vertices():
            for v in self.out_neighbor_ids(u):
                graph.add_edge(u, v)
        return graph

    def freeze(self) -> "GraphSnapshot":
        """A snapshot is already frozen; returns itself."""
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GraphSnapshot(num_vertices={self.num_vertices}, "
            f"temporal_edges={self.num_temporal_edges}, "
            f"static_edges={self.num_static_edges})"
        )


def compile_snapshot(graph: TemporalGraph) -> GraphSnapshot:
    """Compile *graph* into a fresh :class:`GraphSnapshot`.

    O(|V| + |E| log deg + |ℰ|): neighbour lists are sorted per vertex,
    timestamp runs are already sorted in the builder.  Prefer the cached
    :meth:`TemporalGraph.freeze` unless you need a fresh compile.
    """
    global _COMPILE_COUNT
    _COMPILE_COUNT += 1
    n = graph.num_vertices
    out_offsets = array("q", [0])
    out_nbrs = array("q")
    out_ts_offsets = array("q", [0])
    out_times = array("q")
    in_offsets = array("q", [0])
    in_nbrs = array("q")
    in_ts_offsets = array("q", [0])
    in_times = array("q")
    for u in range(n):
        for v, times in sorted(graph.out_items(u)):
            out_nbrs.append(v)
            out_times.extend(times)
            out_ts_offsets.append(len(out_times))
        out_offsets.append(len(out_nbrs))
    for v in range(n):
        for u, times in sorted(graph.in_items(v)):
            in_nbrs.append(u)
            in_times.extend(times)
            in_ts_offsets.append(len(in_times))
        in_offsets.append(len(in_nbrs))
    label_index: dict[Hashable, list[int]] = {}
    for v, lab in enumerate(graph.labels):
        label_index.setdefault(lab, []).append(v)
    edge_labels = {
        (u, v, t): graph.edge_label(u, v, t)
        for u, v, t in graph.edges()
        if graph.edge_label(u, v, t) is not None
    }
    return GraphSnapshot(
        labels=graph.labels,
        out_offsets=out_offsets,
        out_nbrs=out_nbrs,
        out_ts_offsets=out_ts_offsets,
        out_times=out_times,
        in_offsets=in_offsets,
        in_nbrs=in_nbrs,
        in_ts_offsets=in_ts_offsets,
        in_times=in_times,
        label_index={k: tuple(vs) for k, vs in label_index.items()},
        edge_labels=edge_labels,
        min_time=graph.min_time,
        max_time=graph.max_time,
    )


#: Any graph backend; matcher hot loops are written against this union
#: and behave identically on all of them (pinned by the equivalence
#: tests): the mutable dict builder, the compiled CSR snapshot, and the
#: appendable segmented graph used by the streaming subsystem.
GraphView = Union[TemporalGraph, GraphSnapshot, "SegmentedGraph"]

#: Either static accessor surface accepted by the candidate filters.
StaticView = Union["StaticGraph", GraphSnapshot]


def ensure_snapshot(graph: GraphView) -> GraphSnapshot:
    """*graph* as a snapshot: frozen views pass through, graphs compile.

    Compilation is cached on the source graph (see
    :meth:`TemporalGraph.freeze`), so repeated matcher preparation
    against one graph compiles its data plane exactly once.
    Segment-aware: a :class:`~repro.graphs.SegmentedGraph` answers via
    its own cached :meth:`~repro.graphs.SegmentedGraph.freeze`, which
    returns its single compiled segment without recompiling whenever the
    tail is empty.  Never wraps
    in a write barrier — callers rely on identity pass-through; the
    engine applies :func:`snapshot_write_barrier` itself in sanitizer
    mode.
    """
    if isinstance(graph, GraphSnapshot):
        return graph
    return graph.freeze()


# ----------------------------------------------------------------------
# sanitizer write barrier (REPRO_SANITIZE=1 / MatchOptions(sanitize=True))
# ----------------------------------------------------------------------

#: Slots the R014 pragmas certify as idempotent lazy caches — the only
#: post-construction writes a snapshot may see (racy recompute yields an
#: identical value, so they stay writable under the barrier).
_LAZY_CACHE_SLOTS = frozenset({"_fingerprint", "_edges_by_time", "_barrier"})


class SnapshotWriteBarrier(GraphSnapshot):
    """A :class:`GraphSnapshot` that raises on post-construction mutation.

    The runtime half of reprolint's R014: any ``snapshot.attr = ...``
    outside construction raises
    :class:`~repro.obs.sanitize.SanitizerError` at the offending site
    instead of silently corrupting state shared across threads.  Reads,
    the CSR data plane, and the idempotent lazy caches behave exactly
    like the base class, so matcher results are unchanged — pinned by
    the tier-1 suite running under ``REPRO_SANITIZE=1``.
    """

    __slots__ = ("_sealed",)

    def __init__(self, *args: object, **kwargs: object) -> None:
        object.__setattr__(self, "_sealed", False)  # reprolint: disable=R003
        super().__init__(*args, **kwargs)  # type: ignore[arg-type]
        object.__setattr__(self, "_sealed", True)  # reprolint: disable=R003

    def __setattr__(self, name: str, value: object) -> None:
        if not getattr(self, "_sealed", False) or name in _LAZY_CACHE_SLOTS:
            object.__setattr__(self, name, value)  # reprolint: disable=R003
            return
        from ..obs.sanitize import SanitizerError

        raise SanitizerError(
            f"write to GraphSnapshot.{name}: snapshots are frozen after "
            "compile; build a new snapshot instead (sanitizer barrier)"
        )

    def __delattr__(self, name: str) -> None:
        from ..obs.sanitize import SanitizerError

        raise SanitizerError(
            f"delete of GraphSnapshot.{name}: snapshots are frozen after "
            "compile (sanitizer barrier)"
        )

    def __reduce__(self) -> tuple[object, ...]:
        # The default slot-state protocol would route __setstate__ ->
        # __init__ -> blocked __setattr__ on a sealed instance; rebuild a
        # plain snapshot from pickled state and re-wrap instead.
        return (_rebuild_write_barrier, (self.__getstate__(),))


def _rebuild_write_barrier(state: dict[str, object]) -> "SnapshotWriteBarrier":
    """Unpickle helper: reconstruct a barrier-wrapped snapshot."""
    return SnapshotWriteBarrier(**state)  # type: ignore[arg-type]


def snapshot_write_barrier(snapshot: GraphSnapshot) -> GraphSnapshot:
    """*snapshot* wrapped in the write barrier (idempotent and cached).

    Rebuilds from pickle-equivalent state rather than aliasing slots, so
    the wrapped copy is independent; lazy caches re-materialise on first
    use.  Compile counts are unaffected (no CSR recompilation happens —
    the arrays are shared by reference), and the wrapper is cached on the
    source snapshot so repeated wrapping preserves identity (the
    registry's compile-once/reuse guarantees hold under the sanitizer).
    """
    if isinstance(snapshot, SnapshotWriteBarrier):
        return snapshot
    if snapshot._barrier is None:
        # idempotent lazy cache: a racy double-wrap publishes one of two
        # equivalent barriers over the same shared arrays
        snapshot._barrier = SnapshotWriteBarrier(  # reprolint: disable=R014
            **snapshot.__getstate__()  # type: ignore[arg-type]
        )
    return snapshot._barrier
