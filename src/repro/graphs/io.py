"""Loading and saving temporal graphs in the SNAP edge-list format.

The paper's six datasets (CollegeMsg, email-Eu-core-temporal, ...) are
distributed by SNAP as whitespace-separated ``src dst timestamp`` lines.
SNAP datasets carry no vertex labels, so the loader either reads a sidecar
``*.labels`` file (``vertex label`` lines) or assigns labels deterministically
from a seeded RNG — exactly what the synthetic generators do, keeping
loaded and generated graphs interchangeable in the experiment drivers.
"""

from __future__ import annotations

import gzip
import random
from collections.abc import Hashable, Sequence
from pathlib import Path
from typing import IO, cast

from ..errors import DatasetError
from .temporal_graph import TemporalGraph

__all__ = [
    "load_snap_temporal",
    "save_snap_temporal",
    "load_labels",
    "save_labels",
    "default_label_alphabet",
]


def default_label_alphabet(num_labels: int) -> tuple[str, ...]:
    """Generate ``num_labels`` short string labels: A, B, ..., Z, L26, ..."""
    if num_labels < 1:
        raise DatasetError(f"num_labels must be >= 1, got {num_labels}")
    alphabet = [chr(ord("A") + i) for i in range(min(num_labels, 26))]
    alphabet.extend(f"L{i}" for i in range(26, num_labels))
    return tuple(alphabet)


def _open_text(path: Path, mode: str) -> IO[str]:
    if path.suffix == ".gz":
        return cast("IO[str]", gzip.open(path, mode + "t", encoding="utf-8"))
    return open(path, mode, encoding="utf-8")


def load_snap_temporal(
    path: str | Path,
    labels: dict[int, Hashable] | None = None,
    num_labels: int = 8,
    seed: int = 0,
    max_edges: int | None = None,
) -> TemporalGraph:
    """Load a SNAP temporal edge list into a :class:`TemporalGraph`.

    Parameters
    ----------
    path:
        File of ``src dst timestamp`` lines (``#`` comments allowed;
        ``.gz`` suffix handled transparently).  Raw SNAP vertex ids are
        remapped to a dense ``0..n-1`` range in first-seen order —
        *unless* the label map's domain is already exactly ``0..n-1``
        (always true for sidecars written by :func:`save_snap_temporal`),
        in which case ids are kept verbatim and the label map defines the
        vertex universe.  Verbatim ids make round-trips lossless and let
        a file be split into a base prefix plus a streamed delta
        (``repro ingest``) that references one shared universe.
    labels:
        Optional ``raw_id -> label`` map.  If omitted, a sidecar file
        ``<path>.labels`` is used when present; otherwise labels are drawn
        uniformly from :func:`default_label_alphabet` with the given seed.
    num_labels, seed:
        Control the fallback random label assignment.
    max_edges:
        Optional cap on temporal edges read (useful to down-scale huge
        datasets for pure-Python runs).
    """
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"dataset file not found: {path}")
    if labels is None:
        sidecar = path.with_name(path.name + ".labels")
        if sidecar.exists():
            labels = load_labels(sidecar)

    # A dense label domain fixes the universe up front: ids pass through
    # verbatim, so a prefix of the file loads into the same id space the
    # rest of the file (streamed later) references.
    verbatim = labels is not None and set(labels) == set(range(len(labels)))

    raw_to_dense: dict[int, int] = {}
    raw_ids: list[int] = []
    edges: list[tuple[int, int, int]] = []
    dropped_self_loops = 0
    with _open_text(path, "r") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) < 3:
                raise DatasetError(
                    f"{path}:{line_no}: expected 'src dst timestamp', got {line!r}"
                )
            try:
                src, dst, t = int(parts[0]), int(parts[1]), int(parts[2])
            except ValueError as exc:
                raise DatasetError(f"{path}:{line_no}: {exc}") from None
            if src == dst:
                dropped_self_loops += 1
                continue
            if verbatim:
                assert labels is not None
                for raw in (src, dst):
                    if raw not in labels:
                        raise DatasetError(
                            f"{path}:{line_no}: vertex {raw} outside the "
                            f"label map's 0..{len(labels) - 1} universe"
                        )
                edges.append((src, dst, t))
            else:
                for raw in (src, dst):
                    if raw not in raw_to_dense:
                        raw_to_dense[raw] = len(raw_ids)
                        raw_ids.append(raw)
                edges.append((raw_to_dense[src], raw_to_dense[dst], t))
            if max_edges is not None and len(edges) >= max_edges:
                break

    if verbatim:
        assert labels is not None
        label_list: Sequence[Hashable] = [
            labels[i] for i in range(len(labels))
        ]
    elif labels is not None:
        try:
            label_list = [labels[raw] for raw in raw_ids]
        except KeyError as exc:
            raise DatasetError(f"no label for vertex {exc} in label map") from None
    else:
        alphabet = default_label_alphabet(num_labels)
        rng = random.Random(seed)
        label_list = [rng.choice(alphabet) for _ in raw_ids]

    return TemporalGraph(label_list, edges)


def save_snap_temporal(
    graph: TemporalGraph,
    path: str | Path,
    save_label_sidecar: bool = True,
) -> None:
    """Write *graph* as ``src dst timestamp`` lines (time-sorted).

    With ``save_label_sidecar`` (default), labels go to ``<path>.labels``
    so a round-trip through :func:`load_snap_temporal` is lossless.
    """
    path = Path(path)
    with _open_text(path, "w") as handle:
        for edge in graph.edges_by_time():
            handle.write(f"{edge.u} {edge.v} {edge.t}\n")
    if save_label_sidecar:
        save_labels(
            {v: graph.label(v) for v in graph.vertices()},
            path.with_name(path.name + ".labels"),
        )


def load_labels(path: str | Path) -> dict[int, str]:
    """Read a ``vertex label`` sidecar file."""
    path = Path(path)
    labels: dict[int, str] = {}
    with _open_text(path, "r") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(maxsplit=1)
            if len(parts) != 2:
                raise DatasetError(
                    f"{path}:{line_no}: expected 'vertex label', got {line!r}"
                )
            try:
                labels[int(parts[0])] = parts[1]
            except ValueError as exc:
                raise DatasetError(f"{path}:{line_no}: {exc}") from None
    return labels


def save_labels(labels: dict[int, Hashable], path: str | Path) -> None:
    """Write a ``vertex label`` sidecar file (vertex order)."""
    path = Path(path)
    with _open_text(path, "w") as handle:
        for vertex in sorted(labels):
            handle.write(f"{vertex} {labels[vertex]}\n")
