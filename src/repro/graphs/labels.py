"""Label handling utilities shared by all graph types.

Labels in the paper are opaque symbols attached to vertices (``A``, ``B``,
...).  The library accepts any hashable object as a label.  For dense
numeric processing (synthetic generators, NLF signatures) a
:class:`LabelTable` interns labels to consecutive integers.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Hashable, Iterable, Iterator, Sequence

__all__ = ["LabelTable", "label_histogram"]


class LabelTable:
    """Bidirectional mapping between labels and dense integer codes.

    >>> table = LabelTable(["A", "B", "A"])
    >>> table.code("A"), table.code("B")
    (0, 1)
    >>> table.label(1)
    'B'
    >>> len(table)
    2
    """

    __slots__ = ("_code_by_label", "_labels")

    def __init__(self, labels: Iterable[Hashable] = ()) -> None:
        self._code_by_label: dict[Hashable, int] = {}
        self._labels: list[Hashable] = []
        for label in labels:
            self.intern(label)

    def intern(self, label: Hashable) -> int:
        """Return the code for *label*, assigning a fresh one if unseen."""
        code = self._code_by_label.get(label)
        if code is None:
            code = len(self._labels)
            self._code_by_label[label] = code
            self._labels.append(label)
        return code

    def code(self, label: Hashable) -> int:
        """Return the code of a known *label*; raise ``KeyError`` otherwise."""
        return self._code_by_label[label]

    def label(self, code: int) -> Hashable:
        """Return the label for *code*; raise ``IndexError`` otherwise."""
        return self._labels[code]

    def __contains__(self, label: Hashable) -> bool:
        return label in self._code_by_label

    def __len__(self) -> int:
        return len(self._labels)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._labels)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LabelTable({self._labels!r})"


def label_histogram(labels: Sequence[Hashable]) -> Counter[Hashable]:
    """Count occurrences of each label.

    Used by generators to report label skew and by NLF-style filters to
    compare neighbourhood label multisets.
    """
    return Counter(labels)
