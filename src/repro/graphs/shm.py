"""Shared-memory snapshot fan-out: one graph image for K processes.

A compiled :class:`~repro.graphs.GraphSnapshot` is flat ``array('q')``
buffers plus a small amount of Python metadata (labels, label index,
edge labels).  :class:`SharedSnapshot` maps those buffers into one
:mod:`multiprocessing.shared_memory` segment so that worker processes
*attach* to the single OS-level graph image by segment **name** instead
of each deserialising a pickled copy — K workers then cost one graph in
resident memory instead of K, and the first probe in a worker needs no
deserialize and no recompile (``snapshot_compile_count`` stays flat).

Segment layout (all offsets 8-aligned)::

    [u64 meta_len][pickled metadata][CSR arrays, canonical order]

The metadata pickle carries the per-array lengths (offsets derive from
them), the label structures and the time bounds; the arrays ship as raw
machine bytes and are never copied on attach — the attached snapshot's
accessor surface is backed by read-only memoryviews into the mapping,
byte-for-byte equal to the in-process snapshot (parity is pinned in
``tests/graphs/test_shm.py``).

Lifecycle: the exporting process owns the segment and unlinks it when
the handle's refcount drops to zero (:meth:`SharedSnapshot.addref` /
:meth:`SharedSnapshot.close`); attached handles only close their local
mapping.  Pickling a handle ships the segment *name* only — unpickling
attaches (cached per process), which is what lets
:class:`~repro.service.ProcessSpec` stay a few hundred bytes regardless
of graph size.
"""

from __future__ import annotations

import atexit
import os
import pickle
import threading
from array import array
from multiprocessing import shared_memory
from typing import Any, cast

from ..errors import GraphError
from .snapshot import GraphSnapshot

__all__ = [
    "SharedGraphSnapshot",
    "SharedSnapshot",
    "attach_shared_snapshot",
]

#: Canonical order of the CSR planes inside the segment (mirrors the
#: :class:`GraphSnapshot` constructor's parameter order).
_ARRAY_FIELDS = (
    "out_offsets",
    "out_nbrs",
    "out_ts_offsets",
    "out_times",
    "in_offsets",
    "in_nbrs",
    "in_ts_offsets",
    "in_times",
)

_ITEMSIZE = array("q").itemsize  # 8 bytes on every supported platform
_HEADER_BYTES = 8


def _align8(n: int) -> int:
    return (n + 7) & ~7


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Drop *shm* from this process's resource tracker, if registered.

    Attached segments must not be unlinked by the attaching process's
    resource tracker at interpreter exit — the exporter owns the unlink.
    Best-effort: tracker internals differ across Python versions.
    """
    try:  # pragma: no cover - depends on interpreter internals
        from multiprocessing import resource_tracker

        resource_tracker.unregister(
            getattr(shm, "_name", "/" + shm.name), "shared_memory"
        )
    except Exception:  # pragma: no cover - best-effort only  # noqa: BLE001  # reprolint: disable=R002 -- tracker internals vary per interpreter; failure only risks an early unlink warning
        pass


class SharedGraphSnapshot(GraphSnapshot):
    """A :class:`GraphSnapshot` whose CSR arrays live in shared memory.

    Behaviourally identical to the base class (same accessors over the
    same machine integers — the parity suite pins this); the difference
    is ownership: the flat arrays are read-only memoryviews borrowed
    from a :class:`SharedSnapshot` segment, so :attr:`owned_nbytes`
    reports 0 and pickling reduces to the segment name.
    """

    __slots__ = ("_segment_name",)

    def __init__(self, segment_name: str, **state: Any) -> None:
        # The slot must exist before base __init__ (which only touches
        # base-class slots) and survive it.
        object.__setattr__(self, "_segment_name", segment_name)  # reprolint: disable=R003 -- construction-time slot init, not a frozen-dataclass write
        super().__init__(**state)

    @property
    def segment_name(self) -> str:
        """Name of the shared-memory segment backing the CSR arrays."""
        return cast(str, self._segment_name)

    @property
    def owned_nbytes(self) -> int:
        """CSR bytes resident in *this* process beyond the shared image.

        Always 0: the arrays alias the segment's single OS-level copy.
        """
        return 0

    def __reduce__(self) -> tuple[Any, ...]:
        # Ship the segment name, never the buffers: the receiving
        # process attaches to the same graph image.
        return (attach_shared_snapshot, (self.segment_name,))

    def _release_views(self) -> None:
        """Release every memoryview this snapshot exported from the segment.

        Called by the owning handle's final :meth:`SharedSnapshot.close`
        so the mapping can actually unmap; afterwards the snapshot's
        accessors raise (operations on released views), which is the
        contract — a closed shared snapshot must not be probed.
        Leaf views (the second-level ``_mv`` caches) release first;
        escaped accessor slices still held by callers make the release
        best-effort.
        """
        for name in (
            "_out_nbrs_mv",
            "_out_times_mv",
            "_in_nbrs_mv",
            "_in_times_mv",
            "_out_offsets",
            "_out_nbrs",
            "_out_ts_offsets",
            "_out_times",
            "_in_offsets",
            "_in_nbrs",
            "_in_ts_offsets",
            "_in_times",
        ):
            view = getattr(self, name, None)
            if isinstance(view, memoryview):
                try:
                    view.release()
                except BufferError:  # pragma: no cover - escaped sub-views
                    pass


class SharedSnapshot:
    """Handle to one exported graph image in shared memory.

    Create with :meth:`export` (owning side) or :meth:`attach` (worker
    side); get the accessor-compatible snapshot from :meth:`snapshot`.
    The handle refcounts :meth:`close`; the owner unlinks the segment
    when its count reaches zero (attached handles never unlink).
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        owner: bool,
    ) -> None:
        self._shm = shm
        self._owner = owner
        self._owner_pid = os.getpid()
        self._lock = threading.Lock()
        self._refs = 1
        self._closed = False
        self._snapshot: SharedGraphSnapshot | None = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def export(cls, snapshot: GraphSnapshot) -> "SharedSnapshot":
        """Copy *snapshot*'s compiled payload into a fresh shm segment.

        One memcpy per CSR plane plus one metadata pickle; afterwards
        any number of processes can attach by name at zero copy cost.
        """
        state = snapshot.__getstate__()
        arrays = {name: state.pop(name) for name in _ARRAY_FIELDS}
        meta = {
            "lengths": [len(cast("array[int]", arrays[f])) for f in _ARRAY_FIELDS],
            "state": state,
        }
        blob = pickle.dumps(meta, protocol=pickle.HIGHEST_PROTOCOL)
        arrays_start = _align8(_HEADER_BYTES + len(blob))
        total = arrays_start + sum(
            _ITEMSIZE * int(n) for n in meta["lengths"]
        )
        shm = shared_memory.SharedMemory(create=True, size=max(total, 1))
        buf = shm.buf
        buf[:_HEADER_BYTES] = len(blob).to_bytes(_HEADER_BYTES, "little")
        buf[_HEADER_BYTES : _HEADER_BYTES + len(blob)] = blob
        offset = arrays_start
        for field in _ARRAY_FIELDS:
            data = memoryview(arrays[field]).cast("B")
            buf[offset : offset + data.nbytes] = data
            offset += data.nbytes
        handle = cls(shm, owner=True)
        _register_owner(handle)
        return handle

    @classmethod
    def attach(cls, name: str) -> "SharedSnapshot":
        """Open the existing segment *name* (no copies, no compiles)."""
        shm = shared_memory.SharedMemory(name=name)
        # Attaching registers with this process's resource tracker; only
        # the exporting handle may own the tracker entry (and the
        # eventual unlink).  Attaching in the *owning* process must not
        # untrack, or the owner's entry would be removed underneath it.
        if not _owns_segment(name):
            _untrack(shm)
        return cls(shm, owner=False)

    # ------------------------------------------------------------------
    # identity and accounting
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Segment name — the only thing shipped between processes."""
        return self._shm.name

    @property
    def nbytes(self) -> int:
        """Size of the one shared segment (arrays + metadata + header)."""
        return self._shm.size

    @property
    def owner(self) -> bool:
        """True on the exporting handle (the one that unlinks)."""
        return self._owner

    @property
    def refcount(self) -> int:
        """Current in-process reference count of this handle."""
        with self._lock:
            return self._refs

    # ------------------------------------------------------------------
    # the attached snapshot
    # ------------------------------------------------------------------
    def snapshot(self) -> SharedGraphSnapshot:
        """The memoryview-backed snapshot over this segment (cached)."""
        with self._lock:
            if self._closed:
                raise GraphError(
                    f"shared snapshot {self.name!r} is closed"
                )
            if self._snapshot is None:
                self._snapshot = self._build_snapshot()
            return self._snapshot

    def _build_snapshot(self) -> SharedGraphSnapshot:
        view = self._shm.buf.toreadonly()
        meta_len = int.from_bytes(view[:_HEADER_BYTES], "little")
        meta = pickle.loads(
            view[_HEADER_BYTES : _HEADER_BYTES + meta_len].tobytes()
        )
        lengths = [int(n) for n in meta["lengths"]]
        state: dict[str, Any] = dict(meta["state"])
        offset = _align8(_HEADER_BYTES + meta_len)
        for field, length in zip(_ARRAY_FIELDS, lengths):
            nbytes = length * _ITEMSIZE
            state[field] = view[offset : offset + nbytes].cast("q")
            offset += nbytes
        return SharedGraphSnapshot(self.name, **state)

    # ------------------------------------------------------------------
    # lifecycle (refcounted unlink)
    # ------------------------------------------------------------------
    def addref(self) -> "SharedSnapshot":
        """Take one more reference; pair with one :meth:`close`."""
        with self._lock:
            if self._closed:
                raise GraphError(
                    f"shared snapshot {self.name!r} is closed"
                )
            self._refs += 1
        return self

    def close(self) -> None:
        """Drop one reference; the last one tears the mapping down.

        On the owning handle (in the exporting process) the final close
        also unlinks the segment from the OS; attached handles only
        close their local mapping.  Idempotent once fully closed.
        """
        with self._lock:
            if self._closed:
                return
            self._refs -= 1
            if self._refs > 0:
                return
            self._closed = True
            snapshot, self._snapshot = self._snapshot, None
        _unregister_owner(self)
        if snapshot is not None:
            snapshot._release_views()
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - escaped accessor views
            # Someone still holds accessor slices into the mapping; leave
            # it mapped (the OS reclaims at process exit) but still
            # unlink below so no new attaches can occur.
            pass
        if self._owner and os.getpid() == self._owner_pid:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __del__(self) -> None:  # pragma: no cover - GC-order dependent
        # A handle dropped without close() must not let SharedMemory's
        # finalizer trip over our cached snapshot's exported views.
        snapshot = getattr(self, "_snapshot", None)
        if snapshot is not None:
            snapshot._release_views()

    def __reduce__(self) -> tuple[Any, ...]:
        # A pickled handle is an instruction to attach by name.
        return (_attach_handle_cached, (self.name,))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        role = "owner" if self._owner else "attached"
        return (
            f"SharedSnapshot(name={self.name!r}, {role}, "
            f"nbytes={self.nbytes})"
        )


# ----------------------------------------------------------------------
# per-process attach cache (one mapping per segment per worker)
# ----------------------------------------------------------------------

_ATTACHED: dict[str, SharedSnapshot] = {}
_ATTACHED_LOCK = threading.Lock()


def _attach_handle_cached(name: str) -> SharedSnapshot:
    """Attach to segment *name*, reusing this process's existing mapping."""
    with _ATTACHED_LOCK:
        handle = _ATTACHED.get(name)
        if handle is None:
            handle = SharedSnapshot.attach(name)
            _ATTACHED[name] = handle
        return handle


def attach_shared_snapshot(name: str) -> SharedGraphSnapshot:
    """The shared graph image *name* as a ready-to-probe snapshot.

    Worker-process entry point: attaches (cached per process, so K
    queries against one graph map it once) and returns the
    memoryview-backed snapshot — zero buffer copies, zero compiles.
    """
    return _attach_handle_cached(name).snapshot()


# ----------------------------------------------------------------------
# exit safety net: never leak /dev/shm segments from the owning process
# ----------------------------------------------------------------------

_OWNERS: dict[int, SharedSnapshot] = {}
_OWNERS_LOCK = threading.Lock()


def _register_owner(handle: SharedSnapshot) -> None:
    with _OWNERS_LOCK:
        _OWNERS[id(handle)] = handle


def _owns_segment(name: str) -> bool:
    """True when this process holds the owning handle for *name*."""
    with _OWNERS_LOCK:
        return any(h.name == name for h in _OWNERS.values())


def _unregister_owner(handle: SharedSnapshot) -> None:
    with _OWNERS_LOCK:
        _OWNERS.pop(id(handle), None)


def _cleanup_owners() -> None:  # pragma: no cover - exercised at exit
    """Unlink any still-open owned segments at interpreter shutdown."""
    with _OWNERS_LOCK:
        handles = list(_OWNERS.values())
        _OWNERS.clear()
    for handle in handles:
        with handle._lock:
            handle._refs = 1
        handle.close()


atexit.register(_cleanup_owners)
