"""Fluent builders for constructing graphs with human-readable names.

The paper's figures name vertices ``u1..u5`` / ``v1..v14``; tests and
examples read much better when they can use the same names instead of raw
integer ids.  Builders collect named vertices/edges and emit the dense
integer-id graphs used everywhere else, along with the name map.
"""

from __future__ import annotations

from collections.abc import Hashable

from ..errors import GraphError, QueryError
from .query_graph import QueryGraph
from .temporal_graph import TemporalGraph, Timestamp

__all__ = ["QueryBuilder", "TemporalGraphBuilder"]


class QueryBuilder:
    """Incrementally build a :class:`QueryGraph` with named vertices.

    >>> b = QueryBuilder()
    >>> _ = b.vertex("u1", "A").vertex("u2", "B")
    >>> b.edge("u1", "u2")
    0
    >>> query, names = b.build()
    >>> query.label(names["u1"])
    'A'
    """

    def __init__(self) -> None:
        self._labels: list[Hashable] = []
        self._name_to_id: dict[str, int] = {}
        self._edges: list[tuple[int, int]] = []
        self._edge_labels: list[Hashable | None] = []

    def vertex(self, name: str, label: Hashable) -> "QueryBuilder":
        """Declare a vertex; re-declaring an existing name is an error."""
        if name in self._name_to_id:
            raise QueryError(f"vertex {name!r} already declared")
        self._name_to_id[name] = len(self._labels)
        self._labels.append(label)
        return self

    def edge(self, src: str, dst: str, label: Hashable | None = None) -> int:
        """Append edge ``src -> dst``; returns its 0-based edge index.

        A non-None *label* makes the edge match only data edges carrying
        the same label.
        """
        try:
            pair = (self._name_to_id[src], self._name_to_id[dst])
        except KeyError as exc:
            raise QueryError(f"edge references unknown vertex {exc}") from None
        self._edges.append(pair)
        self._edge_labels.append(label)
        return len(self._edges) - 1

    def build(self) -> tuple[QueryGraph, dict[str, int]]:
        """Produce the query graph and the ``name -> id`` map."""
        query = QueryGraph(self._labels, self._edges, self._edge_labels)
        return query, dict(self._name_to_id)


class TemporalGraphBuilder:
    """Incrementally build a :class:`TemporalGraph` with named vertices.

    ``edge`` accepts several timestamps at once because figures often
    annotate a pair with a timestamp set.
    """

    def __init__(self) -> None:
        self._labels: list[Hashable] = []
        self._name_to_id: dict[str, int] = {}
        self._edges: list[tuple[int, int, Timestamp, Hashable | None]] = []

    def vertex(self, name: str, label: Hashable) -> "TemporalGraphBuilder":
        if name in self._name_to_id:
            raise GraphError(f"vertex {name!r} already declared")
        self._name_to_id[name] = len(self._labels)
        self._labels.append(label)
        return self

    def edge(
        self,
        src: str,
        dst: str,
        *timestamps: Timestamp,
        label: Hashable | None = None,
    ) -> "TemporalGraphBuilder":
        """Add one temporal edge per timestamp for the pair ``src -> dst``.

        A non-None *label* tags each of these interactions.
        """
        if not timestamps:
            raise GraphError(f"edge {src!r}->{dst!r} needs at least one timestamp")
        try:
            u, v = self._name_to_id[src], self._name_to_id[dst]
        except KeyError as exc:
            raise GraphError(f"edge references unknown vertex {exc}") from None
        for t in timestamps:
            self._edges.append((u, v, t, label))
        return self

    def build(self) -> tuple[TemporalGraph, dict[str, int]]:
        """Produce the temporal graph and the ``name -> id`` map."""
        graph = TemporalGraph(self._labels)
        for u, v, t, label in self._edges:
            graph.add_edge(u, v, t, label=label)
        return graph, dict(self._name_to_id)
