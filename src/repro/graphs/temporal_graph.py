"""Directed, vertex-labeled temporal graphs (Definition 1).

A temporal graph stores, for every ordered vertex pair ``(u, v)``, the set
of timestamps at which ``u`` interacted with ``v``.  Expanding timestamps
turns it into a directed multigraph whose elements are *temporal edges*
``(u, v, t)`` — the objects a TCSM mapping assigns to query edges.
"""

from __future__ import annotations

import bisect
import math
from collections.abc import (
    Hashable,
    Iterable,
    ItemsView,
    Iterator,
    KeysView,
    Sequence,
)
from typing import TYPE_CHECKING, NamedTuple

from ..errors import GraphError
from .static_graph import StaticGraph

if TYPE_CHECKING:
    from .snapshot import GraphSnapshot

__all__ = ["TemporalEdge", "TemporalGraph"]

Timestamp = int

_EMPTY_TIMES: list[Timestamp] = []


class TemporalEdge(NamedTuple):
    """A single timestamped interaction ``u -> v`` at time ``t``."""

    u: int
    v: int
    t: Timestamp


class TemporalGraph:
    """A directed temporal graph with labeled vertices.

    Vertices are the integers ``0 .. num_vertices - 1``.  Duplicate
    ``(u, v, t)`` triples collapse into one temporal edge; self loops are
    rejected to match the paper's simple-graph setting.

    Parameters
    ----------
    labels:
        One label per vertex.
    edges:
        Iterable of ``(u, v, t)`` triples.

    Notes
    -----
    Timestamp lists per vertex pair are kept sorted, so window queries
    (``timestamps_in_window``) run in ``O(log n + answer)`` via bisection.
    """

    __slots__ = (
        "_labels",
        "_out",
        "_in",
        "_num_temporal_edges",
        "_num_static_edges",
        "_min_time",
        "_max_time",
        "_de_temporal",
        "_label_index",
        "_edge_labels",
        "_edges_by_time",
        "_frozen",
    )

    def __init__(
        self,
        labels: Sequence[Hashable],
        edges: Iterable[tuple[int, int, Timestamp]] = (),
    ) -> None:
        self._labels: tuple[Hashable, ...] = tuple(labels)
        n = len(self._labels)
        self._out: list[dict[int, list[Timestamp]]] = [{} for _ in range(n)]
        self._in: list[dict[int, list[Timestamp]]] = [{} for _ in range(n)]
        self._num_temporal_edges = 0
        self._num_static_edges = 0
        self._min_time: Timestamp | None = None
        self._max_time: Timestamp | None = None
        self._de_temporal: StaticGraph | None = None
        self._label_index: dict[Hashable, tuple[int, ...]] | None = None
        self._edge_labels: dict[tuple[int, int, Timestamp], Hashable] = {}
        self._edges_by_time: list[TemporalEdge] | None = None
        self._frozen: GraphSnapshot | None = None
        for u, v, t in edges:
            self.add_edge(u, v, t)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_edge(
        self, u: int, v: int, t: Timestamp, label: Hashable | None = None
    ) -> bool:
        """Insert temporal edge ``(u, v, t)``; return ``True`` if new.

        *label* optionally tags the interaction (transfer type, channel,
        ...); the paper's Section II notes the algorithms generalise to
        edge labels, and the matchers honour them — a query edge carrying
        a label only matches data edges carrying the same label.
        Re-adding an existing edge with a conflicting label raises
        :class:`GraphError`.
        """
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            raise GraphError(f"self loop ({u}, {u}, {t}) not allowed")
        times = self._out[u].get(v)
        exists = False
        if times is None:
            self._out[u][v] = [t]
            self._in[v][u] = [t]
            self._num_static_edges += 1
        else:
            pos = bisect.bisect_left(times, t)
            if pos < len(times) and times[pos] == t:
                exists = True
            else:
                times.insert(pos, t)
                in_times = self._in[v][u]
                bisect.insort(in_times, t)
        if exists:
            if label is not None and self._edge_labels.get((u, v, t)) != label:
                raise GraphError(
                    f"edge ({u}, {v}, {t}) already present with label "
                    f"{self._edge_labels.get((u, v, t))!r}, not {label!r}"
                )
            return False
        if label is not None:
            self._edge_labels[(u, v, t)] = label
        self._num_temporal_edges += 1
        if self._min_time is None or t < self._min_time:
            self._min_time = t
        if self._max_time is None or t > self._max_time:
            self._max_time = t
        self._de_temporal = None
        self._edges_by_time = None
        self._frozen = None
        return True

    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < len(self._labels):
            raise GraphError(f"vertex {v} out of range [0, {len(self._labels)})")

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self._labels)

    @property
    def num_temporal_edges(self) -> int:
        """Number of distinct ``(u, v, t)`` triples (|ℰ| in Table II)."""
        return self._num_temporal_edges

    @property
    def num_static_edges(self) -> int:
        """Number of distinct ``(u, v)`` pairs (|E| in Table II)."""
        return self._num_static_edges

    @property
    def min_time(self) -> Timestamp | None:
        return self._min_time

    @property
    def max_time(self) -> Timestamp | None:
        return self._max_time

    @property
    def time_span(self) -> Timestamp:
        """``max_time - min_time`` (0 for graphs with < 2 timestamps)."""
        if self._min_time is None or self._max_time is None:
            return 0
        return self._max_time - self._min_time

    def vertices(self) -> range:
        return range(len(self._labels))

    def label(self, v: int) -> Hashable:
        self._check_vertex(v)
        return self._labels[v]

    @property
    def labels(self) -> tuple[Hashable, ...]:
        return self._labels

    def vertices_with_label(self, label: Hashable) -> tuple[int, ...]:
        if self._label_index is None:
            index: dict[Hashable, list[int]] = {}
            for v, lab in enumerate(self._labels):
                index.setdefault(lab, []).append(v)
            self._label_index = {k: tuple(vs) for k, vs in index.items()}
        return self._label_index.get(label, ())

    # ------------------------------------------------------------------
    # adjacency
    # ------------------------------------------------------------------
    def has_pair(self, u: int, v: int) -> bool:
        """Does at least one temporal edge ``u -> v`` exist?"""
        self._check_vertex(u)
        self._check_vertex(v)
        return v in self._out[u]

    def timestamps(self, u: int, v: int) -> tuple[Timestamp, ...]:
        """Sorted timestamps of interactions ``u -> v`` (``T(u, v)``)."""
        self._check_vertex(u)
        self._check_vertex(v)
        return tuple(self._out[u].get(v, ()))

    def edge_label(self, u: int, v: int, t: Timestamp) -> Hashable | None:
        """Label of temporal edge ``(u, v, t)``, or None if unlabeled."""
        return self._edge_labels.get((u, v, t))

    @property
    def has_edge_labels(self) -> bool:
        """True if any temporal edge carries a label."""
        return bool(self._edge_labels)

    def timestamps_with_label(
        self, u: int, v: int, label: Hashable
    ) -> list[Timestamp]:
        """Timestamps of ``u -> v`` edges carrying exactly *label*."""
        self._check_vertex(u)
        self._check_vertex(v)
        edge_labels = self._edge_labels
        return [
            t
            for t in self._out[u].get(v, ())
            if edge_labels.get((u, v, t)) == label
        ]

    def timestamps_in_window(
        self, u: int, v: int, lo: float, hi: float
    ) -> tuple[Timestamp, ...]:
        """Timestamps ``t`` of ``u -> v`` edges with ``lo <= t <= hi``.

        Bounds may be floats (including ``±inf``) so STN-closure windows
        plug in directly.
        """
        self._check_vertex(u)
        self._check_vertex(v)
        times = self._out[u].get(v)
        if not times:
            return ()
        left = bisect.bisect_left(times, lo)
        right = bisect.bisect_right(times, hi)
        return tuple(times[left:right])

    def timestamps_with_label_in_window(
        self, u: int, v: int, label: Hashable, lo: float, hi: float
    ) -> Sequence[Timestamp]:
        """Timestamps of ``u -> v`` edges with *label* and ``lo <= t <= hi``.

        The labeled run inherits the pair run's sort order, so the window
        is read out with two bisects — the dict-backend twin of the
        snapshot accessor of the same name.
        """
        times = self.timestamps_with_label(u, v, label)
        if not times:
            return []
        left = bisect.bisect_left(times, lo)
        right = bisect.bisect_right(times, hi)
        return times[left:right]

    def out_items(self, u: int) -> ItemsView[int, list[Timestamp]]:
        """Iterate ``(v, sorted timestamps)`` over out-neighbours of ``u``.

        Zero-copy hot-path view (shared with :class:`GraphSnapshot`'s
        accessor surface); treat the yielded lists as read-only.
        """
        self._check_vertex(u)
        return self._out[u].items()

    def in_items(self, v: int) -> ItemsView[int, list[Timestamp]]:
        """Iterate ``(u, sorted timestamps)`` over in-neighbours of ``v``."""
        self._check_vertex(v)
        return self._in[v].items()

    def out_neighbor_ids(self, u: int) -> KeysView[int]:
        """Distinct out-neighbours of ``u`` as a set-like view (no copy).

        Hot-path accessor for the matchers; treat the view as read-only.
        """
        self._check_vertex(u)
        return self._out[u].keys()

    def in_neighbor_ids(self, v: int) -> KeysView[int]:
        """Distinct in-neighbours of ``v`` as a set-like view (no copy)."""
        self._check_vertex(v)
        return self._in[v].keys()

    def timestamps_list(self, u: int, v: int) -> list[Timestamp]:
        """Sorted timestamps of ``u -> v`` as the internal list (no copy).

        Hot-path variant of :meth:`timestamps`; callers must not mutate the
        returned list.  Returns an empty list for absent pairs.
        """
        self._check_vertex(u)
        self._check_vertex(v)
        return self._out[u].get(v, _EMPTY_TIMES)

    def out_pairs(self, u: int) -> Iterator[tuple[int, tuple[Timestamp, ...]]]:
        """Iterate ``(v, timestamps)`` over out-neighbours of ``u``."""
        self._check_vertex(u)
        for v, times in self._out[u].items():
            yield v, tuple(times)

    def in_pairs(self, v: int) -> Iterator[tuple[int, tuple[Timestamp, ...]]]:
        """Iterate ``(u, timestamps)`` over in-neighbours of ``v``."""
        self._check_vertex(v)
        for u, times in self._in[v].items():
            yield u, tuple(times)

    def out_edges(self, u: int) -> Iterator[TemporalEdge]:
        """All temporal edges leaving ``u``, timestamps expanded."""
        self._check_vertex(u)
        for v, times in self._out[u].items():
            for t in times:
                yield TemporalEdge(u, v, t)

    def in_edges(self, v: int) -> Iterator[TemporalEdge]:
        """All temporal edges entering ``v``, timestamps expanded."""
        self._check_vertex(v)
        for u, times in self._in[v].items():
            for t in times:
                yield TemporalEdge(u, v, t)

    def edges(self) -> Iterator[TemporalEdge]:
        """All temporal edges in vertex order (not time order)."""
        for u in self.vertices():
            yield from self.out_edges(u)

    def edges_by_time(self) -> list[TemporalEdge]:
        """All temporal edges sorted by ``(t, u, v)`` (cached; read-only).

        This is the insertion stream consumed by the continuous
        subgraph-matching baselines.  The cache is invalidated by
        :meth:`add_edge`; callers must not mutate the returned list.
        """
        if self._edges_by_time is None:
            self._edges_by_time = sorted(
                self.edges(), key=lambda e: (e.t, e.u, e.v)
            )
        return self._edges_by_time

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    def de_temporal(self) -> StaticGraph:
        """The static graph obtained by dropping timestamps (cached)."""
        if self._de_temporal is None:
            graph = StaticGraph(self._labels)
            for u, targets in enumerate(self._out):
                for v in targets:
                    graph.add_edge(u, v)
            self._de_temporal = graph
        return self._de_temporal

    def static_view(self) -> StaticGraph:
        """The static accessor surface for the candidate filters.

        On a mutable graph this is the cached :meth:`de_temporal` graph;
        :class:`GraphSnapshot` serves the same surface directly from its
        CSR planes.
        """
        return self.de_temporal()

    def freeze(self) -> "GraphSnapshot":
        """Compile this graph into an immutable CSR :class:`GraphSnapshot`.

        Cached: repeated calls return the same snapshot until the next
        :meth:`add_edge` invalidates it.
        """
        if self._frozen is None:
            from .snapshot import compile_snapshot

            self._frozen = compile_snapshot(self)
        return self._frozen

    def time_prefix(self, fraction: float) -> "TemporalGraph":
        """Subgraph containing the earliest ``fraction`` of temporal edges.

        Used by Exp-5 (scalability with varying |ℰ|).  Vertices are kept
        (ids stay stable); only edges are dropped.  The kept edge count
        is ``floor(|ℰ| * fraction)`` — explicit floor semantics, so slice
        sizes are monotone in *fraction* and never banker's-rounded.
        """
        if not 0.0 <= fraction <= 1.0:
            raise GraphError(f"fraction {fraction} outside [0, 1]")
        keep = math.floor(self._num_temporal_edges * fraction)
        prefix = TemporalGraph(self._labels)
        for edge in self.edges_by_time()[:keep]:
            prefix.add_edge(
                edge.u, edge.v, edge.t, self._edge_labels.get(edge)
            )
        return prefix

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TemporalGraph(num_vertices={self.num_vertices}, "
            f"temporal_edges={self.num_temporal_edges}, "
            f"static_edges={self.num_static_edges})"
        )
