"""Directed, vertex-labeled static graphs.

A :class:`StaticGraph` is the *de-temporal* view of a temporal graph
(Definition 1 of the paper): timestamps are dropped and parallel temporal
edges collapse into one directed edge.  It is also the representation used
by the static baseline (RI-DS) and by the candidate filters, which only
look at structure and labels.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Hashable, Iterable, Iterator, Sequence

from ..errors import GraphError

__all__ = ["StaticGraph"]


class StaticGraph:
    """A simple directed graph with labeled vertices.

    Vertices are the integers ``0 .. num_vertices - 1``.  Self loops are
    rejected (the paper considers simple graphs); duplicate edges are
    silently collapsed, which makes the class directly usable as the
    de-temporal view of a temporal multigraph.

    Parameters
    ----------
    labels:
        One label per vertex; ``labels[v]`` is the label of vertex ``v``.
    edges:
        Iterable of ``(u, v)`` pairs.
    """

    __slots__ = (
        "_labels",
        "_out",
        "_in",
        "_num_edges",
        "_label_index",
        "_neighbor_label_counts",
    )

    def __init__(
        self,
        labels: Sequence[Hashable],
        edges: Iterable[tuple[int, int]] = (),
    ) -> None:
        self._labels: tuple[Hashable, ...] = tuple(labels)
        n = len(self._labels)
        self._out: list[set[int]] = [set() for _ in range(n)]
        self._in: list[set[int]] = [set() for _ in range(n)]
        self._num_edges = 0
        self._label_index: dict[Hashable, tuple[int, ...]] | None = None
        self._neighbor_label_counts: list[Counter[Hashable] | None] = [None] * n
        for u, v in edges:
            self.add_edge(u, v)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_edge(self, u: int, v: int) -> bool:
        """Insert edge ``(u, v)``; return ``True`` if it was new."""
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            raise GraphError(f"self loop ({u}, {u}) not allowed in a simple graph")
        if v in self._out[u]:
            return False
        self._out[u].add(v)
        self._in[v].add(u)
        self._num_edges += 1
        # Invalidate caches that depend on adjacency.
        self._neighbor_label_counts[u] = None
        self._neighbor_label_counts[v] = None
        return True

    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < len(self._labels):
            raise GraphError(
                f"vertex {v} out of range [0, {len(self._labels)})"
            )

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def vertices(self) -> range:
        return range(len(self._labels))

    def label(self, v: int) -> Hashable:
        self._check_vertex(v)
        return self._labels[v]

    @property
    def labels(self) -> tuple[Hashable, ...]:
        return self._labels

    def has_edge(self, u: int, v: int) -> bool:
        self._check_vertex(u)
        self._check_vertex(v)
        return v in self._out[u]

    def out_neighbors(self, v: int) -> frozenset[int]:
        self._check_vertex(v)
        return frozenset(self._out[v])

    def in_neighbors(self, v: int) -> frozenset[int]:
        self._check_vertex(v)
        return frozenset(self._in[v])

    def neighbors(self, v: int) -> frozenset[int]:
        """Undirected neighbourhood ``N(v)`` (union of in- and out-)."""
        self._check_vertex(v)
        return frozenset(self._out[v] | self._in[v])

    def out_degree(self, v: int) -> int:
        self._check_vertex(v)
        return len(self._out[v])

    def in_degree(self, v: int) -> int:
        self._check_vertex(v)
        return len(self._in[v])

    def degree(self, v: int) -> int:
        """Number of distinct undirected neighbours of ``v``."""
        return len(self.neighbors(v))

    def edges(self) -> Iterator[tuple[int, int]]:
        for u, targets in enumerate(self._out):
            for v in sorted(targets):
                yield (u, v)

    # ------------------------------------------------------------------
    # label-driven accessors (used by candidate filters)
    # ------------------------------------------------------------------
    def vertices_with_label(self, label: Hashable) -> tuple[int, ...]:
        """All vertices carrying *label* (possibly empty)."""
        if self._label_index is None:
            index: dict[Hashable, list[int]] = {}
            for v, lab in enumerate(self._labels):
                index.setdefault(lab, []).append(v)
            self._label_index = {k: tuple(vs) for k, vs in index.items()}
        return self._label_index.get(label, ())

    def neighbor_label_counts(self, v: int) -> Counter[Hashable]:
        """Multiset of labels over the undirected neighbourhood of ``v``.

        Cached per vertex; this is the signature consumed by the NLF filter
        (Definition 6) and by the EVE ``Vmatch`` look-ahead.
        """
        self._check_vertex(v)
        cached = self._neighbor_label_counts[v]
        if cached is None:
            cached = Counter(self._labels[w] for w in self._out[v] | self._in[v])
            self._neighbor_label_counts[v] = cached
        return cached

    # ------------------------------------------------------------------
    # dunder utilities
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StaticGraph(num_vertices={self.num_vertices}, "
            f"num_edges={self.num_edges})"
        )
