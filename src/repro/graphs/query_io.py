"""JSON serialisation for queries and temporal constraints.

A TCSM *pattern* — query graph plus constraint set — is the artifact
analysts author and share (the paper's Figure 12 / Figure 13 patterns are
exactly this).  This module defines a small JSON format for patterns and
round-trip helpers; the command-line interface consumes it.

Format::

    {
      "vertices": [{"label": "A"}, {"label": "B"}],
      "edges": [{"source": 0, "target": 1, "label": "wire"}],
      "constraints": [{"earlier": 0, "later": 1, "gap": 3600}]
    }

Vertex ids are implicit (array order); edge ``label`` may be omitted or
null (wildcard); ``gap`` is a non-negative number in the data graph's
time unit.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..errors import QueryError
from .constraints import TemporalConstraints
from .query_graph import QueryGraph

__all__ = [
    "pattern_to_dict",
    "pattern_from_dict",
    "save_pattern",
    "load_pattern",
]


def pattern_to_dict(
    query: QueryGraph, constraints: TemporalConstraints
) -> dict[str, object]:
    """Serialise a (query, constraints) pattern to plain data."""
    return {
        "vertices": [
            {"label": query.label(u)} for u in query.vertices()
        ],
        "edges": [
            {
                "source": u,
                "target": v,
                "label": query.edge_label(index),
            }
            for index, (u, v) in enumerate(query.edges)
        ],
        "constraints": [
            {"earlier": c.earlier, "later": c.later, "gap": c.gap}
            for c in constraints
        ],
    }


def pattern_from_dict(
    data: dict[str, object],
) -> tuple[QueryGraph, TemporalConstraints]:
    """Deserialise a pattern; raises :class:`QueryError` on malformed input."""
    if not isinstance(data, dict):
        raise QueryError(f"pattern must be an object, got {type(data).__name__}")
    try:
        vertices = data["vertices"]
        edges = data["edges"]
    except KeyError as exc:
        raise QueryError(f"pattern missing required key {exc}") from None
    try:
        labels = [v["label"] for v in vertices]
    except (TypeError, KeyError):
        raise QueryError("each vertex needs a 'label'") from None
    try:
        pairs = [(int(e["source"]), int(e["target"])) for e in edges]
        edge_labels = [e.get("label") for e in edges]
    except (TypeError, KeyError, ValueError):
        raise QueryError(
            "each edge needs integer 'source' and 'target'"
        ) from None
    query = QueryGraph(labels, pairs, edge_labels)
    raw_constraints = data.get("constraints", [])
    try:
        triples = [
            (int(c["earlier"]), int(c["later"]), float(c["gap"]))
            for c in raw_constraints
        ]
    except (TypeError, KeyError, ValueError):
        raise QueryError(
            "each constraint needs 'earlier', 'later' and 'gap'"
        ) from None
    constraints = TemporalConstraints(triples, num_edges=query.num_edges)
    return query, constraints


def save_pattern(
    query: QueryGraph,
    constraints: TemporalConstraints,
    path: str | Path,
) -> None:
    """Write a pattern as pretty-printed JSON."""
    path = Path(path)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(pattern_to_dict(query, constraints), handle, indent=2)
        handle.write("\n")


def load_pattern(path: str | Path) -> tuple[QueryGraph, TemporalConstraints]:
    """Read a pattern JSON file."""
    path = Path(path)
    if not path.exists():
        raise QueryError(f"pattern file not found: {path}")
    with open(path, encoding="utf-8") as handle:
        try:
            data = json.load(handle)
        except json.JSONDecodeError as exc:
            raise QueryError(f"{path}: invalid JSON ({exc})") from None
    return pattern_from_dict(data)
