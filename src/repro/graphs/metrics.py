"""Descriptive statistics for temporal graphs.

Used to validate that dataset stand-ins track Table II (the tests
compare generated statistics against the catalog) and by the CLI's
``generate`` command to describe what it wrote.  All quantities are
computed in one pass where possible and returned as a plain dataclass so
experiment records can embed them.
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Hashable
from dataclasses import dataclass, field

from .temporal_graph import TemporalGraph

__all__ = ["GraphStatistics", "graph_statistics"]


@dataclass(frozen=True)
class GraphStatistics:
    """Summary statistics of a temporal graph (Table II's columns +)."""

    num_vertices: int
    num_temporal_edges: int
    num_static_edges: int
    time_span: int
    avg_temporal_degree: float
    """|ℰ| / |V| — Table II's ``avgd``."""

    avg_static_degree: float
    """|E| / |V| (directed pairs per vertex)."""

    max_degree: int
    """Largest undirected de-temporal degree."""

    timestamp_multiplicity: float
    """|ℰ| / |E| — average interactions per vertex pair."""

    num_labels: int
    label_entropy: float
    """Shannon entropy (bits) of the vertex-label distribution."""

    label_histogram: dict[Hashable, int] = field(default_factory=dict)

    def describe(self) -> str:
        """One paragraph, human-readable."""
        return (
            f"|V|={self.num_vertices}  |E_t|={self.num_temporal_edges}  "
            f"|E|={self.num_static_edges}  span={self.time_span}  "
            f"avgd={self.avg_temporal_degree:.2f}  "
            f"multiplicity={self.timestamp_multiplicity:.2f}  "
            f"labels={self.num_labels} "
            f"(H={self.label_entropy:.2f} bits)"
        )


def graph_statistics(graph: TemporalGraph) -> GraphStatistics:
    """Compute :class:`GraphStatistics` for *graph*."""
    n = graph.num_vertices
    temporal = graph.num_temporal_edges
    static = graph.num_static_edges
    histogram = Counter(graph.labels)
    entropy = 0.0
    if n:
        for count in histogram.values():
            p = count / n
            entropy -= p * math.log2(p)
    if n:
        data = graph.de_temporal()
        max_degree = max(
            (data.degree(v) for v in graph.vertices()), default=0
        )
    else:
        max_degree = 0
    return GraphStatistics(
        num_vertices=n,
        num_temporal_edges=temporal,
        num_static_edges=static,
        time_span=graph.time_span,
        avg_temporal_degree=temporal / n if n else 0.0,
        avg_static_degree=static / n if n else 0.0,
        max_degree=max_degree,
        timestamp_multiplicity=temporal / static if static else 0.0,
        num_labels=len(histogram),
        label_entropy=entropy,
        label_histogram=dict(histogram),
    )
