"""Graph substrates: temporal/static data graphs, query graphs, constraints.

This subpackage knows nothing about matching; it provides the data model
that both the paper's algorithms (:mod:`repro.core`) and the baselines
(:mod:`repro.baselines`) consume.
"""

from .builders import QueryBuilder, TemporalGraphBuilder
from .constraints import Constraint, TemporalConstraints
from .io import (
    default_label_alphabet,
    load_labels,
    load_snap_temporal,
    save_labels,
    save_snap_temporal,
)
from .labels import LabelTable, label_histogram
from .metrics import GraphStatistics, graph_statistics
from .query_graph import QueryGraph
from .segmented import SegmentedGraph
from .query_io import (
    load_pattern,
    pattern_from_dict,
    pattern_to_dict,
    save_pattern,
)
from .shm import SharedGraphSnapshot, SharedSnapshot, attach_shared_snapshot
from .snapshot import (
    GraphSnapshot,
    GraphView,
    SnapshotWriteBarrier,
    StaticView,
    compile_snapshot,
    ensure_snapshot,
    snapshot_compile_count,
    snapshot_write_barrier,
)
from .static_graph import StaticGraph
from .temporal_graph import TemporalEdge, TemporalGraph

__all__ = [
    "Constraint",
    "GraphSnapshot",
    "GraphStatistics",
    "GraphView",
    "LabelTable",
    "SnapshotWriteBarrier",
    "StaticView",
    "compile_snapshot",
    "ensure_snapshot",
    "graph_statistics",
    "snapshot_compile_count",
    "snapshot_write_barrier",
    "QueryBuilder",
    "QueryGraph",
    "SegmentedGraph",
    "SharedGraphSnapshot",
    "SharedSnapshot",
    "StaticGraph",
    "TemporalEdge",
    "TemporalGraph",
    "TemporalGraphBuilder",
    "TemporalConstraints",
    "attach_shared_snapshot",
    "default_label_alphabet",
    "label_histogram",
    "load_labels",
    "load_pattern",
    "load_snap_temporal",
    "pattern_from_dict",
    "pattern_to_dict",
    "save_labels",
    "save_pattern",
    "save_snap_temporal",
]
