"""Segmented appendable graphs: immutable CSR segments plus a mutable tail.

The one-shot stack freezes a :class:`~repro.graphs.TemporalGraph` into a
single compiled :class:`~repro.graphs.GraphSnapshot`; every ``add_edge``
invalidates that compilation, so an incremental workload pays a *full*
CSR recompile per arriving edge.  A :class:`SegmentedGraph` removes that
structural blocker the way an LSM tree does for sorted files:

* appends land in a small **mutable tail** (a plain dict-backed
  :class:`TemporalGraph`) — O(log run) per edge, no compilation;
* when the tail crosses ``merge_threshold`` temporal edges it is
  **flushed**: compiled once into an immutable CSR segment and appended
  to the segment list (the flush cost is amortised over the threshold);
* when the segment count crosses ``max_segments`` the segments are
  **compacted** into one snapshot, bounding the per-read fan-out — reads
  touch at most ``max_segments + 1`` sorted sources.

The accessor surface is the shared :data:`~repro.graphs.GraphView`
protocol: every per-pair read merges the (individually sorted) runs of
each segment and the tail, so matchers and the :mod:`repro.core.windows`
bisect kernels run on a segmented graph unchanged.  ``freeze()`` is
segment-aware — a fully-compacted graph with an empty tail returns its
single segment *without recompiling* — and :attr:`fingerprint` hashes
segment fingerprints plus the tail edge list, so service cache keys stay
stable without forcing a compile.

A segmented graph is a **single-writer** structure: concurrent appends
must be serialised by the caller (the streaming engine holds one lock
around ingest); reads racing an append see either the old or the new
edge set, never a torn run, because flushed segments are immutable and
the tail's per-pair lists are only appended to.
"""

from __future__ import annotations

import hashlib
import heapq
from collections.abc import Hashable, Iterator, Sequence
from itertools import chain

from ..errors import GraphError
from ..obs import NULL_TRACER, TraceSink
from .snapshot import GraphSnapshot, compile_snapshot
from .static_graph import StaticGraph
from .temporal_graph import TemporalEdge, TemporalGraph

__all__ = ["SegmentedGraph"]

Timestamp = int

_EMPTY_TIMES: tuple[Timestamp, ...] = ()


class SegmentedGraph:
    """An appendable temporal graph over compiled segments + a mutable tail.

    Parameters
    ----------
    labels:
        One label per vertex; the vertex universe is fixed up front (the
        standard continuous-subgraph-matching setting — edges stream in,
        vertices and labels are known).
    merge_threshold:
        Tail size (temporal edges) that triggers a flush into a compiled
        segment.
    max_segments:
        Segment count that triggers compaction into one snapshot.
    tracer:
        Span sink for ``segment-flush`` / ``segment-compact`` events
        (defaults to the no-op tracer).
    """

    __slots__ = (
        "_labels",
        "_segments",
        "_tail",
        "_merge_threshold",
        "_max_segments",
        "_num_static_edges",
        "_min_time",
        "_max_time",
        "_label_index",
        "_edges_by_time",
        "_static",
        "_frozen",
        "_fingerprint",
        "_flush_count",
        "_compaction_count",
        "tracer",
    )

    def __init__(
        self,
        labels: Sequence[Hashable],
        *,
        merge_threshold: int = 4096,
        max_segments: int = 8,
        tracer: TraceSink = NULL_TRACER,
    ) -> None:
        if merge_threshold < 1:
            raise GraphError(
                f"merge_threshold must be >= 1, got {merge_threshold}"
            )
        if max_segments < 1:
            raise GraphError(f"max_segments must be >= 1, got {max_segments}")
        self._labels: tuple[Hashable, ...] = tuple(labels)
        self._segments: list[GraphSnapshot] = []
        self._tail = TemporalGraph(self._labels)
        self._merge_threshold = merge_threshold
        self._max_segments = max_segments
        self._num_static_edges = 0
        self._min_time: Timestamp | None = None
        self._max_time: Timestamp | None = None
        self._label_index: dict[Hashable, tuple[int, ...]] | None = None
        self._edges_by_time: list[TemporalEdge] | None = None
        self._static: StaticGraph | None = None
        self._frozen: GraphSnapshot | None = None
        self._fingerprint: str | None = None
        self._flush_count = 0
        self._compaction_count = 0
        self.tracer = tracer

    @classmethod
    def from_snapshot(
        cls,
        snapshot: GraphSnapshot,
        *,
        merge_threshold: int = 4096,
        max_segments: int = 8,
        tracer: TraceSink = NULL_TRACER,
    ) -> "SegmentedGraph":
        """A segmented graph seeded with *snapshot* as its first segment.

        Zero-copy: the snapshot's CSR arrays are shared by reference, so
        opening a stream over an already-registered service graph costs
        no recompilation.
        """
        graph = cls(
            snapshot.labels,
            merge_threshold=merge_threshold,
            max_segments=max_segments,
            tracer=tracer,
        )
        if snapshot.num_temporal_edges:
            graph._segments.append(snapshot)
            graph._num_static_edges = snapshot.num_static_edges
            graph._min_time = snapshot.min_time
            graph._max_time = snapshot.max_time
        return graph

    # ------------------------------------------------------------------
    # construction (append path)
    # ------------------------------------------------------------------
    def append(
        self, u: int, v: int, t: Timestamp, label: Hashable | None = None
    ) -> bool:
        """Insert temporal edge ``(u, v, t)``; return ``True`` if new.

        Duplicate ``(u, v, t)`` triples — including ones already frozen
        into a segment — are ignored (``False``), matching
        :meth:`TemporalGraph.add_edge` semantics.  The tail flushes into
        a compiled segment when it crosses ``merge_threshold``, and the
        segment list compacts when it crosses ``max_segments``; both are
        O(segment payload), amortised over the threshold.
        """
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            raise GraphError(f"self loop ({u}, {u}, {t}) not allowed")
        for segment in self._segments:
            run = segment.timestamps_in_window(u, v, t, t)
            if run:
                if (
                    label is not None
                    and segment.edge_label(u, v, t) != label
                ):
                    raise GraphError(
                        f"edge ({u}, {v}, {t}) already present with label "
                        f"{segment.edge_label(u, v, t)!r}, not {label!r}"
                    )
                return False
        pair_known = self._tail.has_pair(u, v) or any(
            segment.has_pair(u, v) for segment in self._segments
        )
        if not self._tail.add_edge(u, v, t, label=label):
            return False
        if not pair_known:
            self._num_static_edges += 1
        if self._min_time is None or t < self._min_time:
            self._min_time = t
        if self._max_time is None or t > self._max_time:
            self._max_time = t
        self._invalidate()
        if self._tail.num_temporal_edges >= self._merge_threshold:
            self._flush_tail()
        return True

    def extend(
        self,
        edges: Sequence[tuple[int, int, Timestamp]] | Sequence[TemporalEdge],
    ) -> int:
        """Append *edges* in order; return the number actually new."""
        added = 0
        for u, v, t in edges:
            if self.append(u, v, t):
                added += 1
        return added

    def _invalidate(self) -> None:
        self._edges_by_time = None
        self._static = None
        self._frozen = None
        self._fingerprint = None

    def _flush_tail(self) -> None:
        """Compile the tail into an immutable segment; maybe compact."""
        with self.tracer.span(
            "segment-flush", edges=self._tail.num_temporal_edges
        ):
            self._segments.append(compile_snapshot(self._tail))
            self._tail = TemporalGraph(self._labels)
            self._flush_count += 1
        if len(self._segments) > self._max_segments:
            self._compact()

    def _compact(self) -> None:
        """Merge every segment into one snapshot (full compaction).

        Rebuilds a builder graph from the segments and compiles it once;
        with ``max_segments`` K and flush threshold T this runs every K
        flushes, so the amortised cost per appended edge stays
        O(|graph| / (K * T)) — bounded, and tiny next to the
        full-recompile-per-edge path this structure replaces.
        """
        with self.tracer.span(
            "segment-compact", segments=len(self._segments)
        ):
            merged = TemporalGraph(self._labels)
            for segment in self._segments:
                for u, v, t in segment.edges():
                    merged.add_edge(
                        u, v, t, label=segment.edge_label(u, v, t)
                    )
            self._segments = [compile_snapshot(merged)]
            self._compaction_count += 1

    # ------------------------------------------------------------------
    # segment introspection
    # ------------------------------------------------------------------
    @property
    def num_segments(self) -> int:
        """Immutable compiled segments currently live."""
        return len(self._segments)

    @property
    def tail_edges(self) -> int:
        """Temporal edges sitting in the mutable tail."""
        return self._tail.num_temporal_edges

    @property
    def flush_count(self) -> int:
        """Tail flushes performed over this graph's lifetime."""
        return self._flush_count

    @property
    def compaction_count(self) -> int:
        """Segment compactions performed over this graph's lifetime."""
        return self._compaction_count

    @property
    def merge_threshold(self) -> int:
        return self._merge_threshold

    @property
    def max_segments(self) -> int:
        return self._max_segments

    def describe(self) -> dict[str, object]:
        """Plain-data summary (service/metrics payloads)."""
        return {
            "num_vertices": self.num_vertices,
            "num_temporal_edges": self.num_temporal_edges,
            "num_static_edges": self.num_static_edges,
            "num_segments": self.num_segments,
            "tail_edges": self.tail_edges,
            "flushes": self._flush_count,
            "compactions": self._compaction_count,
            "merge_threshold": self._merge_threshold,
            "max_segments": self._max_segments,
        }

    def _sources(self) -> list[GraphSnapshot | TemporalGraph]:
        """Read sources in append order: segments first, tail last."""
        sources: list[GraphSnapshot | TemporalGraph] = list(self._segments)
        if self._tail.num_temporal_edges:
            sources.append(self._tail)
        return sources

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    @property
    def fingerprint(self) -> str:
        """Stable digest over segment fingerprints plus the tail edges.

        Segment-aware: flushed segments contribute their cached CSR
        fingerprints, so re-fingerprinting after an append only hashes
        the (small) tail — no compilation is forced.  Equal edge sets
        reached through different flush histories may hash differently;
        the digest identifies the *state*, which is what cache
        invalidation needs.
        """
        if self._fingerprint is None:
            h = hashlib.sha256()
            h.update(repr(self._labels).encode("utf-8"))
            for segment in self._segments:
                h.update(segment.fingerprint.encode("ascii"))
            for u, v, t in self._tail.edges_by_time():
                h.update(f"{u},{v},{t},{self._tail.edge_label(u, v, t)!r};".encode("utf-8"))
            self._fingerprint = h.hexdigest()
        return self._fingerprint

    # ------------------------------------------------------------------
    # basic accessors (GraphView surface)
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self._labels)

    @property
    def num_temporal_edges(self) -> int:
        """Number of distinct ``(u, v, t)`` triples (|ℰ| in Table II)."""
        return (
            sum(segment.num_temporal_edges for segment in self._segments)
            + self._tail.num_temporal_edges
        )

    @property
    def num_static_edges(self) -> int:
        """Number of distinct ``(u, v)`` pairs (|E| in Table II)."""
        return self._num_static_edges

    @property
    def min_time(self) -> Timestamp | None:
        return self._min_time

    @property
    def max_time(self) -> Timestamp | None:
        return self._max_time

    @property
    def time_span(self) -> Timestamp:
        """``max_time - min_time`` (0 for graphs with < 2 timestamps)."""
        if self._min_time is None or self._max_time is None:
            return 0
        return self._max_time - self._min_time

    def vertices(self) -> range:
        return range(len(self._labels))

    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < len(self._labels):
            raise GraphError(f"vertex {v} out of range [0, {len(self._labels)})")

    def label(self, v: int) -> Hashable:
        self._check_vertex(v)
        return self._labels[v]

    @property
    def labels(self) -> tuple[Hashable, ...]:
        return self._labels

    def vertices_with_label(self, label: Hashable) -> tuple[int, ...]:
        if self._label_index is None:
            index: dict[Hashable, list[int]] = {}
            for v, lab in enumerate(self._labels):
                index.setdefault(lab, []).append(v)
            self._label_index = {k: tuple(vs) for k, vs in index.items()}
        return self._label_index.get(label, ())

    # ------------------------------------------------------------------
    # adjacency (merged across sources)
    # ------------------------------------------------------------------
    def has_pair(self, u: int, v: int) -> bool:
        """Does at least one temporal edge ``u -> v`` exist?"""
        self._check_vertex(u)
        self._check_vertex(v)
        return any(source.has_pair(u, v) for source in self._sources())

    def timestamps_list(self, u: int, v: int) -> Sequence[Timestamp]:
        """Sorted timestamps of ``u -> v``, merged across segments + tail.

        Single-source pairs return the source's run zero-copy; pairs
        spanning sources pay one k-way merge of their (short) runs.
        """
        self._check_vertex(u)
        self._check_vertex(v)
        runs = [
            run
            for source in self._sources()
            if len(run := source.timestamps_list(u, v))
        ]
        if not runs:
            return _EMPTY_TIMES
        if len(runs) == 1:
            return runs[0]
        return list(heapq.merge(*runs))

    def timestamps(self, u: int, v: int) -> tuple[Timestamp, ...]:
        """Sorted timestamps of interactions ``u -> v`` (``T(u, v)``)."""
        return tuple(self.timestamps_list(u, v))

    def timestamps_in_window(
        self, u: int, v: int, lo: float, hi: float
    ) -> tuple[Timestamp, ...]:
        """Timestamps ``t`` of ``u -> v`` edges with ``lo <= t <= hi``.

        Each source answers with its own bisected slice; the slices are
        merged, so the cost is O(log run + answer) per source.
        """
        self._check_vertex(u)
        self._check_vertex(v)
        slices = [
            window
            for source in self._sources()
            if len(window := source.timestamps_in_window(u, v, lo, hi))
        ]
        if not slices:
            return ()
        if len(slices) == 1:
            return tuple(slices[0])
        return tuple(heapq.merge(*slices))

    def timestamps_with_label(
        self, u: int, v: int, label: Hashable
    ) -> Sequence[Timestamp]:
        """Timestamps of ``u -> v`` edges carrying exactly *label*."""
        self._check_vertex(u)
        self._check_vertex(v)
        runs = [
            run
            for source in self._sources()
            if len(run := source.timestamps_with_label(u, v, label))
        ]
        if not runs:
            return _EMPTY_TIMES
        if len(runs) == 1:
            return runs[0]
        return list(heapq.merge(*runs))

    def timestamps_with_label_in_window(
        self, u: int, v: int, label: Hashable, lo: float, hi: float
    ) -> Sequence[Timestamp]:
        """Timestamps of ``u -> v`` edges with *label* and ``lo <= t <= hi``."""
        self._check_vertex(u)
        self._check_vertex(v)
        slices = [
            window
            for source in self._sources()
            if len(
                window := source.timestamps_with_label_in_window(
                    u, v, label, lo, hi
                )
            )
        ]
        if not slices:
            return _EMPTY_TIMES
        if len(slices) == 1:
            return slices[0]
        return list(heapq.merge(*slices))

    def edge_label(self, u: int, v: int, t: Timestamp) -> Hashable | None:
        """Label of temporal edge ``(u, v, t)``, or None if unlabeled."""
        for source in self._sources():
            label = source.edge_label(u, v, t)
            if label is not None:
                return label
        return None

    @property
    def has_edge_labels(self) -> bool:
        """True if any temporal edge carries a label."""
        return any(source.has_edge_labels for source in self._sources())

    def out_neighbor_ids(self, u: int) -> Sequence[int]:
        """Distinct out-neighbours of ``u``, id-sorted (merged copy)."""
        self._check_vertex(u)
        sources = self._sources()
        if len(sources) == 1:
            return sorted(sources[0].out_neighbor_ids(u))
        merged: set[int] = set()
        for source in sources:
            merged.update(source.out_neighbor_ids(u))
        return sorted(merged)

    def in_neighbor_ids(self, v: int) -> Sequence[int]:
        """Distinct in-neighbours of ``v``, id-sorted (merged copy)."""
        self._check_vertex(v)
        sources = self._sources()
        if len(sources) == 1:
            return sorted(sources[0].in_neighbor_ids(v))
        merged: set[int] = set()
        for source in sources:
            merged.update(source.in_neighbor_ids(v))
        return sorted(merged)

    def out_items(
        self, u: int
    ) -> Iterator[tuple[int, Sequence[Timestamp]]]:
        """Iterate ``(v, sorted timestamps)`` over out-neighbours of ``u``."""
        self._check_vertex(u)
        sources = self._sources()
        if len(sources) == 1:
            yield from sources[0].out_items(u)
            return
        runs: dict[int, list[Sequence[Timestamp]]] = {}
        for source in sources:
            for v, times in source.out_items(u):
                runs.setdefault(v, []).append(times)
        for v in sorted(runs):
            parts = runs[v]
            yield v, parts[0] if len(parts) == 1 else list(heapq.merge(*parts))

    def in_items(
        self, v: int
    ) -> Iterator[tuple[int, Sequence[Timestamp]]]:
        """Iterate ``(u, sorted timestamps)`` over in-neighbours of ``v``."""
        self._check_vertex(v)
        sources = self._sources()
        if len(sources) == 1:
            yield from sources[0].in_items(v)
            return
        runs: dict[int, list[Sequence[Timestamp]]] = {}
        for source in sources:
            for u, times in source.in_items(v):
                runs.setdefault(u, []).append(times)
        for u in sorted(runs):
            parts = runs[u]
            yield u, parts[0] if len(parts) == 1 else list(heapq.merge(*parts))

    def out_pairs(
        self, u: int
    ) -> Iterator[tuple[int, tuple[Timestamp, ...]]]:
        """Iterate ``(v, timestamps)`` over out-neighbours of ``u``."""
        for v, times in self.out_items(u):
            yield v, tuple(times)

    def in_pairs(
        self, v: int
    ) -> Iterator[tuple[int, tuple[Timestamp, ...]]]:
        """Iterate ``(u, timestamps)`` over in-neighbours of ``v``."""
        for u, times in self.in_items(v):
            yield u, tuple(times)

    def out_edges(self, u: int) -> Iterator[TemporalEdge]:
        """All temporal edges leaving ``u``, timestamps expanded."""
        for v, times in self.out_items(u):
            for t in times:
                yield TemporalEdge(u, v, t)

    def in_edges(self, v: int) -> Iterator[TemporalEdge]:
        """All temporal edges entering ``v``, timestamps expanded."""
        for u, times in self.in_items(v):
            for t in times:
                yield TemporalEdge(u, v, t)

    def edges(self) -> Iterator[TemporalEdge]:
        """All temporal edges in vertex order (not time order)."""
        for u in self.vertices():
            yield from self.out_edges(u)

    def edges_by_time(self) -> list[TemporalEdge]:
        """All temporal edges sorted by ``(t, u, v)`` (cached; read-only)."""
        if self._edges_by_time is None:
            self._edges_by_time = sorted(
                chain.from_iterable(
                    source.edges() for source in self._sources()
                ),
                key=lambda e: (e.t, e.u, e.v),
            )
        return self._edges_by_time

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    def de_temporal(self) -> StaticGraph:
        """The static graph obtained by dropping timestamps (cached)."""
        if self._static is None:
            graph = StaticGraph(self._labels)
            for u in self.vertices():
                for v in self.out_neighbor_ids(u):
                    graph.add_edge(u, v)
            self._static = graph
        return self._static

    def static_view(self) -> StaticGraph:
        """The static accessor surface for the candidate filters."""
        return self.de_temporal()

    def freeze(self) -> GraphSnapshot:
        """One merged CSR snapshot of segments + tail (cached).

        Segment-aware: a graph that is exactly one compiled segment with
        an empty tail returns that segment directly — no recompilation,
        which is what keeps ``ensure_snapshot`` cheap on a stream that
        just compacted or was seeded from a registered snapshot.
        """
        if self._frozen is None:
            if len(self._segments) == 1 and not self._tail.num_temporal_edges:
                self._frozen = self._segments[0]
            else:
                merged = TemporalGraph(self._labels)
                for source in self._sources():
                    for u, v, t in source.edges():
                        merged.add_edge(
                            u, v, t, label=source.edge_label(u, v, t)
                        )
                self._frozen = compile_snapshot(merged)
        return self._frozen

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SegmentedGraph(num_vertices={self.num_vertices}, "
            f"temporal_edges={self.num_temporal_edges}, "
            f"segments={self.num_segments}, tail={self.tail_edges})"
        )
