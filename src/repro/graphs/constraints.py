"""Temporal constraints (Definition 3) and their difference-constraint view.

A constraint triple ``(i, j, k)`` requires the matched timestamps to obey
``0 <= t_j - t_i <= k``: edge ``e_i`` happens no later than ``e_j`` and at
most ``k`` time units earlier.  A set of such triples forms a simple
directed edge-weighted graph over query-edge indices (the paper's TC
graph).

Beyond the paper, this module treats the constraint set as a *simple
temporal network* (STN): Floyd–Warshall over the difference-constraint
graph yields the tightest implied window between every pair of edges, and
detects infeasible sets before any matching work happens.  Matchers can
optionally run on the closed set (``tighten=True`` in the engine), which is
one of the ablations called out in DESIGN.md.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Iterator, Sequence
from typing import NamedTuple

from ..errors import ConstraintError, InfeasibleConstraintsError

__all__ = ["Constraint", "TemporalConstraints"]

Gap = float  # integral in practice; float admits math.inf for "no bound"


class Constraint(NamedTuple):
    """``0 <= t[later] - t[earlier] <= gap`` over query-edge indices.

    Field names replace the paper's positional ``(i, j, k)`` to keep the
    direction unambiguous: ``earlier`` is the paper's ``i``, ``later`` is
    ``j`` and ``gap`` is ``k``.
    """

    earlier: int
    later: int
    gap: Gap

    def is_satisfied(self, t_earlier: float, t_later: float) -> bool:
        """Check the window against two concrete timestamps."""
        return 0 <= t_later - t_earlier <= self.gap


class TemporalConstraints:
    """An immutable, validated set of temporal constraints.

    Parameters
    ----------
    triples:
        Iterable of ``(earlier, later, gap)`` triples or
        :class:`Constraint` objects.
    num_edges:
        Number of edges in the query graph the constraints refer to; used
        to validate indices eagerly (pass ``query.num_edges``).

    Raises
    ------
    ConstraintError
        On out-of-range edge indices, negative gaps, self-referencing
        triples, or duplicate ``(earlier, later)`` pairs (Definition 3
        excludes loops and multi-edges).  Use :meth:`merged` to collapse
        duplicates instead of raising.
    """

    __slots__ = ("_constraints", "_num_edges", "_by_last", "_degree")

    def __init__(
        self,
        triples: Iterable[tuple[int, int, Gap] | Constraint],
        num_edges: int,
    ) -> None:
        if num_edges < 0:
            raise ConstraintError(f"num_edges must be >= 0, got {num_edges}")
        self._num_edges = num_edges
        seen: set[tuple[int, int]] = set()
        constraints: list[Constraint] = []
        for raw in triples:
            c = Constraint(*raw)
            self._validate(c)
            key = (c.earlier, c.later)
            if key in seen:
                raise ConstraintError(
                    f"duplicate constraint between edges {c.earlier} and "
                    f"{c.later}; use TemporalConstraints.merged() to collapse"
                )
            seen.add(key)
            constraints.append(c)
        self._constraints: tuple[Constraint, ...] = tuple(constraints)
        self._by_last: dict[int, tuple[Constraint, ...]] | None = None
        self._degree: dict[int, int] | None = None

    def _validate(self, c: Constraint) -> None:
        for edge in (c.earlier, c.later):
            if not 0 <= edge < self._num_edges:
                raise ConstraintError(
                    f"constraint {c} references edge {edge}, outside "
                    f"[0, {self._num_edges})"
                )
        if c.earlier == c.later:
            raise ConstraintError(f"constraint {c} is a self loop")
        if not (c.gap >= 0):  # also rejects NaN
            raise ConstraintError(f"constraint {c} has negative gap")

    @classmethod
    def merged(
        cls,
        triples: Iterable[tuple[int, int, Gap] | Constraint],
        num_edges: int,
    ) -> "TemporalConstraints":
        """Like the constructor, but duplicate pairs keep the tightest gap."""
        best: dict[tuple[int, int], Gap] = {}
        for raw in triples:
            c = Constraint(*raw)
            key = (c.earlier, c.later)
            if key not in best or c.gap < best[key]:
                best[key] = c.gap
        return cls(
            (Constraint(i, j, k) for (i, j), k in best.items()), num_edges
        )

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        """Number of query edges this constraint set is validated against."""
        return self._num_edges

    def __len__(self) -> int:
        return len(self._constraints)

    def __iter__(self) -> Iterator[Constraint]:
        return iter(self._constraints)

    def __getitem__(self, index: int) -> Constraint:
        return self._constraints[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TemporalConstraints):
            return NotImplemented
        return (
            self._num_edges == other._num_edges
            and set(self._constraints) == set(other._constraints)
        )

    def __hash__(self) -> int:
        return hash((self._num_edges, frozenset(self._constraints)))

    @property
    def constraints(self) -> tuple[Constraint, ...]:
        return self._constraints

    def edges_involved(self) -> frozenset[int]:
        """Query-edge indices that appear in at least one constraint."""
        involved: set[int] = set()
        for c in self._constraints:
            involved.add(c.earlier)
            involved.add(c.later)
        return frozenset(involved)

    def degree(self, edge: int) -> int:
        """Number of constraints touching *edge* (``d(e)`` in Def. 5)."""
        if self._degree is None:
            degree: dict[int, int] = {}
            for c in self._constraints:
                degree[c.earlier] = degree.get(c.earlier, 0) + 1
                degree[c.later] = degree.get(c.later, 0) + 1
            self._degree = degree
        return self._degree.get(edge, 0)

    def involving(self, edge: int) -> tuple[Constraint, ...]:
        """All constraints having *edge* as either endpoint."""
        return tuple(
            c for c in self._constraints if edge in (c.earlier, c.later)
        )

    def constraints_ending_at(self, edge: int) -> tuple[Constraint, ...]:
        """Constraints whose *later* side is ``edge`` (cached by edge)."""
        if self._by_last is None:
            by_last: dict[int, list[Constraint]] = {}
            for c in self._constraints:
                by_last.setdefault(c.later, []).append(c)
            self._by_last = {k: tuple(v) for k, v in by_last.items()}
        return self._by_last.get(edge, ())

    # ------------------------------------------------------------------
    # STN view: implied windows, feasibility, closure
    # ------------------------------------------------------------------
    def distance_matrix(self) -> list[list[float]]:
        """All-pairs tightest bounds ``D[x][y]`` on ``t_y - t_x``.

        Each constraint contributes the arcs ``t_later - t_earlier <= gap``
        and ``t_earlier - t_later <= 0``.  Floyd–Warshall over query-edge
        indices (|E_q| is small) gives the tightest implied bound for every
        ordered pair; ``math.inf`` means unconstrained.
        """
        m = self._num_edges
        dist = [[math.inf] * m for _ in range(m)]
        for x in range(m):
            dist[x][x] = 0.0
        for c in self._constraints:
            if c.gap < dist[c.earlier][c.later]:
                dist[c.earlier][c.later] = float(c.gap)
            if 0.0 < dist[c.later][c.earlier]:
                dist[c.later][c.earlier] = 0.0
        for mid in range(m):
            row_mid = dist[mid]
            for x in range(m):
                through = dist[x][mid]
                if through == math.inf:
                    continue
                row_x = dist[x]
                for y in range(m):
                    candidate = through + row_mid[y]
                    if candidate < row_x[y]:
                        row_x[y] = candidate
        return dist

    def is_feasible(self) -> bool:
        """True iff some timestamp assignment satisfies every constraint."""
        dist = self.distance_matrix()
        return all(dist[x][x] >= 0 for x in range(self._num_edges))

    def implied_window(self, earlier: int, later: int) -> tuple[float, float]:
        """Tightest implied bounds ``(lo, hi)`` on ``t_later - t_earlier``.

        ``(-inf, inf)`` if the pair is unconstrained (directly or
        transitively).
        """
        dist = self.distance_matrix()
        hi = dist[earlier][later]
        lo = -dist[later][earlier]
        return (lo, hi)

    def closed(self) -> "TemporalConstraints":
        """The transitive closure as a new, tightened constraint set.

        Emits one constraint for every ordered pair ``(x, y)`` with a finite
        implied upper bound *and* an implied ordering ``t_y >= t_x``; the
        result contains (a tightened version of) every input constraint.

        Raises
        ------
        InfeasibleConstraintsError
            If the constraint set admits no assignment (negative cycle).
        """
        dist = self.distance_matrix()
        m = self._num_edges
        for x in range(m):
            if dist[x][x] < 0:
                raise InfeasibleConstraintsError(
                    "temporal constraints admit no timestamp assignment"
                )
        closed: list[Constraint] = []
        for x in range(m):
            for y in range(m):
                if x == y:
                    continue
                if dist[x][y] < math.inf and dist[y][x] <= 0:
                    closed.append(Constraint(x, y, dist[x][y]))
        return TemporalConstraints(closed, m)

    def check(self, times: Sequence[float | None]) -> bool:
        """Validate a (partial) timestamp assignment.

        ``times[i]`` is the timestamp matched to query edge ``i`` or
        ``None`` if unmatched; constraints with an unmatched side pass.
        """
        for c in self._constraints:
            t_i = times[c.earlier]
            t_j = times[c.later]
            if t_i is None or t_j is None:
                continue
            if not c.is_satisfied(t_i, t_j):
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TemporalConstraints({list(self._constraints)!r}, "
            f"num_edges={self._num_edges})"
        )
