"""Query graphs (Definition 2): labeled, simple, directed, with ordered edges.

The edge order matters: temporal constraints (Definition 3) refer to edges
by their position in ``E_q = {e_1, e_2, ...}``.  Internally edges are
0-indexed; the public API uses 0-based indices throughout and the docs call
this out wherever the paper's 1-based numbering could cause confusion.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Hashable, Iterable, Sequence

from ..errors import QueryError

__all__ = ["QueryGraph"]


class QueryGraph:
    """A labeled simple directed query graph with an ordered edge list.

    Parameters
    ----------
    labels:
        One label per query vertex (``labels[u]`` labels vertex ``u``).
    edges:
        Ordered sequence of ``(u, v)`` pairs; the position of a pair in this
        sequence is the edge's index used by temporal constraints.
    edge_labels:
        Optional per-edge labels aligned with *edges*.  ``None`` entries
        (the default) are wildcards; a labeled query edge only matches
        data edges carrying the same label (the Section-II edge-label
        generalisation).

    Raises
    ------
    QueryError
        On self loops, duplicate edges, out-of-range endpoints, or an empty
        vertex set.
    """

    __slots__ = (
        "_labels",
        "_edges",
        "_edge_index",
        "_out",
        "_in",
        "_incident_edges",
        "_neighbor_label_counts",
        "_edge_labels",
    )

    def __init__(
        self,
        labels: Sequence[Hashable],
        edges: Sequence[tuple[int, int]],
        edge_labels: Sequence[Hashable | None] | None = None,
    ) -> None:
        self._labels: tuple[Hashable, ...] = tuple(labels)
        n = len(self._labels)
        if n == 0:
            raise QueryError("query graph needs at least one vertex")
        self._edges: tuple[tuple[int, int], ...] = tuple(
            (int(u), int(v)) for u, v in edges
        )
        self._edge_index: dict[tuple[int, int], int] = {}
        self._out: list[set[int]] = [set() for _ in range(n)]
        self._in: list[set[int]] = [set() for _ in range(n)]
        self._incident_edges: list[list[int]] = [[] for _ in range(n)]
        for idx, (u, v) in enumerate(self._edges):
            if not (0 <= u < n and 0 <= v < n):
                raise QueryError(f"edge {idx} = ({u}, {v}) has out-of-range endpoint")
            if u == v:
                raise QueryError(f"edge {idx} = ({u}, {u}) is a self loop")
            if (u, v) in self._edge_index:
                raise QueryError(f"duplicate edge ({u}, {v}) at index {idx}")
            self._edge_index[(u, v)] = idx
            self._out[u].add(v)
            self._in[v].add(u)
            self._incident_edges[u].append(idx)
            self._incident_edges[v].append(idx)
        if edge_labels is None:
            self._edge_labels: tuple[Hashable | None, ...] = (None,) * len(
                self._edges
            )
        else:
            self._edge_labels = tuple(edge_labels)
            if len(self._edge_labels) != len(self._edges):
                raise QueryError(
                    f"{len(self._edge_labels)} edge labels for "
                    f"{len(self._edges)} edges"
                )
        self._neighbor_label_counts: list[Counter[Hashable] | None] = [None] * n

    # ------------------------------------------------------------------
    # vertices
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self._labels)

    def vertices(self) -> range:
        return range(len(self._labels))

    def label(self, u: int) -> Hashable:
        self._check_vertex(u)
        return self._labels[u]

    @property
    def labels(self) -> tuple[Hashable, ...]:
        return self._labels

    def num_distinct_labels(self) -> int:
        """``|L_q|`` — the number of distinct labels used (Exp-7)."""
        return len(set(self._labels))

    def _check_vertex(self, u: int) -> None:
        if not 0 <= u < len(self._labels):
            raise QueryError(f"vertex {u} out of range [0, {len(self._labels)})")

    # ------------------------------------------------------------------
    # edges
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        return len(self._edges)

    @property
    def edges(self) -> tuple[tuple[int, int], ...]:
        """Ordered edge tuple; index = constraint edge index (0-based)."""
        return self._edges

    def edge(self, index: int) -> tuple[int, int]:
        """Endpoints ``(u, v)`` of edge ``index``."""
        self._check_edge(index)
        return self._edges[index]

    def edge_label(self, index: int) -> Hashable | None:
        """Label required of data edges matched to edge *index* (or None)."""
        self._check_edge(index)
        return self._edge_labels[index]

    @property
    def edge_labels(self) -> tuple[Hashable | None, ...]:
        """Per-edge required labels (None = wildcard), edge-index aligned."""
        return self._edge_labels

    @property
    def has_edge_labels(self) -> bool:
        """True if any query edge requires an edge label."""
        return any(label is not None for label in self._edge_labels)

    def edge_index(self, u: int, v: int) -> int:
        """Index of directed edge ``(u, v)``; raise ``QueryError`` if absent."""
        try:
            return self._edge_index[(u, v)]
        except KeyError:
            raise QueryError(f"edge ({u}, {v}) not in query graph") from None

    def has_edge(self, u: int, v: int) -> bool:
        return (u, v) in self._edge_index

    def _check_edge(self, index: int) -> None:
        if not 0 <= index < len(self._edges):
            raise QueryError(
                f"edge index {index} out of range [0, {len(self._edges)})"
            )

    def incident_edges(self, u: int) -> tuple[int, ...]:
        """Indices of edges having ``u`` as an endpoint (``u.adje``)."""
        self._check_vertex(u)
        return tuple(self._incident_edges[u])

    def edges_share_vertex(self, i: int, j: int) -> frozenset[int]:
        """Vertices common to edges ``i`` and ``j`` (possibly empty)."""
        self._check_edge(i)
        self._check_edge(j)
        return frozenset(self._edges[i]) & frozenset(self._edges[j])

    # ------------------------------------------------------------------
    # adjacency
    # ------------------------------------------------------------------
    def out_neighbors(self, u: int) -> frozenset[int]:
        self._check_vertex(u)
        return frozenset(self._out[u])

    def in_neighbors(self, u: int) -> frozenset[int]:
        self._check_vertex(u)
        return frozenset(self._in[u])

    def neighbors(self, u: int) -> frozenset[int]:
        """Undirected neighbourhood ``N(u)``."""
        self._check_vertex(u)
        return frozenset(self._out[u] | self._in[u])

    def out_degree(self, u: int) -> int:
        self._check_vertex(u)
        return len(self._out[u])

    def in_degree(self, u: int) -> int:
        self._check_vertex(u)
        return len(self._in[u])

    def degree(self, u: int) -> int:
        return len(self.neighbors(u))

    def density(self) -> float:
        """``|E_q| / |V_q|`` — the density knob swept in Exp-4."""
        return len(self._edges) / len(self._labels)

    def neighbor_label_counts(self, u: int) -> Counter[Hashable]:
        """Multiset of labels over ``N(u)`` (cached), used by NLF/Vmatch."""
        self._check_vertex(u)
        cached = self._neighbor_label_counts[u]
        if cached is None:
            cached = Counter(self._labels[w] for w in self._out[u] | self._in[u])
            self._neighbor_label_counts[u] = cached
        return cached

    def is_weakly_connected(self) -> bool:
        """True if the underlying undirected graph is connected."""
        n = len(self._labels)
        if n <= 1:
            return True
        seen = {0}
        stack = [0]
        while stack:
            u = stack.pop()
            for w in self._out[u] | self._in[u]:
                if w not in seen:
                    seen.add(w)
                    stack.append(w)
        return len(seen) == n

    # ------------------------------------------------------------------
    # dunder utilities
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QueryGraph(num_vertices={self.num_vertices}, "
            f"num_edges={self.num_edges})"
        )

    @classmethod
    def from_named(
        cls,
        labels: dict[str, Hashable],
        edges: Iterable[tuple[str, str]],
    ) -> tuple["QueryGraph", dict[str, int]]:
        """Build a query graph from human-readable vertex names.

        >>> q, names = QueryGraph.from_named(
        ...     {"u1": "A", "u2": "B"}, [("u1", "u2")])
        >>> q.edge(0) == (names["u1"], names["u2"])
        True
        """
        name_to_id = {name: idx for idx, name in enumerate(labels)}
        label_list = [labels[name] for name in labels]
        try:
            edge_list = [(name_to_id[a], name_to_id[b]) for a, b in edges]
        except KeyError as exc:
            raise QueryError(f"edge references unknown vertex {exc}") from None
        return cls(label_list, edge_list), name_to_id
