"""Plan cache: prepared matchers, keyed by graph version and pattern hash.

A matcher's ``prepare()`` (candidate filtering + TCQ/TCQ+ construction)
is the per-query cost the paper splits out as "preparation time"; for a
service that sees repeated patterns over a long-lived graph it is pure
amortizable overhead.  The cache maps

    (graph name, graph version, pattern fingerprint, algorithm, options)

to a *prepared* matcher.  Matchers keep all per-run state local to
``run()`` (the DFS closures allocate fresh maps per call), so one
prepared matcher can serve many concurrent runs — including the
partitioned fan-out of a single query — without copying.

Eviction is LRU; replacing a graph bumps its version, so stale plans age
out of the LRU naturally and :meth:`PlanCache.invalidate_graph` exists
only to reclaim their memory eagerly.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from collections.abc import Callable, Mapping
from dataclasses import dataclass
from typing import NamedTuple

from ..core import Matcher, MatchOptions
from ..graphs import QueryGraph, TemporalConstraints, pattern_to_dict
from ..obs import assert_lock_held

__all__ = [
    "CachedPlan",
    "PlanCache",
    "PlanKey",
    "match_options_fingerprint",
    "options_fingerprint",
    "pattern_fingerprint",
]


def pattern_fingerprint(
    query: QueryGraph, constraints: TemporalConstraints
) -> str:
    """Stable hex digest of a (query, constraints) pattern.

    Canonical JSON of the pattern's serialised form: equal patterns hash
    equal across processes and sessions (no reliance on ``hash()``
    randomisation), so fingerprints are safe to embed in cache keys and
    server responses.  Constraint gaps are normalised to float first so a
    pattern round-tripped through JSON (which coerces gaps to float)
    hashes identically to its native twin.
    """
    data = pattern_to_dict(query, constraints)
    data["constraints"] = [
        {"earlier": c.earlier, "later": c.later, "gap": float(c.gap)}
        for c in constraints
    ]
    payload = json.dumps(
        data, sort_keys=True, separators=(",", ":"), default=str
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def match_options_fingerprint(options: MatchOptions) -> str:
    """Stable hex digest of the result-shaping :class:`MatchOptions` fields.

    Delegates to :meth:`MatchOptions.canonical_hash`, so the service's
    cache keys and the core options type can never disagree about what
    identifies an answer (the time budget and tracing are excluded there
    by design).
    """
    return options.canonical_hash()


def options_fingerprint(options: Mapping[str, object]) -> str:
    """Stable hex digest of matcher constructor options (``""`` if empty)."""
    if not options:
        return ""
    payload = json.dumps(
        {key: repr(value) for key, value in options.items()}, sort_keys=True
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class PlanKey(NamedTuple):
    """Cache key for one prepared plan.

    ``graph_fingerprint`` is the content digest of the graph's compiled
    CSR snapshot (:attr:`repro.graphs.GraphSnapshot.fingerprint`): it
    pins the plan to the exact data-plane bytes it was prepared against,
    independent of registration order or process identity.
    """

    graph_name: str
    graph_version: int
    graph_fingerprint: str
    pattern: str
    algorithm: str
    options: str


@dataclass(frozen=True)
class CachedPlan:
    """A prepared matcher plus the preparation cost it amortizes."""

    key: PlanKey
    matcher: Matcher
    build_seconds: float


class PlanCache:
    """Thread-safe LRU cache of prepared matchers.

    Concurrent requests for the *same* key build once (per-key build
    locks); requests for different keys build in parallel.
    """

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError(f"plan cache capacity must be >= 1, not {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[PlanKey, CachedPlan] = OrderedDict()
        self._building: dict[PlanKey, threading.Lock] = {}
        self._lock = threading.Lock()

    def get(self, key: PlanKey) -> CachedPlan | None:
        """The cached plan for *key*, refreshed as most recently used."""
        with self._lock:
            plan = self._entries.get(key)
            if plan is not None:
                self._entries.move_to_end(key)
            return plan

    def get_or_build(
        self, key: PlanKey, build: Callable[[], CachedPlan]
    ) -> tuple[CachedPlan, bool]:
        """The plan for *key*, building it at most once per key.

        Returns ``(plan, hit)`` where ``hit`` is True when the plan came
        from the cache.  *build* runs outside the cache-wide lock so a
        slow ``prepare()`` never blocks unrelated lookups.
        """
        with self._lock:
            plan = self._entries.get(key)
            if plan is not None:
                self._entries.move_to_end(key)
                return plan, True
            key_lock = self._building.setdefault(key, threading.Lock())
        try:
            with key_lock:
                with self._lock:
                    plan = self._entries.get(key)
                    if plan is not None:
                        self._entries.move_to_end(key)
                        return plan, True
                plan = build()
                with self._lock:
                    self._entries[key] = plan
                    self._entries.move_to_end(key)
                    self._trim_locked()
                return plan, False
        finally:
            # Evict the per-key build lock unconditionally — also when
            # build() raises — so long-running services don't leak one
            # lock per evicted plan.  Guard on identity: a racing thread
            # may have installed a fresh lock for the key already.
            with self._lock:
                if self._building.get(key) is key_lock:
                    del self._building[key]

    def _trim_locked(self) -> None:
        """Evict LRU entries past capacity; caller must hold ``_lock``."""
        assert_lock_held(self._lock, "PlanCache._lock")
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    @property
    def pending_builds(self) -> int:
        """Number of per-key build locks currently outstanding.

        A long-lived service should see this return to zero when idle;
        the concurrency stress test asserts the build-lock dict does not
        leak entries for completed (or failed) builds.
        """
        with self._lock:
            return len(self._building)

    def invalidate_graph(
        self, graph_name: str, keep_version: int | None = None
    ) -> int:
        """Drop plans for *graph_name* (other than *keep_version*).

        Returns the number of evicted plans.
        """
        with self._lock:
            stale = [
                key
                for key in self._entries
                if key.graph_name == graph_name
                and key.graph_version != keep_version
            ]
            for key in stale:
                del self._entries[key]
            return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
