"""Graph registry: named, versioned, long-lived graph snapshots.

The amortization premise of the service is that a data graph is loaded
*once* and served *many* times.  The registry holds immutable
:class:`~repro.graphs.TemporalGraph` snapshots under stable names; every
(re)registration of a name bumps a monotonically increasing version that
never resets, even across a drop — cache keys embed ``(name, version)``,
so replacing a graph implicitly invalidates every plan and result cached
against the old snapshot without any cache traversal.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from ..errors import UnknownGraphError
from ..graphs import (
    GraphSnapshot,
    TemporalGraph,
    ensure_snapshot,
    snapshot_write_barrier,
)
from ..obs import sanitize_enabled

__all__ = ["GraphHandle", "GraphRegistry"]


@dataclass(frozen=True)
class GraphHandle:
    """One registered graph: ``(name, version, graph, snapshot)``.

    ``snapshot`` is the graph's frozen CSR compilation, produced exactly
    once per ``(graph, version)`` at registration time; queries, plan
    preparation, and the process-pool executor all consume the snapshot
    (compact to pickle, safe to share lock-free across threads), never
    the mutable builder graph.
    """

    name: str
    version: int
    graph: TemporalGraph
    snapshot: GraphSnapshot

    def describe(self) -> dict[str, object]:
        """Plain-data summary for server responses."""
        return {
            "name": self.name,
            "version": self.version,
            "num_vertices": self.graph.num_vertices,
            "num_temporal_edges": self.graph.num_temporal_edges,
            "num_static_edges": self.graph.num_static_edges,
            "fingerprint": self.snapshot.fingerprint,
        }


class GraphRegistry:
    """Thread-safe mapping of graph names to versioned snapshots."""

    def __init__(self) -> None:
        self._handles: dict[str, GraphHandle] = {}
        self._versions: dict[str, int] = {}
        self._lock = threading.Lock()

    def register(self, name: str, graph: TemporalGraph) -> GraphHandle:
        """Publish *graph* under *name*, bumping the name's version.

        Returns the new handle; a previously registered snapshot under the
        same name is replaced atomically (in-flight queries holding the
        old handle keep matching against the old snapshot — graphs are
        never mutated in place).

        The CSR snapshot is compiled here, outside the registry lock and
        exactly once per ``(graph, version)`` (``freeze()`` caches on the
        graph, so re-registering the same object reuses its compilation).
        """
        snapshot = ensure_snapshot(graph)
        if sanitize_enabled():
            # Sanitizer mode: every consumer of this handle (plan
            # preparation, query runs, pickling into the process pool)
            # gets the write-barrier wrapped snapshot, so any
            # post-compile mutation anywhere in the service raises.
            snapshot = snapshot_write_barrier(snapshot)
        with self._lock:
            version = self._versions.get(name, 0) + 1
            self._versions[name] = version
            handle = GraphHandle(
                name=name, version=version, graph=graph, snapshot=snapshot
            )
            self._handles[name] = handle
            return handle

    def get(self, name: str) -> GraphHandle:
        """The current handle for *name*; raises :class:`UnknownGraphError`."""
        with self._lock:
            handle = self._handles.get(name)
            known = ", ".join(sorted(self._handles)) or "(none)"
        if handle is None:
            raise UnknownGraphError(
                f"unknown graph {name!r}; registered: {known}"
            )
        return handle

    def drop(self, name: str) -> None:
        """Remove *name*; the version counter survives for cache safety."""
        with self._lock:
            if name not in self._handles:
                raise UnknownGraphError(f"unknown graph {name!r}")
            del self._handles[name]

    def names(self) -> tuple[str, ...]:
        """Sorted names of the registered graphs."""
        with self._lock:
            return tuple(sorted(self._handles))

    def handles(self) -> tuple[GraphHandle, ...]:
        """Current handles, sorted by name."""
        with self._lock:
            return tuple(
                handle for _, handle in sorted(self._handles.items())
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._handles)
