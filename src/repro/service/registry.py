"""Graph registry: named, versioned, long-lived graph snapshots.

The amortization premise of the service is that a data graph is loaded
*once* and served *many* times.  The registry holds immutable
:class:`~repro.graphs.TemporalGraph` snapshots under stable names; every
(re)registration of a name bumps a monotonically increasing version that
never resets, even across a drop — cache keys embed ``(name, version)``,
so replacing a graph implicitly invalidates every plan and result cached
against the old snapshot without any cache traversal.

With ``share_snapshots=True`` the registry additionally exports each
compiled snapshot into a :class:`~repro.graphs.SharedSnapshot`
shared-memory segment at registration time, so the process-pool executor
can ship segment *names* to workers instead of pickled CSR buffers.
Replacing or dropping a graph releases the old segment's registry
reference; in-flight fan-outs keep it alive through their own
``addref``/``close`` pairs (refcounted unlink).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from ..errors import UnknownGraphError
from ..graphs import (
    GraphSnapshot,
    SharedSnapshot,
    TemporalGraph,
    ensure_snapshot,
    snapshot_write_barrier,
)
from ..obs import sanitize_enabled

__all__ = ["GraphHandle", "GraphRegistry"]


@dataclass(frozen=True)
class GraphHandle:
    """One registered graph: ``(name, version, graph, snapshot[, shared])``.

    ``snapshot`` is the graph's frozen CSR compilation, produced exactly
    once per ``(graph, version)`` at registration time; queries, plan
    preparation, and the process-pool executor all consume the snapshot
    (compact to pickle, safe to share lock-free across threads), never
    the mutable builder graph.  ``shared`` is the snapshot's
    shared-memory export when the registry was built with
    ``share_snapshots=True`` (``None`` otherwise).
    """

    name: str
    version: int
    graph: TemporalGraph
    snapshot: GraphSnapshot
    shared: SharedSnapshot | None = None

    def describe(self) -> dict[str, object]:
        """Plain-data summary for server responses."""
        payload: dict[str, object] = {
            "name": self.name,
            "version": self.version,
            "num_vertices": self.graph.num_vertices,
            "num_temporal_edges": self.graph.num_temporal_edges,
            "num_static_edges": self.graph.num_static_edges,
            "fingerprint": self.snapshot.fingerprint,
        }
        if self.shared is not None:
            payload["shared_segment"] = self.shared.name
            payload["shared_nbytes"] = self.shared.nbytes
        return payload


class GraphRegistry:
    """Thread-safe mapping of graph names to versioned snapshots."""

    def __init__(self, share_snapshots: bool = False) -> None:
        self.share_snapshots = share_snapshots
        self._handles: dict[str, GraphHandle] = {}
        self._versions: dict[str, int] = {}
        self._lock = threading.Lock()

    def register(self, name: str, graph: TemporalGraph) -> GraphHandle:
        """Publish *graph* under *name*, bumping the name's version.

        Returns the new handle; a previously registered snapshot under the
        same name is replaced atomically (in-flight queries holding the
        old handle keep matching against the old snapshot — graphs are
        never mutated in place; an old *shared segment* likewise stays
        mapped until its last in-flight reference closes).

        The CSR snapshot is compiled here, outside the registry lock and
        exactly once per ``(graph, version)`` (``freeze()`` caches on the
        graph, so re-registering the same object reuses its compilation).
        Under ``share_snapshots`` the compiled payload is also exported
        into a shared-memory segment, once per registration.
        """
        snapshot = ensure_snapshot(graph)
        if sanitize_enabled():
            # Sanitizer mode: every consumer of this handle (plan
            # preparation, query runs, pickling into the process pool)
            # gets the write-barrier wrapped snapshot, so any
            # post-compile mutation anywhere in the service raises.
            snapshot = snapshot_write_barrier(snapshot)
        shared = (
            SharedSnapshot.export(snapshot) if self.share_snapshots else None
        )
        with self._lock:
            version = self._versions.get(name, 0) + 1
            self._versions[name] = version
            handle = GraphHandle(
                name=name,
                version=version,
                graph=graph,
                snapshot=snapshot,
                shared=shared,
            )
            previous = self._handles.get(name)
            self._handles[name] = handle
        if previous is not None and previous.shared is not None:
            previous.shared.close()
        return handle

    def get(self, name: str) -> GraphHandle:
        """The current handle for *name*; raises :class:`UnknownGraphError`."""
        with self._lock:
            handle = self._handles.get(name)
            known = ", ".join(sorted(self._handles)) or "(none)"
        if handle is None:
            raise UnknownGraphError(
                f"unknown graph {name!r}; registered: {known}"
            )
        return handle

    def drop(self, name: str) -> None:
        """Remove *name*; the version counter survives for cache safety."""
        with self._lock:
            if name not in self._handles:
                raise UnknownGraphError(f"unknown graph {name!r}")
            handle = self._handles.pop(name)
        if handle.shared is not None:
            handle.shared.close()

    def close(self) -> None:
        """Drop every graph, releasing all shared segments (idempotent)."""
        with self._lock:
            handles = list(self._handles.values())
            self._handles.clear()
        for handle in handles:
            if handle.shared is not None:
                handle.shared.close()

    def names(self) -> tuple[str, ...]:
        """Sorted names of the registered graphs."""
        with self._lock:
            return tuple(sorted(self._handles))

    def handles(self) -> tuple[GraphHandle, ...]:
        """Current handles, sorted by name."""
        with self._lock:
            return tuple(
                handle for _, handle in sorted(self._handles.items())
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._handles)
