"""Sampled per-query tracing for the service: sampler + trace store.

The service traces a configurable fraction of queries (plus any query
that asks explicitly).  Sampling is *deterministic counter-based* rather
than random: query ``n`` is sampled exactly when ``floor(n * rate)``
exceeds ``floor((n - 1) * rate)``, which yields precisely ``rate`` of
queries in the long run, spreads samples evenly, and makes tests
reproducible without seeding.

Exported traces are retained in a bounded LRU :class:`TraceStore` keyed
by trace id, served back through the ``trace`` JSONL op.  Storing the
*exported* payloads (Chrome JSON + text tree) rather than live tracers
keeps retained traces immutable and bounded in size.
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict
from typing import Any

from ..obs import assert_lock_held

__all__ = ["TraceSampler", "TraceStore"]


class TraceSampler:
    """Deterministic counter-based sampler (see module docstring).

    ``rate`` is the sampled fraction in ``[0.0, 1.0]``; 0 never samples,
    1 always does.  Thread-safe: the counter increment is the only shared
    state.
    """

    def __init__(self, rate: float) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(
                f"trace sample rate must be within [0, 1], not {rate}"
            )
        self.rate = rate
        self._seen = 0
        self._lock = threading.Lock()

    def should_sample(self) -> bool:
        """Advance the query counter and decide for this query."""
        with self._lock:
            self._seen += 1
            n = self._seen
        if self.rate <= 0.0:
            return False
        if self.rate >= 1.0:
            return True
        return math.floor(n * self.rate) > math.floor((n - 1) * self.rate)


class TraceStore:
    """Thread-safe bounded LRU of exported trace payloads by trace id."""

    def __init__(self, capacity: int = 32) -> None:
        if capacity < 1:
            raise ValueError(
                f"trace store capacity must be >= 1, not {capacity}"
            )
        self.capacity = capacity
        self._entries: OrderedDict[str, dict[str, Any]] = OrderedDict()
        self._counter = 0
        self._lock = threading.Lock()

    def next_trace_id(self) -> str:
        """A fresh process-unique trace id (monotonic, human-sortable)."""
        with self._lock:
            self._counter += 1
            return f"trace-{self._counter:06d}"

    def put(self, trace_id: str, payload: dict[str, Any]) -> None:
        """Retain *payload* under *trace_id*, evicting the LRU entry."""
        with self._lock:
            self._entries[trace_id] = payload
            self._entries.move_to_end(trace_id)
            self._trim_locked()

    def _trim_locked(self) -> None:
        """Evict LRU entries past capacity; caller must hold ``_lock``."""
        assert_lock_held(self._lock, "TraceStore._lock")
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def get(self, trace_id: str) -> dict[str, Any] | None:
        """The stored payload, refreshed as most recently used."""
        with self._lock:
            payload = self._entries.get(trace_id)
            if payload is not None:
                self._entries.move_to_end(trace_id)
            return payload

    def ids(self) -> list[str]:
        """Retained trace ids, least recently used first."""
        with self._lock:
            return list(self._entries)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
