"""Metrics for the query service: counters and latency histograms.

A deliberately small, dependency-free registry in the spirit of a
Prometheus client: named monotonic counters plus fixed-bucket histograms,
all behind one lock, with a :meth:`MetricsRegistry.snapshot` that returns
plain data suitable for JSON responses.  The service records cache
hits/misses, queue wait, prepare-vs-match time and per-algorithm query
counts here; nothing in this module knows about matching.
"""

from __future__ import annotations

import bisect
import threading
import time
from collections.abc import Callable, Sequence

from ..obs import assert_lock_held

__all__ = ["DEFAULT_LATENCY_BUCKETS", "Histogram", "MetricsRegistry"]

#: Upper bucket bounds (seconds) spanning sub-millisecond cache hits up to
#: multi-second deadline-bounded searches.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
)


class Histogram:
    """Fixed-bucket histogram of non-negative observations.

    Buckets are *upper bounds*; an observation lands in the first bucket
    whose bound is >= the value, or in the implicit ``+inf`` overflow
    bucket.  Not thread-safe on its own — the registry serialises access.
    """

    __slots__ = ("bounds", "bucket_counts", "count", "total", "min", "max")

    def __init__(
        self, bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS
    ) -> None:
        self.bounds: tuple[float, ...] = tuple(sorted(bounds))
        self.bucket_counts: list[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def snapshot(self) -> dict[str, object]:
        """Plain-data view: count/sum/min/max/mean plus bucket counts."""
        buckets: dict[str, int] = {}
        for bound, n in zip(self.bounds, self.bucket_counts):
            if n:
                buckets[f"le_{bound:g}"] = n
        if self.bucket_counts[-1]:
            buckets["inf"] = self.bucket_counts[-1]
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.total / self.count if self.count else None,
            "buckets": buckets,
        }


class MetricsRegistry:
    """Thread-safe registry of named counters and histograms.

    Metric names are created on first use; dotted suffixes are the
    conventional way to attach a label (``"queries_total.tcsm-eve"``).
    """

    def __init__(
        self,
        clock: Callable[[], float] = time.monotonic,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        self._clock = clock
        self._buckets = tuple(buckets)
        self._started = clock()
        self._counters: dict[str, int] = {}
        self._histograms: dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def inc(self, name: str, by: int = 1) -> None:
        """Increment counter *name* (created at zero on first use)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + by

    def observe(self, name: str, value: float) -> None:
        """Record *value* into histogram *name* (created on first use)."""
        with self._lock:
            self._histogram_locked(name).observe(value)

    def _histogram_locked(self, name: str) -> Histogram:
        """Histogram *name*, created on first use; caller holds ``_lock``.

        Histograms are not thread-safe on their own, so both the lookup
        and every ``observe`` must stay under the registry lock — the
        sanitizer assertion turns a future unlocked caller into an error.
        """
        assert_lock_held(self._lock, "MetricsRegistry._lock")
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = Histogram(self._buckets)
            self._histograms[name] = histogram
        return histogram

    def counter(self, name: str) -> int:
        """Current value of counter *name* (0 when never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    def uptime_seconds(self) -> float:
        """Seconds since the registry was created."""
        return self._clock() - self._started

    def rate(self, name: str) -> float:
        """Counter *name* per second of uptime (a crude QPS gauge)."""
        uptime = self.uptime_seconds()
        if uptime <= 0.0:
            return 0.0
        return self.counter(name) / uptime

    def snapshot(self) -> dict[str, object]:
        """One consistent plain-data view of every metric."""
        with self._lock:
            uptime = self._clock() - self._started
            counters = dict(sorted(self._counters.items()))
            histograms = {
                name: histogram.snapshot()
                for name, histogram in sorted(self._histograms.items())
            }
        return {
            "uptime_seconds": uptime,
            "counters": counters,
            "histograms": histograms,
        }
