"""Query-serving subsystem: registries, caches, parallel execution, metrics.

The one-shot engine in :mod:`repro.core` pays graph load and ``prepare()``
on every call; this package amortizes both across a query stream — the
deployment shape of real temporal-matching systems.  Entry points:

* :class:`TCSMService` — the embeddable façade (see docs/SERVICE.md).
* :func:`serve_stdio` — a JSONL request/response loop over text streams,
  exposed on the command line as ``repro serve`` / ``repro submit``.

The building blocks (graph registry, plan/result caches, partitioned
executor, metrics registry) are public for direct embedding and tests.
"""

from .cache import ResultCache, ResultKey
from .executor import ExecutionOutcome, ProcessSpec, QueryExecutor
from .metrics import DEFAULT_LATENCY_BUCKETS, Histogram, MetricsRegistry
from .plans import (
    CachedPlan,
    PlanCache,
    PlanKey,
    match_options_fingerprint,
    options_fingerprint,
    pattern_fingerprint,
)
from .async_front import AsyncFrontConfig, AsyncFrontDoor, serve_stdio_async
from .registry import GraphHandle, GraphRegistry
from .server import ServiceConfig, ServiceResult, TCSMService, serve_stdio
from .tracing import TraceSampler, TraceStore

__all__ = [
    "AsyncFrontConfig",
    "AsyncFrontDoor",
    "CachedPlan",
    "DEFAULT_LATENCY_BUCKETS",
    "ExecutionOutcome",
    "GraphHandle",
    "GraphRegistry",
    "Histogram",
    "MetricsRegistry",
    "PlanCache",
    "PlanKey",
    "ProcessSpec",
    "QueryExecutor",
    "ResultCache",
    "ResultKey",
    "ServiceConfig",
    "ServiceResult",
    "TCSMService",
    "TraceSampler",
    "TraceStore",
    "match_options_fingerprint",
    "options_fingerprint",
    "pattern_fingerprint",
    "serve_stdio",
    "serve_stdio_async",
]
