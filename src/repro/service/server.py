"""The TCSM query service: embeddable façade plus a JSONL stdio server.

:class:`TCSMService` ties the subsystem together — graph registry, plan
cache, result cache, partitioned executor, metrics, admission control —
behind one ``query()`` call.  A query flows::

    admit -> resolve graph -> result cache? -> plan cache (prepare once)
          -> partitioned execution under a deadline -> tag + cache + meter

Failures degrade gracefully: deadline expiry returns the partial prefix
tagged ``timed_out``, a match limit tags ``truncated``, overload is a
*rejection* (never an exception escaping the server loop), and library
errors become structured error responses.

:func:`serve_stdio` speaks newline-delimited JSON over a pair of text
streams, which makes the service scriptable from a shell pipe and
trivially testable — see ``repro serve`` / ``repro submit`` in the CLI.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field, replace
from typing import IO, Any

from ..core import (
    CountEstimate,
    Match,
    MatchOptions,
    SearchStats,
    create_matcher,
    find_matches,
    supports_codegen,
)
from ..core.engine import prepare_matcher
from ..errors import (
    AdmissionError,
    ReproError,
    StreamingError,
    UnknownSubscriptionError,
)
from ..graphs import (
    QueryGraph,
    SegmentedGraph,
    TemporalConstraints,
    TemporalGraph,
    load_pattern,
    load_snap_temporal,
    pattern_from_dict,
)
from ..obs import Tracer, render_span_tree, to_chrome_trace
from ..streaming import (
    Emission,
    IngestReport,
    StreamingEngine,
    Subscription,
    SubscriptionOptions,
)
from .cache import ResultCache, ResultKey
from .executor import ProcessSpec, QueryExecutor
from .metrics import MetricsRegistry
from .plans import (
    CachedPlan,
    PlanCache,
    PlanKey,
    match_options_fingerprint,
    options_fingerprint,
    pattern_fingerprint,
)
from .registry import GraphHandle, GraphRegistry
from .tracing import TraceSampler, TraceStore

__all__ = ["ServiceConfig", "ServiceResult", "TCSMService", "serve_stdio"]

#: Sentinel distinguishing "no budget given" from an explicit ``None``.
_UNSET_BUDGET = object()


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs for :class:`TCSMService` (see docs/SERVICE.md)."""

    max_workers: int = 4
    pool: str = "thread"
    plan_cache_size: int = 64
    result_cache_size: int = 256
    max_inflight: int = 8
    default_time_budget: float | None = 30.0
    default_algorithm: str = "tcsm-eve"
    #: Fraction of queries traced ([0, 1], deterministic counter-based
    #: sampling); a request's ``trace: true`` forces tracing regardless.
    trace_sample_rate: float = 0.0
    trace_store_size: int = 32
    #: Export registered snapshots into shared memory so process-pool
    #: workers attach to one graph image by name instead of each
    #: deserialising a pickled CSR copy.  Only takes effect with
    #: ``pool="process"`` (thread workers already share the snapshot).
    share_snapshots: bool = True
    #: Hard cap on one JSONL request line; longer lines get a structured
    #: error response instead of being parsed (protocol back-pressure
    #: against unbounded payloads).
    max_request_bytes: int = 1_000_000


@dataclass(frozen=True)
class ServiceResult:
    """Outcome of one service query, with provenance and timings.

    Truncation is reported by cause: ``truncated_by_deadline`` (the
    wall-clock budget expired; alias ``timed_out``) and
    ``truncated_by_limit`` (the match limit shaped the returned set) are
    distinct fields, both tagged in JSONL responses.  ``truncated`` is
    the legacy alias for limit truncation.  ``ordered`` marks an
    ``order_by="earliest"`` answer; ``estimate`` carries the
    ``mode="estimate"`` count + confidence interval (``None``
    otherwise).
    """

    graph: str
    graph_version: int
    algorithm: str
    matches: tuple[Match, ...]
    match_count: int
    timed_out: bool
    truncated: bool
    plan_cache: str
    result_cache: str
    build_seconds: float
    queue_seconds: float
    match_seconds: float
    partitions: int
    truncated_by_limit: bool = False
    truncated_by_deadline: bool = False
    ordered: bool = False
    #: True when the answer was produced by a specialised compiled
    #: enumerator (``codegen``) rather than the interpreted matcher.
    codegen: bool = False
    estimate: CountEstimate | None = None
    stats: SearchStats = field(repr=False, default_factory=SearchStats)
    trace_id: str | None = None
    #: Per-worker fan-out probes from process-pool runs (empty for
    #: thread runs): CSR compiles each worker triggered (0 under
    #: snapshot shipping) and CSR bytes each worker's graph owns
    #: privately (0 when attached to a shared-memory segment).
    worker_compiles: tuple[int, ...] = ()
    worker_graph_bytes: tuple[int, ...] = ()

    def to_dict(self, include_matches: bool = True) -> dict[str, Any]:
        """Plain-data view used for JSONL responses."""
        payload: dict[str, Any] = {
            "graph": self.graph,
            "graph_version": self.graph_version,
            "algorithm": self.algorithm,
            "match_count": self.match_count,
            "timed_out": self.timed_out,
            "truncated": self.truncated,
            "truncated_by_limit": self.truncated_by_limit,
            "truncated_by_deadline": self.truncated_by_deadline,
            "ordered": self.ordered,
            "codegen": self.codegen,
            "plan_cache": self.plan_cache,
            "result_cache": self.result_cache,
            "build_seconds": self.build_seconds,
            "queue_seconds": self.queue_seconds,
            "match_seconds": self.match_seconds,
            "partitions": self.partitions,
        }
        if self.estimate is not None:
            payload["estimate"] = self.estimate.to_dict()
        if self.trace_id is not None:
            payload["trace_id"] = self.trace_id
        if self.worker_compiles:
            payload["worker_compiles"] = list(self.worker_compiles)
            payload["worker_graph_bytes"] = list(self.worker_graph_bytes)
        if include_matches:
            payload["matches"] = [
                {
                    "vertices": list(match.vertex_map),
                    "edges": [list(edge) for edge in match.edge_map],
                }
                for match in self.matches
            ]
        return payload


class TCSMService:
    """A long-lived, concurrent TCSM query service over registered graphs."""

    def __init__(
        self,
        config: ServiceConfig | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.metrics = metrics or MetricsRegistry()
        self.graphs = GraphRegistry(
            share_snapshots=(
                self.config.pool == "process" and self.config.share_snapshots
            )
        )
        self.plans = PlanCache(capacity=self.config.plan_cache_size)
        self.results: ResultCache[ServiceResult] = ResultCache(
            capacity=self.config.result_cache_size
        )
        self.executor = QueryExecutor(
            max_workers=self.config.max_workers, pool=self.config.pool
        )
        self.traces = TraceStore(capacity=self.config.trace_store_size)
        self._sampler = TraceSampler(self.config.trace_sample_rate)
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        #: Streaming state: one engine per graph name (created lazily on
        #: first subscribe) plus the subscription-id -> graph-name index
        #: that lets ``poll``/``unsubscribe`` address by id alone.
        self._streams: dict[str, StreamingEngine] = {}
        self._stream_subs: dict[str, str] = {}
        self._stream_sub_seq = 0
        self._streams_lock = threading.Lock()

    # ------------------------------------------------------------------
    # graph lifecycle
    # ------------------------------------------------------------------
    def load_graph(self, name: str, graph: TemporalGraph) -> GraphHandle:
        """Register (or replace) *name*, invalidating caches of old versions."""
        handle = self.graphs.register(name, graph)
        self.plans.invalidate_graph(name, keep_version=handle.version)
        self.results.invalidate_graph(name, keep_version=handle.version)
        self.metrics.inc("graphs_loaded")
        return handle

    def load_graph_file(
        self, name: str, path: str, num_labels: int = 8, seed: int = 0
    ) -> GraphHandle:
        """Load a SNAP temporal edge list from *path* and register it."""
        graph = load_snap_temporal(path, num_labels=num_labels, seed=seed)
        return self.load_graph(name, graph)

    def drop_graph(self, name: str) -> None:
        """Unregister *name* and evict everything cached against it.

        Tears down the graph's streaming engine too: its subscriptions
        (and their undelivered emissions) are discarded.
        """
        self.graphs.drop(name)
        self.plans.invalidate_graph(name)
        self.results.invalidate_graph(name)
        with self._streams_lock:
            if self._streams.pop(name, None) is not None:
                for sub_id, owner in list(self._stream_subs.items()):
                    if owner == name:
                        del self._stream_subs[sub_id]

    # ------------------------------------------------------------------
    # streaming: standing subscriptions over a live edge stream
    # ------------------------------------------------------------------
    def _stream_engine(self, graph_name: str) -> StreamingEngine:
        """Get or lazily create *graph_name*'s streaming engine.

        The engine's segmented graph is seeded zero-copy from the
        registered handle's frozen snapshot (its CSR arrays are shared by
        reference), so opening a stream over an already-served graph
        compiles nothing.
        """
        with self._streams_lock:
            engine = self._streams.get(graph_name)
        if engine is not None:
            return engine
        handle = self.graphs.get(graph_name)
        with self._streams_lock:
            engine = self._streams.get(graph_name)
            if engine is None:
                engine = StreamingEngine(
                    SegmentedGraph.from_snapshot(handle.snapshot)
                )
                self._streams[graph_name] = engine
            return engine

    def _engine_for_subscription(self, sub_id: str) -> StreamingEngine:
        with self._streams_lock:
            graph_name = self._stream_subs.get(sub_id)
            engine = (
                self._streams.get(graph_name)
                if graph_name is not None
                else None
            )
        if engine is None:
            raise UnknownSubscriptionError(f"unknown subscription {sub_id!r}")
        return engine

    def stream_subscribe(
        self,
        graph_name: str,
        query: QueryGraph,
        constraints: TemporalConstraints,
        options: SubscriptionOptions | None = None,
        sub_id: str | None = None,
    ) -> Subscription:
        """Register a standing pattern against *graph_name*'s stream.

        Subscription ids are unique service-wide (auto-assigned ``s1``,
        ``s2``, ... unless *sub_id* is given), so ``poll`` and
        ``unsubscribe`` address by id alone.
        """
        with self._streams_lock:
            if sub_id is None:
                self._stream_sub_seq += 1
                sub_id = f"s{self._stream_sub_seq}"
            if sub_id in self._stream_subs:
                raise StreamingError(
                    f"subscription id {sub_id!r} already registered"
                )
            self._stream_subs[sub_id] = graph_name
        try:
            engine = self._stream_engine(graph_name)
            sub = engine.subscribe(query, constraints, options, sub_id=sub_id)
        except BaseException:
            with self._streams_lock:
                self._stream_subs.pop(sub_id, None)
            raise
        self.metrics.inc("subscriptions_total")
        return sub

    def stream_ingest(
        self,
        graph_name: str,
        edges: list[Any],
        trace: bool = False,
    ) -> tuple[IngestReport, str | None]:
        """Append *edges* to the graph's stream and meter the outcome.

        ``trace=True`` routes this call's delta-search and segment-merge
        spans through a dedicated tracer, retained in the trace store
        like a traced query.
        """
        engine = self._stream_engine(graph_name)
        tracer = Tracer() if trace else None
        report = engine.ingest(edges, tracer=tracer)
        trace_id: str | None = None
        if tracer is not None:
            handle = self.graphs.get(graph_name)
            trace_id = self._retain_trace(tracer, handle, "streaming", "-")
        self.metrics.inc("ingest_edges_total", report.new_edges)
        self.metrics.inc("ingest_duplicates_total", report.duplicates)
        self.metrics.inc("stream_matches_total", report.emitted)
        self.metrics.inc("segment_flushes_total", report.flushes)
        self.metrics.inc("segment_compactions_total", report.compactions)
        self.metrics.observe("ingest_seconds", report.seconds)
        return report, trace_id

    def stream_poll(
        self, sub_id: str, max_items: int | None = None
    ) -> list[Emission]:
        """Drain up to *max_items* undelivered emissions for *sub_id*."""
        engine = self._engine_for_subscription(sub_id)
        emissions = engine.poll(sub_id, max_items)
        for emission in emissions:
            self.metrics.observe(
                "emission_latency_seconds", emission.latency_seconds
            )
        return emissions

    def stream_unsubscribe(self, sub_id: str) -> Subscription:
        """Deregister *sub_id*; returns its final state for the response."""
        engine = self._engine_for_subscription(sub_id)
        sub = engine.unsubscribe(sub_id)
        with self._streams_lock:
            self._stream_subs.pop(sub_id, None)
        self.metrics.inc("subscriptions_closed")
        return sub

    # ------------------------------------------------------------------
    # admission control
    # ------------------------------------------------------------------
    def _admit(self) -> None:
        with self._inflight_lock:
            if self._inflight >= self.config.max_inflight:
                self.metrics.inc("queries_rejected")
                raise AdmissionError(
                    f"service at max in-flight queries "
                    f"({self.config.max_inflight}); retry later"
                )
            self._inflight += 1

    def _release(self) -> None:
        with self._inflight_lock:
            self._inflight -= 1

    @property
    def inflight(self) -> int:
        """Number of queries currently admitted."""
        with self._inflight_lock:
            return self._inflight

    # ------------------------------------------------------------------
    # the query path
    # ------------------------------------------------------------------
    def query(
        self,
        graph_name: str,
        query: QueryGraph,
        constraints: TemporalConstraints,
        algorithm: str | None = None,
        limit: int | None = None,
        time_budget: Any = _UNSET_BUDGET,
        workers: int | None = None,
        collect_matches: bool = True,
        use_result_cache: bool = True,
        options: dict[str, Any] | None = None,
        plan: str | None = None,
        partition_strategy: str | None = None,
        order_by: str | None = None,
        mode: str | None = None,
        codegen: bool = False,
        trace: bool = False,
    ) -> ServiceResult:
        """Execute one query end to end through the serving stack.

        ``time_budget`` defaults to the config's per-query budget; pass
        ``None`` explicitly for an unbounded run.  On deadline expiry the
        partial prefix comes back tagged ``timed_out`` (and is excluded
        from the result cache); a match ``limit`` tags ``truncated``
        (and, precisely, ``truncated_by_limit``).

        ``order_by="earliest"`` returns the exact global top-``limit``
        matches ordered by latest edge timestamp (ties broken by the full
        timestamp/vertex/edge vector), merged across partitions; without
        a ``limit`` it returns the full set, sorted.  ``mode`` selects
        the answer shape: ``"enumerate"`` (default), ``"count"`` (no
        match payloads) or ``"estimate"`` (HT sampling estimate with a
        95% CI — never enumerates, never touches the plan or result
        cache; tune with ``options={"probes": ..., "seed": ...}``).  All
        three, plus ``limit``, are part of the result-cache key, so a
        cached full enumeration can never answer a ``limit=k`` query and
        estimates never pollute exact entries.

        ``plan`` selects the matching-order planner (``"paper"`` or
        ``"cost"``); it is folded into the matcher options, so plan and
        result caches key distinct plans separately.

        ``partition_strategy`` chooses how fan-out carves the root
        candidates (``"stride"``, ``"range"`` or ``"label"``; see
        :mod:`repro.core.partition`).  Any strategy returns the same
        match multiset, but with a ``limit`` the enumeration order
        decides *which* matches come back, so the result cache keys on
        it.

        ``codegen=True`` asks for a per-plan *compiled* enumerator
        (:mod:`repro.core.codegen`): the plan cache compiles a
        specialised enumeration function once per :class:`PlanKey` and
        every later hit reuses it.  The flag is folded into both cache
        keys (via the matcher options hash and
        :meth:`MatchOptions.canonical_hash`), so compiled and
        interpreted plans never alias; on algorithms without codegen
        support (the baselines) the flag is ignored.  The result echoes
        the *effective* setting in its ``codegen`` field.

        ``trace=True`` forces tracing for this query; otherwise the
        configured sample rate decides.  Traced queries bypass the result
        cache (both read and write) so the trace reflects a real
        execution, and come back with a ``trace_id`` resolvable through
        the trace store / ``trace`` op.
        """
        algo = (algorithm or self.config.default_algorithm).lower()
        budget: float | None = (
            self.config.default_time_budget
            if time_budget is _UNSET_BUDGET
            else time_budget
        )
        options = dict(options) if options else {}
        if plan is not None:
            options["plan"] = plan
        # Normalise the codegen request (kwarg or options entry) against
        # algorithm support: baselines silently run interpreted.
        wants_codegen = bool(codegen or options.pop("codegen", False))
        use_codegen = wants_codegen and supports_codegen(algo)
        if use_codegen:
            options["codegen"] = True
        strategy = partition_strategy or "stride"
        order = (order_by or "any").lower()
        answer_mode = (mode or "enumerate").lower()
        if answer_mode == "count":
            collect_matches = False
        self._admit()
        try:
            handle = self.graphs.get(graph_name)
            traced = trace or self._sampler.should_sample()
            tracer = Tracer() if traced else None
            pattern_hash = pattern_fingerprint(query, constraints)
            if answer_mode == "estimate":
                # Estimation short-circuits the whole enumeration stack:
                # no plan, no fan-out, and — critically — no result-cache
                # read or write, so approximate counts never masquerade
                # as exact entries.
                result = self._estimate(
                    handle,
                    query,
                    constraints,
                    options,
                    tracer,
                    pattern_hash,
                    budget,
                )
                self._meter(result.algorithm, result, result_hit=False)
                return result
            options_hash = options_fingerprint(options)
            match_opts = MatchOptions(
                limit=limit,
                collect_matches=collect_matches,
                partition_strategy=strategy,
                order_by=order,
                mode=answer_mode,
                codegen=use_codegen,
            )
            result_key = ResultKey(
                graph_name=handle.name,
                graph_version=handle.version,
                graph_fingerprint=handle.snapshot.fingerprint,
                pattern=pattern_hash,
                algorithm=algo,
                options=options_hash,
                match_options=match_options_fingerprint(match_opts),
            )
            if use_result_cache and not traced:
                cached = self.results.get(result_key)
                if cached is not None:
                    self._meter(algo, cached, result_hit=True)
                    return replace(
                        cached, result_cache="hit", queue_seconds=0.0
                    )
                self.metrics.inc("result_cache_misses")

            plan_key = PlanKey(
                graph_name=handle.name,
                graph_version=handle.version,
                graph_fingerprint=handle.snapshot.fingerprint,
                pattern=pattern_hash,
                algorithm=algo,
                options=options_hash,
            )

            def build_plan() -> CachedPlan:
                # Plans are prepared against the handle's frozen CSR
                # snapshot — the registry compiled it exactly once at
                # registration, so prepare() never recompiles here.
                matcher = create_matcher(
                    algo, query, constraints, handle.snapshot, **options
                )
                build_start = time.perf_counter()
                if tracer is not None:
                    with tracer.span("prepare", algorithm=matcher.name):
                        prepare_matcher(matcher, tracer)
                else:
                    matcher.prepare()
                build_seconds = time.perf_counter() - build_start
                self.metrics.observe("prepare_seconds", build_seconds)
                return CachedPlan(
                    key=plan_key, matcher=matcher, build_seconds=build_seconds
                )

            plan, plan_hit = self.plans.get_or_build(plan_key, build_plan)
            self.metrics.inc(
                "plan_cache_hits" if plan_hit else "plan_cache_misses"
            )

            deadline = (
                time.monotonic() + budget if budget is not None else None
            )
            if self.config.pool == "process":
                # Workers receive the shared-memory segment handle when
                # the registry exported one (it pickles as the segment
                # *name*, so workers attach to the single graph image);
                # otherwise the compact immutable snapshot — never the
                # mutable dict-backed builder graph.  The addref/close
                # pair keeps a just-replaced segment mapped until this
                # in-flight fan-out completes.
                shared = handle.shared
                if shared is not None:
                    shared.addref()
                try:
                    spec = ProcessSpec(
                        query=query,
                        constraints=constraints,
                        graph=shared if shared is not None else handle.snapshot,
                        algorithm=algo,
                        limit=limit,
                        time_budget=budget,
                        collect_matches=collect_matches,
                        partition_strategy=strategy,
                        order_by=order,
                        mode=answer_mode,
                        options=options,
                    )
                    outcome = self.executor.run_process(spec, workers=workers)
                finally:
                    if shared is not None:
                        shared.close()
            else:
                # Process-pool runs stay untraced (spans cannot cross the
                # fork boundary); the thread pool records partition spans
                # on the worker threads.
                if tracer is not None:
                    with tracer.span("enumerate", algorithm=algo) as span:
                        outcome = self.executor.run_matcher(
                            plan.matcher,
                            limit=limit,
                            deadline=deadline,
                            workers=workers,
                            collect_matches=collect_matches,
                            partition_strategy=strategy,
                            order_by=order,
                            mode=answer_mode,
                            tracer=tracer,
                        )
                        span.annotate(
                            matches=outcome.stats.matches,
                            partitions=outcome.partitions,
                        )
                else:
                    outcome = self.executor.run_matcher(
                        plan.matcher,
                        limit=limit,
                        deadline=deadline,
                        workers=workers,
                        collect_matches=collect_matches,
                        partition_strategy=strategy,
                        order_by=order,
                        mode=answer_mode,
                    )
                # Merge prepare-time filter counters exactly once per
                # query (not per partition, which would multiply them).
                prepare_stats = getattr(plan.matcher, "prepare_stats", None)
                if isinstance(prepare_stats, SearchStats):
                    outcome.stats.merge(prepare_stats)

            trace_id: str | None = None
            if tracer is not None:
                trace_id = self._retain_trace(
                    tracer, handle, algo, pattern_hash
                )
            timed_out = outcome.stats.deadline_hit
            truncated_by_limit = outcome.truncated_by_limit or (
                outcome.stats.budget_exhausted and not timed_out
            )
            result = ServiceResult(
                graph=handle.name,
                graph_version=handle.version,
                algorithm=algo,
                matches=outcome.matches,
                match_count=(
                    len(outcome.matches)
                    if collect_matches
                    else outcome.stats.matches
                ),
                timed_out=timed_out,
                truncated=truncated_by_limit,
                truncated_by_limit=truncated_by_limit,
                truncated_by_deadline=timed_out,
                ordered=outcome.ordered,
                codegen=use_codegen,
                plan_cache="hit" if plan_hit else "miss",
                result_cache="miss" if use_result_cache else "bypass",
                build_seconds=0.0 if plan_hit else plan.build_seconds,
                queue_seconds=outcome.queue_seconds,
                match_seconds=outcome.match_seconds,
                partitions=outcome.partitions,
                stats=outcome.stats,
                trace_id=trace_id,
                worker_compiles=outcome.worker_compiles,
                worker_graph_bytes=outcome.worker_graph_bytes,
            )
            if use_result_cache and not timed_out and not traced:
                self.results.put(result_key, result)
            self._meter(algo, result, result_hit=False)
            return result
        finally:
            self._release()

    def _estimate(
        self,
        handle: GraphHandle,
        query: QueryGraph,
        constraints: TemporalConstraints,
        options: dict[str, Any],
        tracer: Tracer | None,
        pattern_hash: str,
        budget: float | None,
    ) -> ServiceResult:
        """Answer a ``mode="estimate"`` query via HT sampling.

        Runs :func:`find_matches` directly against the handle's frozen
        snapshot — no plan cache (there is no plan), no executor fan-out,
        and the result is never written to the exact-result cache.  The
        probe count bounds the work; *budget* rides along for parity
        with the enumeration path.
        """
        opts = dict(options)
        opts.pop("plan", None)
        probes = int(opts.pop("probes", 200))
        seed = int(opts.pop("seed", 0))
        engine_result = find_matches(  # reprolint: disable=R009 -- budget rides in MatchOptions(time_budget=...)
            query,
            constraints,
            handle.snapshot,
            options=MatchOptions(mode="estimate", time_budget=budget),
            tracer=tracer,
            probes=probes,
            seed=seed,
        )
        trace_id: str | None = None
        if tracer is not None:
            trace_id = self._retain_trace(
                tracer, handle, engine_result.algorithm, pattern_hash
            )
        return ServiceResult(
            graph=handle.name,
            graph_version=handle.version,
            algorithm=engine_result.algorithm,
            matches=(),
            match_count=engine_result.num_matches,
            timed_out=False,
            truncated=False,
            plan_cache="bypass",
            result_cache="bypass",
            build_seconds=engine_result.build_seconds,
            queue_seconds=0.0,
            match_seconds=engine_result.match_seconds,
            partitions=1,
            estimate=engine_result.estimate,
            stats=engine_result.stats,
            trace_id=trace_id,
        )

    def _retain_trace(
        self,
        tracer: Tracer,
        handle: GraphHandle,
        algorithm: str,
        pattern_hash: str,
    ) -> str:
        """Export *tracer*, store the payload, and meter span durations."""
        trace_id = self.traces.next_trace_id()
        self.traces.put(
            trace_id,
            {
                "trace_id": trace_id,
                "graph": handle.name,
                "graph_version": handle.version,
                "algorithm": algorithm,
                "pattern": pattern_hash,
                "chrome": to_chrome_trace(tracer),
                "tree": render_span_tree(tracer),
            },
        )
        self.metrics.inc("queries_traced")
        for span in tracer.spans():
            category = span.name.split(":", 1)[0]
            self.metrics.observe(f"span_seconds.{category}", span.duration)
        return trace_id

    def _meter(
        self, algorithm: str, result: ServiceResult, result_hit: bool
    ) -> None:
        """Record the per-query counters and latency observations."""
        self.metrics.inc("queries_total")
        self.metrics.inc(f"queries_total.{algorithm}")
        if result_hit:
            self.metrics.inc("result_cache_hits")
            return
        if result.timed_out:
            self.metrics.inc("queries_timed_out")
        if result.truncated_by_limit or result.truncated:
            self.metrics.inc("queries_truncated")
        if result.estimate is not None:
            self.metrics.inc("queries_estimated")
        self.metrics.observe("queue_seconds", result.queue_seconds)
        self.metrics.observe("match_seconds", result.match_seconds)
        self.metrics.observe(
            "total_seconds",
            result.build_seconds + result.queue_seconds + result.match_seconds,
        )
        self.metrics.inc(
            "timestamps_expanded", result.stats.timestamps_expanded
        )
        self.metrics.inc(
            "timestamps_skipped", result.stats.timestamps_skipped
        )
        for name, bucket in result.stats.filters.items():
            self.metrics.inc(f"filter_considered.{name}", bucket.considered)
            self.metrics.inc(f"filter_pruned.{name}", bucket.pruned)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def metrics_snapshot(self) -> dict[str, Any]:
        """Metrics plus cache/registry occupancy and per-algorithm QPS."""
        snapshot = self.metrics.snapshot()
        counters = snapshot["counters"]
        assert isinstance(counters, dict)
        uptime = self.metrics.uptime_seconds()
        qps = {
            name.split(".", 1)[1]: (count / uptime if uptime > 0 else 0.0)
            for name, count in counters.items()
            if name.startswith("queries_total.")
        }
        snapshot["qps"] = qps
        snapshot["graphs"] = [
            handle.describe() for handle in self.graphs.handles()
        ]
        snapshot["plan_cache_entries"] = len(self.plans)
        snapshot["result_cache_entries"] = len(self.results)
        snapshot["trace_store_entries"] = len(self.traces)
        snapshot["inflight"] = self.inflight
        with self._streams_lock:
            streams = sorted(self._streams.items())
        snapshot["streaming"] = {
            name: engine.metrics_snapshot() for name, engine in streams
        }
        return snapshot

    # ------------------------------------------------------------------
    # JSON request dispatch
    # ------------------------------------------------------------------
    def submit(self, request: dict[str, Any]) -> dict[str, Any]:
        """Handle one JSON-level request; never raises.

        Known ops: ``query``, ``load_graph``, ``drop_graph``, ``graphs``,
        ``metrics``, ``trace``, ``ping``, ``shutdown``, plus the
        streaming ops ``subscribe``, ``ingest``, ``unsubscribe`` and
        ``poll`` (see docs/SERVICE.md and docs/STREAMING.md).  Responses
        always carry
        ``status`` (``ok`` / ``error`` / ``rejected``), echo the request
        ``op`` and, when present, its ``id``.
        """
        op = request.get("op", "query")
        base: dict[str, Any] = {"op": op}
        if "id" in request:
            base["id"] = request["id"]
        try:
            payload = self._dispatch(op, request)
        except AdmissionError as exc:
            return {**base, "status": "rejected", "error": str(exc)}
        except ReproError as exc:
            return {**base, "status": "error", "error": str(exc)}
        except (TypeError, ValueError, KeyError) as exc:
            return {
                **base,
                "status": "error",
                "error": f"bad request: {exc!r}",
            }
        return {**base, "status": "ok", **payload}

    def _dispatch(self, op: str, request: dict[str, Any]) -> dict[str, Any]:
        if op == "query":
            return self._handle_query(request)
        if op == "load_graph":
            handle = self.load_graph_file(
                str(request["name"]),
                str(request["path"]),
                num_labels=int(request.get("num_labels", 8)),
                seed=int(request.get("seed", 0)),
            )
            return {"graph": handle.describe()}
        if op == "drop_graph":
            self.drop_graph(str(request["name"]))
            return {}
        if op == "graphs":
            return {
                "graphs": [h.describe() for h in self.graphs.handles()]
            }
        if op == "metrics":
            return {"metrics": self.metrics_snapshot()}
        if op == "trace":
            trace_id = request.get("trace_id")
            if trace_id is None:
                return {"traces": self.traces.ids()}
            payload = self.traces.get(str(trace_id))
            if payload is None:
                raise ValueError(f"unknown trace id {trace_id!r}")
            return {"trace": payload}
        if op == "subscribe":
            return self._handle_subscribe(request)
        if op == "ingest":
            return self._handle_ingest(request)
        if op == "unsubscribe":
            final = self.stream_unsubscribe(str(request["subscription_id"]))
            return {"subscription": final.describe()}
        if op == "poll":
            return self._handle_poll(request)
        if op == "ping":
            return {"pong": True}
        if op == "shutdown":
            return {}
        raise ValueError(f"unknown op {op!r}")

    def _handle_query(self, request: dict[str, Any]) -> dict[str, Any]:
        if "pattern" in request:
            query, constraints = pattern_from_dict(request["pattern"])
        elif "pattern_path" in request:
            query, constraints = load_pattern(str(request["pattern_path"]))
        else:
            raise ValueError("query request needs 'pattern' or 'pattern_path'")
        count_only = bool(request.get("count_only", False))
        budget: Any = request.get("time_budget", _UNSET_BUDGET)
        if budget is not _UNSET_BUDGET and budget is not None:
            budget = float(budget)
        limit = request.get("limit")
        if limit is not None:
            limit = int(limit)
        workers = request.get("workers")
        if workers is not None:
            workers = int(workers)
        plan = request.get("plan")
        if plan is not None:
            plan = str(plan)
        strategy = request.get("partition_strategy")
        if strategy is not None:
            strategy = str(strategy)
        order_by = request.get("order_by")
        if order_by is not None:
            order_by = str(order_by)
        mode = request.get("mode")
        if mode is not None:
            mode = str(mode)
        options: dict[str, Any] | None = None
        if (mode or "enumerate").lower() == "estimate":
            options = {}
            if "probes" in request:
                options["probes"] = int(request["probes"])
            if "seed" in request:
                options["seed"] = int(request["seed"])
        result = self.query(
            str(request["graph"]),
            query,
            constraints,
            algorithm=request.get("algorithm"),
            limit=limit,
            time_budget=budget,
            workers=workers,
            collect_matches=not count_only,
            options=options,
            plan=plan,
            partition_strategy=strategy,
            order_by=order_by,
            mode=mode,
            codegen=bool(request.get("codegen", False)),
            trace=bool(request.get("trace", False)),
        )
        include_matches = (
            not count_only and (mode or "enumerate").lower() == "enumerate"
        )
        return result.to_dict(include_matches=include_matches)

    def _handle_subscribe(self, request: dict[str, Any]) -> dict[str, Any]:
        if "pattern" in request:
            query, constraints = pattern_from_dict(request["pattern"])
        elif "pattern_path" in request:
            query, constraints = load_pattern(str(request["pattern_path"]))
        else:
            raise ValueError(
                "subscribe request needs 'pattern' or 'pattern_path'"
            )
        option_kwargs: dict[str, Any] = {}
        if "queue_capacity" in request:
            option_kwargs["queue_capacity"] = int(request["queue_capacity"])
        if "lateness" in request:
            option_kwargs["lateness"] = int(request["lateness"])
        if "search_budget" in request:
            option_kwargs["search_budget"] = float(request["search_budget"])
        sub_id = request.get("subscription_id")
        sub = self.stream_subscribe(
            str(request["graph"]),
            query,
            constraints,
            SubscriptionOptions(**option_kwargs),
            sub_id=None if sub_id is None else str(sub_id),
        )
        return {"subscription": sub.describe()}

    def _handle_ingest(self, request: dict[str, Any]) -> dict[str, Any]:
        edges = request.get("edges")
        if not isinstance(edges, list):
            raise ValueError("ingest request needs an 'edges' list")
        report, trace_id = self.stream_ingest(
            str(request["graph"]),
            edges,
            trace=bool(request.get("trace", False)),
        )
        payload: dict[str, Any] = {"report": report.to_dict()}
        if trace_id is not None:
            payload["trace_id"] = trace_id
        return payload

    def _handle_poll(self, request: dict[str, Any]) -> dict[str, Any]:
        max_items = request.get("max")
        emissions = self.stream_poll(
            str(request["subscription_id"]),
            None if max_items is None else int(max_items),
        )
        return {
            "emissions": [emission.to_dict() for emission in emissions],
            "count": len(emissions),
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the worker pool down and release shared segments (idempotent)."""
        self.executor.close()
        self.graphs.close()

    def __enter__(self) -> "TCSMService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def serve_stdio(
    service: TCSMService,
    in_stream: IO[str],
    out_stream: IO[str],
) -> int:
    """Serve newline-delimited JSON requests until EOF or ``shutdown``.

    Each input line is one request object; each output line is exactly
    one response object (malformed JSON or an oversized line yields an
    error response, not a crash).  Returns the number of requests
    served.
    """
    served = 0
    max_bytes = service.config.max_request_bytes
    for line in in_stream:
        line = line.strip()
        if not line:
            continue
        try:
            if len(line) > max_bytes:
                raise ValueError(
                    f"request line exceeds max_request_bytes "
                    f"({len(line)} > {max_bytes})"
                )
            request = json.loads(line)
            if not isinstance(request, dict):
                raise ValueError("request must be a JSON object")
        except ValueError as exc:
            response: dict[str, Any] = {
                "status": "error",
                "error": f"invalid request line: {exc}",
            }
            request = None
        else:
            response = service.submit(request)
        out_stream.write(json.dumps(response) + "\n")
        out_stream.flush()
        served += 1
        if request is not None and request.get("op") == "shutdown":
            break
    return served
