"""Partitioned parallel query execution over a bounded worker pool.

One query fans out as ``count`` partitions of the root candidate space
(see :mod:`repro.core.partition`); each worker enumerates its slice with
its own :class:`SearchStats`, and the executor concatenates matches in
partition order and merges the stats.  Because partitions are disjoint
and jointly exhaustive (under every partition strategy), the merged
match multiset is *identical* to a single-worker run — the determinism
guard in the test suite pins this.

Two pool flavours, per the ``concurrent.futures`` split:

``thread`` (default)
    Workers share the prepared matcher from the plan cache (per-run state
    lives inside ``run()``), so fan-out costs nothing extra in memory.
    Best for short queries and for keeping deadline checks responsive.

``process`` (opt-in)
    Workers run :func:`repro.core.find_matches` in forked child
    processes, sidestepping the GIL for CPU-bound searches.  When the
    spec's graph is a :class:`~repro.graphs.SharedSnapshot`, workers
    attach to the one shared-memory graph image by segment *name* —
    zero buffer copies, zero recompiles, K workers ≈ one graph in
    resident memory (each worker reports its compile delta and owned
    CSR bytes on the outcome so tests and benchmarks can assert this).
    On platforms without ``fork`` the spec is shipped to workers via the
    pool initializer; a shared graph still travels as its segment name
    (``SharedSnapshot.__reduce__``).

The spec travels to fork-started workers through module state captured
at fork time.  That state is epoch-stamped and cleared after every
fan-out (and on executor shutdown), so sequential services in one
process can never observe a stale spec — a worker seeing a mismatched
epoch fails loudly instead of silently running the wrong query.
"""

from __future__ import annotations

import itertools
import multiprocessing
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, cast

from ..core import (
    Match,
    MatchOptions,
    Matcher,
    PartitionedMatcher,
    RunContext,
    SearchStats,
    find_matches,
    supports_partition,
)
from ..core.engine import invoke_run_sink
from ..core.sinks import build_sink, match_sort_key
from ..graphs import (
    GraphSnapshot,
    GraphView,
    QueryGraph,
    SharedSnapshot,
    TemporalConstraints,
    snapshot_compile_count,
)
from ..obs import NULL_TRACER, TraceSink

__all__ = ["ExecutionOutcome", "ProcessSpec", "QueryExecutor"]


@dataclass(frozen=True)
class ExecutionOutcome:
    """Merged result of one (possibly partitioned) query execution.

    ``truncated_by_limit`` is set when the match limit shaped the
    returned set (early exit for unordered limits, k-of-N selection for
    exact top-k); ``ordered`` marks an ``order_by="earliest"`` run whose
    merged matches are globally sorted ascending by latest edge time.

    ``worker_compiles`` / ``worker_graph_bytes`` are per-process-worker
    probes (empty for thread runs): how many CSR snapshot compilations
    the partition triggered in its worker, and how many CSR bytes the
    worker's graph instance owns privately (0 when attached to a shared
    segment; -1 when the worker ran against a non-snapshot view).
    """

    matches: tuple[Match, ...]
    stats: SearchStats
    partitions: int
    queue_seconds: float
    match_seconds: float
    truncated_by_limit: bool = False
    ordered: bool = False
    worker_compiles: tuple[int, ...] = ()
    worker_graph_bytes: tuple[int, ...] = ()


@dataclass(frozen=True)
class ProcessSpec:
    """Everything a worker process needs to run one partition.

    ``graph`` may be any in-process :data:`GraphView` *or* a
    :class:`~repro.graphs.SharedSnapshot` handle; the latter pickles as
    its segment name, so spawn-started workers receive a few hundred
    bytes and attach to the one shared graph image
    (:meth:`resolve_graph` performs the attach lazily in the worker).

    ``time_budget`` is the *remaining* per-query budget at fan-out time;
    each worker rebuilds its own absolute deadline from it, so process
    workers honour the same budget protocol as thread workers (modulo
    fork-startup skew).
    """

    query: QueryGraph
    constraints: TemporalConstraints
    graph: GraphView | SharedSnapshot
    algorithm: str
    limit: int | None = None
    time_budget: float | None = None
    collect_matches: bool = True
    partition_strategy: str = "stride"
    order_by: str = "any"
    mode: str = "enumerate"
    options: dict[str, Any] = field(default_factory=dict)

    def resolve_graph(self) -> GraphView:
        """The matcher-facing graph view (attaching shared segments)."""
        if isinstance(self.graph, SharedSnapshot):
            return self.graph.snapshot()
        return self.graph

    def match_options(self, partition: tuple[int, int] | None) -> MatchOptions:
        """The spec's knobs as one :class:`MatchOptions`."""
        return MatchOptions(
            limit=self.limit,
            time_budget=self.time_budget,
            collect_matches=self.collect_matches,
            partition=partition,
            partition_strategy=self.partition_strategy,
            order_by=self.order_by,
            mode=self.mode,
        )


#: Spec inherited by fork-started workers; set under the process lock of
#: the executor that owns the fan-out (one process fan-out at a time)
#: and epoch-stamped so a worker can detect staleness.
_PROCESS_SPEC: ProcessSpec | None = None
_PROCESS_EPOCH = 0

#: Monotonic fan-out counter (parent process only).
_EPOCH_COUNTER = itertools.count(1)


def _set_process_spec(spec: ProcessSpec | None, epoch: int) -> None:
    global _PROCESS_SPEC, _PROCESS_EPOCH
    _PROCESS_SPEC = spec
    _PROCESS_EPOCH = epoch


def _run_partition_in_process(
    index: int, count: int, epoch: int
) -> tuple[tuple[Match, ...], SearchStats, int, int]:
    """Worker-process entry point: run one partition to completion.

    Returns the partition's matches and stats plus two fan-out probes:
    the number of CSR compilations this partition triggered in the
    worker (0 under snapshot/shared-snapshot shipping — the compile-once
    guarantee) and the CSR bytes the worker's graph owns privately
    (0 when attached to a shared-memory segment).
    """
    spec = _PROCESS_SPEC
    if spec is None or epoch != _PROCESS_EPOCH:
        raise RuntimeError(
            f"worker process spec is stale or missing (expected epoch "
            f"{epoch}, have {_PROCESS_EPOCH}); the owning executor must "
            "set the spec for every fan-out"
        )
    compile_floor = snapshot_compile_count()
    graph = spec.resolve_graph()
    result = find_matches(
        spec.query,
        spec.constraints,
        graph,
        algorithm=spec.algorithm,
        options=spec.match_options((index, count)),
        **spec.options,
    )
    compiles = snapshot_compile_count() - compile_floor
    owned = graph.owned_nbytes if isinstance(graph, GraphSnapshot) else -1
    return tuple(result.matches), result.stats, compiles, owned


def _merge_partitions(
    parts: list[tuple[tuple[Match, ...], SearchStats]],
    limit: int | None,
    order_by: str = "any",
) -> tuple[tuple[Match, ...], SearchStats, bool]:
    """Merge partition results into one outcome; returns the truncation flag.

    ``order_by="any"``: partition results are concatenated in partition
    order; with a global *limit* each partition may have returned up to
    *limit* matches, so the merged prefix is re-truncated and the
    truncation flagged.

    ``order_by="earliest"``: each partition carries its own *exact*
    top-k (a per-partition bounded heap — partitions are disjoint and
    jointly exhaustive); the global exact top-k is the k smallest of
    the union under :func:`~repro.core.sinks.match_sort_key`, a
    deterministic multiset identical to the top-k of an unpartitioned
    full enumeration for every partition strategy and worker count.
    """
    matches: list[Match] = []
    stats = SearchStats()
    for part_matches, part_stats in parts:
        matches.extend(part_matches)
        stats.merge(part_stats)
    truncated = stats.limit_hit
    if order_by == "earliest":
        matches.sort(key=match_sort_key)
        if limit is not None and len(matches) > limit:
            del matches[limit:]
        if limit is not None and stats.matches > limit:
            truncated = True
    elif limit is not None and stats.matches >= limit:
        matches = matches[:limit]
        stats.matches = limit
        stats.budget_exhausted = True
        stats.limit_hit = True
        truncated = True
    return tuple(matches), stats, truncated


class QueryExecutor:
    """Bounded worker pool that fans queries out across seed partitions."""

    def __init__(self, max_workers: int = 4, pool: str = "thread") -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, not {max_workers}")
        if pool not in ("thread", "process"):
            raise ValueError(f"pool must be 'thread' or 'process', not {pool!r}")
        self.max_workers = max_workers
        self.pool = pool
        self._threads = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-query"
        )
        self._process_lock = threading.Lock()

    # ------------------------------------------------------------------
    # sizing
    # ------------------------------------------------------------------
    def effective_workers(
        self, matcher: Matcher, workers: int | None = None
    ) -> int:
        """Partition count for *matcher*: requested, capped, and clamped
        to 1 for matchers without partition support (baselines)."""
        requested = self.max_workers if workers is None else workers
        count = max(1, min(requested, self.max_workers))
        if count > 1 and not supports_partition(matcher):
            return 1
        return count

    # ------------------------------------------------------------------
    # thread execution (shared prepared matcher)
    # ------------------------------------------------------------------
    def run_matcher(
        self,
        matcher: Matcher,
        limit: int | None = None,
        deadline: float | None = None,
        workers: int | None = None,
        collect_matches: bool = True,
        partition_strategy: str = "stride",
        order_by: str = "any",
        mode: str = "enumerate",
        tracer: TraceSink | None = None,
    ) -> ExecutionOutcome:
        """Run *matcher* across the thread pool, merging partitions.

        The matcher must already be prepared (the plan cache guarantees
        this); per-run state is local to each run, so all partitions
        share the one matcher object safely.  Every partition enumerates
        into its own sink built from (*mode*, *order_by*, *limit*) — for
        ``order_by="earliest"`` that is a per-partition bounded top-k
        heap whose union merges into the exact global top-k.  When
        *tracer* is given, each fanned-out slice runs inside a
        ``partition:<i>/<n>`` span (recorded on its worker thread).
        """
        tr = tracer if tracer is not None else NULL_TRACER
        enqueued = time.perf_counter()
        count = self.effective_workers(matcher, workers)
        ordered = order_by == "earliest"
        # Exact top-k needs the full (per-partition) enumeration; a
        # context limit would stop pull-based matchers at the first k.
        ctx_limit = None if ordered else limit

        def make_sink() -> Any:
            return build_sink(
                mode=mode,
                order_by=order_by,
                limit=limit,
                collect=collect_matches,
            )

        if count == 1:
            stats = SearchStats()
            ctx = RunContext(
                limit=ctx_limit, deadline=deadline, stats=stats, tracer=tr
            )
            sink = make_sink()
            started = time.perf_counter()
            invoke_run_sink(matcher, ctx, sink)
            finished = time.perf_counter()
            return ExecutionOutcome(
                matches=tuple(sink.finish()),
                stats=stats,
                partitions=1,
                queue_seconds=max(0.0, started - enqueued),
                match_seconds=finished - started,
                truncated_by_limit=stats.limit_hit
                or bool(getattr(sink, "overflowed", False)),
                ordered=ordered,
            )

        runner = cast(PartitionedMatcher, matcher)
        base_ctx = RunContext(
            limit=ctx_limit,
            deadline=deadline,
            partition_strategy=partition_strategy,
            tracer=tr,
        )

        def run_partition(
            index: int,
        ) -> tuple[float, tuple[Match, ...], SearchStats]:
            started = time.perf_counter()
            ctx = base_ctx.with_partition(index, count)
            sink = make_sink()
            with tr.span(
                f"partition:{index}/{count}", algorithm=matcher.name
            ) as span:
                invoke_run_sink(runner, ctx, sink)
                span.annotate(matches=ctx.stats.matches)
            return started, tuple(sink.finish()), ctx.stats

        futures = [
            self._threads.submit(run_partition, index) for index in range(count)
        ]
        results = [future.result() for future in futures]
        finished = time.perf_counter()
        first_start = min(started for started, _, _ in results)
        matches_merged, stats_merged, truncated = _merge_partitions(
            [(part, stats) for _, part, stats in results], limit, order_by
        )
        return ExecutionOutcome(
            matches=matches_merged,
            stats=stats_merged,
            partitions=count,
            queue_seconds=max(0.0, first_start - enqueued),
            match_seconds=finished - first_start,
            truncated_by_limit=truncated,
            ordered=ordered,
        )

    # ------------------------------------------------------------------
    # process execution (opt-in; per-query pool)
    # ------------------------------------------------------------------
    def run_process(
        self, spec: ProcessSpec, workers: int | None = None
    ) -> ExecutionOutcome:
        """Run *spec* across a fresh process pool, merging partitions.

        Serialised per executor: the spec travels to fork-started workers
        through epoch-stamped module state captured at fork time, which
        supports one fan-out at a time.  With one worker the query runs
        inline.
        """
        requested = self.max_workers if workers is None else workers
        count = max(1, min(requested, self.max_workers))
        if count == 1:
            started = time.perf_counter()
            result = find_matches(
                spec.query,
                spec.constraints,
                spec.resolve_graph(),
                algorithm=spec.algorithm,
                options=spec.match_options(None),
                **spec.options,
            )
            finished = time.perf_counter()
            return ExecutionOutcome(
                matches=tuple(result.matches),
                stats=result.stats,
                partitions=1,
                queue_seconds=0.0,
                match_seconds=finished - started,
                truncated_by_limit=result.truncated_by_limit,
                ordered=result.ordered,
            )

        if "fork" in multiprocessing.get_all_start_methods():
            context = multiprocessing.get_context("fork")
        else:  # pragma: no cover - non-POSIX fallback
            context = multiprocessing.get_context()
        forked = context.get_start_method() == "fork"
        with self._process_lock:
            epoch = next(_EPOCH_COUNTER)
            _set_process_spec(spec, epoch)
            try:
                pool = ProcessPoolExecutor(
                    max_workers=count,
                    mp_context=context,
                    initializer=None if forked else _set_process_spec,
                    initargs=() if forked else (spec, epoch),
                )
                started = time.perf_counter()
                with pool:
                    futures = [
                        pool.submit(
                            _run_partition_in_process, index, count, epoch
                        )
                        for index in range(count)
                    ]
                    parts = [future.result() for future in futures]
                finished = time.perf_counter()
            finally:
                _set_process_spec(None, epoch)
        matches_merged, stats_merged, truncated = _merge_partitions(
            [(matches, stats) for matches, stats, _, _ in parts],
            spec.limit,
            spec.order_by,
        )
        return ExecutionOutcome(
            matches=matches_merged,
            stats=stats_merged,
            partitions=count,
            queue_seconds=0.0,
            match_seconds=finished - started,
            truncated_by_limit=truncated,
            ordered=spec.order_by == "earliest",
            worker_compiles=tuple(compiles for _, _, compiles, _ in parts),
            worker_graph_bytes=tuple(owned for _, _, _, owned in parts),
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the pools down and drop any fan-out state (idempotent).

        Clearing the module-level spec here is a belt-and-braces
        companion to the per-fan-out ``finally``: a process that builds
        sequential services must never leak one service's spec (and its
        graph reference) into the next pool's forked workers.
        """
        self._threads.shutdown(wait=True)
        with self._process_lock:
            _set_process_spec(None, next(_EPOCH_COUNTER))

    def __enter__(self) -> "QueryExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
