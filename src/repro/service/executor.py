"""Partitioned parallel query execution over a bounded worker pool.

One query fans out as ``count`` partitions of the root candidate space
(see :mod:`repro.core.partition`); each worker enumerates its slice with
its own :class:`SearchStats`, and the executor concatenates matches in
partition order and merges the stats.  Because partitions are disjoint
and jointly exhaustive, the merged match multiset is *identical* to a
single-worker run — the determinism guard in the test suite pins this.

Two pool flavours, per the ``concurrent.futures`` split:

``thread`` (default)
    Workers share the prepared matcher from the plan cache (per-run state
    lives inside ``run()``), so fan-out costs nothing extra in memory.
    Best for short queries and for keeping deadline checks responsive.

``process`` (opt-in)
    Workers run :func:`repro.core.find_matches` in forked child
    processes, sidestepping the GIL for CPU-bound searches at the price
    of per-query pool startup and result pickling.  On platforms without
    ``fork`` the spec is shipped to workers via the pool initializer.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, cast

from ..core import (
    Match,
    Matcher,
    PartitionedMatcher,
    RunContext,
    SearchStats,
    find_matches,
    supports_partition,
)
from ..core.engine import invoke_run
from ..graphs import GraphView, QueryGraph, TemporalConstraints
from ..obs import NULL_TRACER, TraceSink

__all__ = ["ExecutionOutcome", "ProcessSpec", "QueryExecutor"]


@dataclass(frozen=True)
class ExecutionOutcome:
    """Merged result of one (possibly partitioned) query execution."""

    matches: tuple[Match, ...]
    stats: SearchStats
    partitions: int
    queue_seconds: float
    match_seconds: float


@dataclass(frozen=True)
class ProcessSpec:
    """Everything a worker process needs to run one partition.

    ``time_budget`` is the *remaining* per-query budget at fan-out time;
    each worker rebuilds its own absolute deadline from it, so process
    workers honour the same budget protocol as thread workers (modulo
    fork-startup skew).
    """

    query: QueryGraph
    constraints: TemporalConstraints
    graph: GraphView
    algorithm: str
    limit: int | None = None
    time_budget: float | None = None
    collect_matches: bool = True
    options: dict[str, Any] = field(default_factory=dict)


#: Spec inherited by fork-started workers; set under the process lock of
#: the executor that owns the fan-out (one process fan-out at a time).
_PROCESS_SPEC: ProcessSpec | None = None


def _set_process_spec(spec: ProcessSpec | None) -> None:
    global _PROCESS_SPEC
    _PROCESS_SPEC = spec


def _run_partition_in_process(
    index: int, count: int
) -> tuple[tuple[Match, ...], SearchStats]:
    """Worker-process entry point: run one partition to completion."""
    spec = _PROCESS_SPEC
    if spec is None:  # pragma: no cover - defensive; initializer sets it
        raise RuntimeError("worker process has no query spec")
    result = find_matches(
        spec.query,
        spec.constraints,
        spec.graph,
        algorithm=spec.algorithm,
        limit=spec.limit,
        time_budget=spec.time_budget,
        collect_matches=spec.collect_matches,
        partition=(index, count),
        **spec.options,
    )
    return tuple(result.matches), result.stats


def _merge_partitions(
    parts: list[tuple[tuple[Match, ...], SearchStats]],
    limit: int | None,
) -> tuple[tuple[Match, ...], SearchStats]:
    """Concatenate partition results in order and merge their stats.

    When a global *limit* is set, each partition may have returned up to
    *limit* matches; the merged prefix is re-truncated so the outcome
    honours the limit exactly, and the truncation is flagged.
    """
    matches: list[Match] = []
    stats = SearchStats()
    for part_matches, part_stats in parts:
        matches.extend(part_matches)
        stats.merge(part_stats)
    if limit is not None and stats.matches >= limit:
        matches = matches[:limit]
        stats.matches = limit
        stats.budget_exhausted = True
    return tuple(matches), stats


class QueryExecutor:
    """Bounded worker pool that fans queries out across seed partitions."""

    def __init__(self, max_workers: int = 4, pool: str = "thread") -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, not {max_workers}")
        if pool not in ("thread", "process"):
            raise ValueError(f"pool must be 'thread' or 'process', not {pool!r}")
        self.max_workers = max_workers
        self.pool = pool
        self._threads = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-query"
        )
        self._process_lock = threading.Lock()

    # ------------------------------------------------------------------
    # sizing
    # ------------------------------------------------------------------
    def effective_workers(
        self, matcher: Matcher, workers: int | None = None
    ) -> int:
        """Partition count for *matcher*: requested, capped, and clamped
        to 1 for matchers without partition support (baselines)."""
        requested = self.max_workers if workers is None else workers
        count = max(1, min(requested, self.max_workers))
        if count > 1 and not supports_partition(matcher):
            return 1
        return count

    # ------------------------------------------------------------------
    # thread execution (shared prepared matcher)
    # ------------------------------------------------------------------
    def run_matcher(
        self,
        matcher: Matcher,
        limit: int | None = None,
        deadline: float | None = None,
        workers: int | None = None,
        collect_matches: bool = True,
        tracer: TraceSink | None = None,
    ) -> ExecutionOutcome:
        """Run *matcher* across the thread pool, merging partitions.

        The matcher must already be prepared (the plan cache guarantees
        this); per-run state is local to ``run()``, so all partitions
        share the one matcher object safely.  When *tracer* is given,
        each fanned-out slice runs inside a ``partition:<i>/<n>`` span
        (recorded on its worker thread).
        """
        tr = tracer if tracer is not None else NULL_TRACER
        enqueued = time.perf_counter()
        count = self.effective_workers(matcher, workers)
        if count == 1:
            stats = SearchStats()
            ctx = RunContext(
                limit=limit, deadline=deadline, stats=stats, tracer=tr
            )
            started = time.perf_counter()
            matches: list[Match] = []
            for match in invoke_run(matcher, ctx):
                if collect_matches:
                    matches.append(match)
            finished = time.perf_counter()
            return ExecutionOutcome(
                matches=tuple(matches),
                stats=stats,
                partitions=1,
                queue_seconds=max(0.0, started - enqueued),
                match_seconds=finished - started,
            )

        runner = cast(PartitionedMatcher, matcher)
        base_ctx = RunContext(limit=limit, deadline=deadline, tracer=tr)

        def run_partition(
            index: int,
        ) -> tuple[float, tuple[Match, ...], SearchStats]:
            started = time.perf_counter()
            ctx = base_ctx.with_partition(index, count)
            out: list[Match] = []
            with tr.span(
                f"partition:{index}/{count}", algorithm=matcher.name
            ) as span:
                for match in invoke_run(runner, ctx):
                    if collect_matches:
                        out.append(match)
                span.annotate(matches=ctx.stats.matches)
            return started, tuple(out), ctx.stats

        futures = [
            self._threads.submit(run_partition, index) for index in range(count)
        ]
        results = [future.result() for future in futures]
        finished = time.perf_counter()
        first_start = min(started for started, _, _ in results)
        matches_merged, stats_merged = _merge_partitions(
            [(part, stats) for _, part, stats in results], limit
        )
        return ExecutionOutcome(
            matches=matches_merged,
            stats=stats_merged,
            partitions=count,
            queue_seconds=max(0.0, first_start - enqueued),
            match_seconds=finished - first_start,
        )

    # ------------------------------------------------------------------
    # process execution (opt-in; per-query pool)
    # ------------------------------------------------------------------
    def run_process(
        self, spec: ProcessSpec, workers: int | None = None
    ) -> ExecutionOutcome:
        """Run *spec* across a fresh process pool, merging partitions.

        Serialised per executor: the spec travels to fork-started workers
        through module state captured at fork time, which supports one
        fan-out at a time.  With one worker the query runs inline.
        """
        requested = self.max_workers if workers is None else workers
        count = max(1, min(requested, self.max_workers))
        if count == 1:
            started = time.perf_counter()
            result = find_matches(
                spec.query,
                spec.constraints,
                spec.graph,
                algorithm=spec.algorithm,
                limit=spec.limit,
                time_budget=spec.time_budget,
                collect_matches=spec.collect_matches,
                **spec.options,
            )
            finished = time.perf_counter()
            return ExecutionOutcome(
                matches=tuple(result.matches),
                stats=result.stats,
                partitions=1,
                queue_seconds=0.0,
                match_seconds=finished - started,
            )

        if "fork" in multiprocessing.get_all_start_methods():
            context = multiprocessing.get_context("fork")
        else:  # pragma: no cover - non-POSIX fallback
            context = multiprocessing.get_context()
        forked = context.get_start_method() == "fork"
        with self._process_lock:
            _set_process_spec(spec)
            try:
                pool = ProcessPoolExecutor(
                    max_workers=count,
                    mp_context=context,
                    initializer=None if forked else _set_process_spec,
                    initargs=() if forked else (spec,),
                )
                started = time.perf_counter()
                with pool:
                    futures = [
                        pool.submit(_run_partition_in_process, index, count)
                        for index in range(count)
                    ]
                    parts = [future.result() for future in futures]
                finished = time.perf_counter()
            finally:
                _set_process_spec(None)
        matches_merged, stats_merged = _merge_partitions(parts, spec.limit)
        return ExecutionOutcome(
            matches=matches_merged,
            stats=stats_merged,
            partitions=count,
            queue_seconds=0.0,
            match_seconds=finished - started,
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the thread pool down (idempotent)."""
        self._threads.shutdown(wait=True)

    def __enter__(self) -> "QueryExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
