"""Result cache: complete query answers, keyed by graph version.

Matching is deterministic given ``(graph snapshot, pattern, algorithm,
limit)``, so a *complete* result — one that was not cut short by a
wall-clock deadline — can be replayed verbatim for an identical request.
Keys embed the graph version, so replacing a graph never serves stale
answers; timed-out results are never admitted because which prefix they
contain depends on machine speed, not on the query.

The cache is value-agnostic (a generic LRU): the service stores its
immutable ``ServiceResult`` objects here.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Generic, NamedTuple, TypeVar

from ..obs import assert_lock_held

__all__ = ["ResultCache", "ResultKey"]

_ValueT = TypeVar("_ValueT")


class ResultKey(NamedTuple):
    """Cache key for one complete query answer.

    ``match_options`` is the canonical :class:`repro.core.MatchOptions`
    hash (see :func:`repro.service.plans.match_options_fingerprint`): it
    covers the result-shaping fields — limit, tightening, match
    collection, partition — and deliberately excludes the time budget,
    since only budget-independent (complete) results are admitted, and
    tracing, which never changes the answer.  ``graph_fingerprint`` is
    the compiled snapshot's content digest, pinning the answer to the
    exact data-plane bytes it was computed from.
    """

    graph_name: str
    graph_version: int
    graph_fingerprint: str
    pattern: str
    algorithm: str
    options: str
    match_options: str


class ResultCache(Generic[_ValueT]):
    """Thread-safe LRU mapping of :class:`ResultKey` to cached answers."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(
                f"result cache capacity must be >= 1, not {capacity}"
            )
        self.capacity = capacity
        self._entries: OrderedDict[ResultKey, _ValueT] = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: ResultKey) -> _ValueT | None:
        """The cached value for *key*, refreshed as most recently used."""
        with self._lock:
            value = self._entries.get(key)
            if value is not None:
                self._entries.move_to_end(key)
            return value

    def put(self, key: ResultKey, value: _ValueT) -> None:
        """Insert (or refresh) *key*, evicting the LRU entry when full."""
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            self._trim_locked()

    def _trim_locked(self) -> None:
        """Evict LRU entries past capacity; caller must hold ``_lock``."""
        assert_lock_held(self._lock, "ResultCache._lock")
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def invalidate_graph(
        self, graph_name: str, keep_version: int | None = None
    ) -> int:
        """Drop results for *graph_name* (other than *keep_version*).

        Returns the number of evicted entries.  Version-keying already
        prevents stale serves; this reclaims their memory eagerly.
        """
        with self._lock:
            stale = [
                key
                for key in self._entries
                if key.graph_name == graph_name
                and key.graph_version != keep_version
            ]
            for key in stale:
                del self._entries[key]
            return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
