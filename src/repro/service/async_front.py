"""Asyncio front door: batched admission over a thread-backed service.

:class:`TCSMService` is synchronous by design — queries run on worker
threads or a process pool, and ``submit()`` blocks until the answer is
ready.  That shape is wrong for a network-facing deployment where
thousands of clients multiplex onto one event loop.  The
:class:`AsyncFrontDoor` bridges the two worlds:

* **Bounded queues with backpressure.**  Every tenant gets a bounded
  FIFO; when a tenant's queue is full, new requests are *shed*
  immediately with ``{"status": "rejected", "shed": true}`` instead of
  growing an unbounded backlog.  Latency under overload stays flat and
  the shed rate becomes the overload signal (it is exactly what
  ``benchmarks/bench_load.py`` measures in open-loop mode).
* **Per-tenant fair scheduling.**  Admission visits tenants round-robin,
  one request per visit, so a tenant flooding the door cannot starve a
  light tenant: with two tenants at equal priority each gets every other
  admission slot regardless of queue depths.
* **Batched admission.**  Each worker drains up to ``max_batch``
  requests per wakeup and runs them on one ``asyncio.to_thread`` hop,
  amortising thread handoff over the batch instead of paying it per
  request.

:func:`serve_stdio_async` is the JSONL wiring (``repro serve --async``):
same newline-delimited protocol as :func:`~repro.service.serve_stdio`,
same error envelopes, and responses come back *in request order* so
existing pipeline clients work unchanged — but admission, shedding and
fairness all apply while earlier requests are still in flight.
"""

from __future__ import annotations

import asyncio
import json
from collections import deque
from dataclasses import dataclass, field
from typing import IO, Any

from ..errors import ServiceError
from .server import TCSMService

__all__ = [
    "AsyncFrontConfig",
    "AsyncFrontDoor",
    "FrontDoorStats",
    "serve_stdio_async",
]


@dataclass(frozen=True)
class AsyncFrontConfig:
    """Tunables for the async admission layer.

    ``max_queue_depth`` bounds each tenant's FIFO (beyond it requests
    are shed); ``max_batch`` caps how many requests one worker admits
    per wakeup; ``workers`` is the number of concurrent batch runners
    (each occupies one thread while a batch executes); ``tenant_field``
    names the request key carrying the tenant identity — requests
    without it share the ``"default"`` lane.
    """

    max_queue_depth: int = 64
    max_batch: int = 8
    workers: int = 2
    tenant_field: str = "tenant"

    def __post_init__(self) -> None:
        if self.max_queue_depth < 1:
            raise ServiceError("max_queue_depth must be >= 1")
        if self.max_batch < 1:
            raise ServiceError("max_batch must be >= 1")
        if self.workers < 1:
            raise ServiceError("workers must be >= 1")


@dataclass
class FrontDoorStats:
    """Counters the front door keeps (read them via ``stats()``)."""

    submitted: int = 0
    admitted: int = 0
    shed: int = 0
    served: int = 0
    batches: int = 0
    shed_by_tenant: dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return {
            "submitted": self.submitted,
            "admitted": self.admitted,
            "shed": self.shed,
            "served": self.served,
            "batches": self.batches,
            "shed_by_tenant": dict(self.shed_by_tenant),
        }


_QueueItem = tuple[dict[str, Any], "asyncio.Future[dict[str, Any]]"]


class AsyncFrontDoor:
    """Admission control in front of a (synchronous) service.

    The wrapped object only needs a ``submit(request) -> response``
    method; in production that is a :class:`TCSMService`, in tests it
    can be any stub.  Use as an async context manager, or call
    :meth:`start` / :meth:`close` explicitly::

        async with AsyncFrontDoor(service) as front:
            response = await front.submit({"op": "ping"})

    ``close()`` drains every queued request before returning, so no
    admitted request is ever dropped on shutdown.
    """

    def __init__(
        self,
        service: TCSMService | Any,
        config: AsyncFrontConfig | None = None,
    ) -> None:
        self.service = service
        self.config = config or AsyncFrontConfig()
        self.stats = FrontDoorStats()
        self._queues: dict[str, deque[_QueueItem]] = {}
        # Tenants with at least one queued request, in admission order.
        self._ready: deque[str] = deque()
        self._cond: asyncio.Condition | None = None
        self._workers: list[asyncio.Task[None]] = []
        self._closing = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Spawn the admission workers (idempotent)."""
        if self._workers:
            return
        # No workers exist yet, so nothing races this reset.
        self._closing = False  # reprolint: guarded-by(_cond)
        self._cond = asyncio.Condition()
        self._workers = [
            asyncio.create_task(self._worker(), name=f"front-door-{i}")
            for i in range(self.config.workers)
        ]

    async def close(self) -> None:
        """Drain queued requests, then stop the workers (idempotent)."""
        if self._cond is None:
            return
        async with self._cond:
            self._closing = True
            self._cond.notify_all()
        await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers = []
        self._cond = None

    async def __aenter__(self) -> "AsyncFrontDoor":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    async def submit(self, request: dict[str, Any]) -> dict[str, Any]:
        """Admit one request and await its response.

        Returns the service's response, or an immediate shed envelope
        (``status="rejected"``, ``shed=true``) when the tenant's queue
        is at ``max_queue_depth`` — the caller never blocks behind a
        backlog it cannot join.
        """
        if self._cond is None:
            raise ServiceError(
                "AsyncFrontDoor is not started; use 'async with' or "
                "call start()"
            )
        tenant = str(request.get(self.config.tenant_field, "default"))
        future: asyncio.Future[dict[str, Any]]
        future = asyncio.get_running_loop().create_future()
        async with self._cond:
            self.stats.submitted += 1
            if self._closing:
                return self._shed_response(request, tenant, "closing")
            queue = self._queues.setdefault(tenant, deque())
            if len(queue) >= self.config.max_queue_depth:
                return self._shed_response(request, tenant, "queue full")
            queue.append((request, future))
            if len(queue) == 1:
                self._ready.append(tenant)
            self._cond.notify()
        return await future

    def _shed_response(
        self, request: dict[str, Any], tenant: str, reason: str
    ) -> dict[str, Any]:
        self.stats.shed += 1
        by_tenant = self.stats.shed_by_tenant
        by_tenant[tenant] = by_tenant.get(tenant, 0) + 1
        response: dict[str, Any] = {
            "op": request.get("op", "query"),
            "status": "rejected",
            "shed": True,
            "error": (
                f"request shed for tenant {tenant!r}: {reason} "
                f"(max_queue_depth={self.config.max_queue_depth})"
            ),
        }
        if "id" in request:
            response["id"] = request["id"]
        return response

    def stats_snapshot(self) -> dict[str, Any]:
        """Plain-data counters (for metrics endpoints and benchmarks)."""
        return self.stats.as_dict()

    # ------------------------------------------------------------------
    # admission workers
    # ------------------------------------------------------------------
    async def _worker(self) -> None:
        assert self._cond is not None
        while True:
            batch: list[_QueueItem] = []
            async with self._cond:
                while not self._ready and not self._closing:
                    await self._cond.wait()
                if not self._ready and self._closing:
                    return
                # Round-robin admission: one request per tenant visit,
                # so a deep queue cannot monopolise a batch.
                while self._ready and len(batch) < self.config.max_batch:
                    tenant = self._ready.popleft()
                    queue = self._queues[tenant]
                    batch.append(queue.popleft())
                    if queue:
                        self._ready.append(tenant)
                self.stats.admitted += len(batch)
                self.stats.batches += 1
            requests = [request for request, _ in batch]
            try:
                responses = await asyncio.to_thread(
                    self._run_batch, requests
                )
            except BaseException as exc:
                for _, future in batch:
                    if not future.done():
                        future.set_exception(exc)
                raise
            for (_, future), response in zip(batch, responses):
                self.stats.served += 1
                if not future.done():
                    future.set_result(response)

    def _run_batch(
        self, requests: list[dict[str, Any]]
    ) -> list[dict[str, Any]]:
        # Runs on a worker thread: the service's own submit() is
        # blocking and never raises (it returns error envelopes).
        return [self.service.submit(request) for request in requests]


async def serve_stdio_async(
    service: TCSMService,
    in_stream: IO[str],
    out_stream: IO[str],
    config: AsyncFrontConfig | None = None,
) -> int:
    """Serve newline-delimited JSON through the async front door.

    Protocol-compatible with :func:`~repro.service.serve_stdio` — one
    request object per input line, one response object per output line,
    responses in request order, malformed/oversized lines answered with
    error envelopes — but requests flow through an
    :class:`AsyncFrontDoor`, so admission batching, per-tenant fairness
    and queue-full shedding apply while earlier queries are still
    running.  Returns the number of responses written.
    """
    served = 0
    max_bytes = service.config.max_request_bytes
    loop = asyncio.get_running_loop()
    # FIFO of response futures: the writer resolves them in admission
    # order, which is exactly request order.
    pending: asyncio.Queue[asyncio.Future[dict[str, Any]] | None]
    pending = asyncio.Queue()

    async def writer() -> int:
        written = 0
        while True:
            future = await pending.get()
            if future is None:
                return written
            response = await future
            out_stream.write(json.dumps(response) + "\n")
            out_stream.flush()
            written += 1

    async with AsyncFrontDoor(service, config) as front:
        writer_task = asyncio.create_task(writer())
        shutdown = False
        while not shutdown:
            raw = await asyncio.to_thread(in_stream.readline)
            if not raw:
                break
            line = raw.strip()
            if not line:
                continue
            request: dict[str, Any] | None
            try:
                if len(line) > max_bytes:
                    raise ValueError(
                        f"request line exceeds max_request_bytes "
                        f"({len(line)} > {max_bytes})"
                    )
                parsed = json.loads(line)
                if not isinstance(parsed, dict):
                    raise ValueError("request must be a JSON object")
                request = parsed
            except ValueError as exc:
                request = None
                failed: asyncio.Future[dict[str, Any]]
                failed = loop.create_future()
                failed.set_result(
                    {
                        "status": "error",
                        "error": f"invalid request line: {exc}",
                    }
                )
                await pending.put(failed)
                continue
            if request.get("op") == "shutdown":
                # Drain in order: the shutdown response is the last line.
                shutdown = True
            await pending.put(asyncio.ensure_future(front.submit(request)))
        await pending.put(None)
        served = await writer_task
    return served
