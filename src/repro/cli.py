"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands
-----------
``match``
    Run TCSM matching: a SNAP temporal edge list (plus optional label
    sidecar) against a JSON pattern file (see
    :mod:`repro.graphs.query_io`).
``generate``
    Write a dataset stand-in (or any catalog entry) as a SNAP file with a
    label sidecar — useful for trying the CLI end to end offline.
``pattern-example``
    Write a sample pattern JSON (the paper's q1 with tc2) to edit.
``algorithms``
    List the registered matcher names.
``serve``
    Run the query service as a JSONL request/response loop over stdio:
    graphs are loaded once (``--graph name=path``, repeatable, or via
    ``load_graph`` requests) and served many times with plan/result
    caching and partitioned parallel execution (see docs/SERVICE.md).
``submit``
    Write a JSONL request line for ``serve`` — the two verbs compose
    into shell pipelines: ``repro submit ... | repro serve ...``.
``subscribe``
    Write a JSONL ``subscribe`` request registering a standing pattern
    against a served graph (see docs/STREAMING.md).
``ingest``
    Turn a SNAP-style edge file into batched JSONL ``ingest`` requests;
    piped into ``serve`` it appends edges and drives the standing
    subscriptions' delta searches.
``trace``
    Run one fully traced query (the paper's toy example by default),
    print the span tree and per-filter pruning counters, and optionally
    write Chrome trace-event JSON for chrome://tracing (see
    docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from . import __version__
from .core import MatchOptions, available_algorithms, find_matches
from .datasets import dataset_keys, load_dataset, paper_constraints, paper_query
from .errors import ReproError
from .graphs import load_pattern, load_snap_temporal, save_pattern, save_snap_temporal

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Temporal-constraint subgraph matching (TCSM).",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    match = sub.add_parser(
        "match", help="match a pattern against a temporal graph"
    )
    match.add_argument("--graph", required=True,
                       help="SNAP temporal edge list ('src dst t' lines)")
    match.add_argument("--pattern", required=True,
                       help="pattern JSON (query + constraints)")
    match.add_argument("--algorithm", default="tcsm-eve",
                       help="matcher name (see 'repro algorithms')")
    match.add_argument("--limit", type=int, default=None,
                       help="stop after this many matches")
    match.add_argument("--time-budget", type=float, default=None,
                       help="wall-clock budget in seconds")
    match.add_argument("--order-by", default="any",
                       choices=("any", "earliest"),
                       help="result order: 'earliest' keeps the top-limit "
                            "matches by latest edge timestamp")
    match.add_argument("--mode", default="enumerate",
                       choices=("enumerate", "count", "estimate"),
                       help="answer shape: enumerate matches, count "
                            "exactly, or estimate via HT sampling")
    match.add_argument("--codegen", action="store_true",
                       help="compile a specialised enumerator for this "
                            "(pattern, plan) before matching")
    match.add_argument("--count-only", action="store_true",
                       help="print only the match count")
    match.add_argument("--json", action="store_true",
                       help="emit matches as JSON lines")
    match.add_argument("--output", default=None,
                       help="also save matches to this .json or .csv file")
    match.add_argument("--num-labels", type=int, default=8,
                       help="random labels when no sidecar exists (default 8)")
    match.add_argument("--seed", type=int, default=0,
                       help="seed for random label assignment")

    generate = sub.add_parser(
        "generate", help="write a dataset stand-in as a SNAP file"
    )
    generate.add_argument("--dataset", default="CM",
                          help=f"catalog key ({', '.join(dataset_keys())})")
    generate.add_argument("--out", required=True, help="output path")
    generate.add_argument("--scale", type=float, default=None)
    generate.add_argument("--num-labels", type=int, default=8)
    generate.add_argument("--seed", type=int, default=0)

    example = sub.add_parser(
        "pattern-example", help="write a sample pattern JSON"
    )
    example.add_argument("--out", required=True, help="output path")

    sub.add_parser("algorithms", help="list registered matcher names")

    serve = sub.add_parser(
        "serve", help="serve JSONL queries over stdio (see docs/SERVICE.md)"
    )
    serve.add_argument("--graph", action="append", default=[],
                       metavar="NAME=PATH",
                       help="preload a SNAP temporal edge list (repeatable)")
    serve.add_argument("--workers", type=int, default=4,
                       help="worker-pool size / partitions per query")
    serve.add_argument("--pool", choices=("thread", "process"),
                       default="thread",
                       help="worker pool flavour (default thread)")
    serve.add_argument("--max-inflight", type=int, default=8,
                       help="admission limit on concurrent queries")
    serve.add_argument("--plan-cache", type=int, default=64,
                       help="prepared-plan cache capacity")
    serve.add_argument("--result-cache", type=int, default=256,
                       help="result cache capacity")
    serve.add_argument("--time-budget", type=float, default=30.0,
                       help="default per-query budget in seconds")
    serve.add_argument("--num-labels", type=int, default=8,
                       help="random labels for graphs without a sidecar")
    serve.add_argument("--seed", type=int, default=0,
                       help="seed for random label assignment")
    serve.add_argument("--trace-sample", type=float, default=0.0,
                       metavar="RATE",
                       help="fraction of queries to trace (0..1, default 0)")
    serve.add_argument("--trace-store", type=int, default=32,
                       help="retained traces before LRU eviction")
    serve.add_argument("--async", dest="use_async", action="store_true",
                       help="serve through the asyncio front door "
                            "(batched admission, per-tenant fairness, "
                            "queue-full shedding)")
    serve.add_argument("--queue-depth", type=int, default=64,
                       help="per-tenant queue bound before shedding "
                            "(with --async)")
    serve.add_argument("--batch", type=int, default=8,
                       help="max requests admitted per batch "
                            "(with --async)")

    trace = sub.add_parser(
        "trace", help="run one traced query and show spans + pruning counters"
    )
    trace.add_argument("--graph", default=None,
                       help="SNAP temporal edge list (default: paper toy "
                            "example)")
    trace.add_argument("--pattern", default=None,
                       help="pattern JSON (default: toy pattern)")
    trace.add_argument("--algorithm", default="tcsm-eve",
                       help="matcher name (see 'repro algorithms')")
    trace.add_argument("--limit", type=int, default=None,
                       help="stop after this many matches")
    trace.add_argument("--time-budget", type=float, default=None,
                       help="wall-clock budget in seconds")
    trace.add_argument("--codegen", action="store_true",
                       help="compile a specialised enumerator (adds a "
                            "codegen-compile span to the trace)")
    trace.add_argument("--tighten", action=argparse.BooleanOptionalAction,
                       default=True,
                       help="tighten constraints via STN closure first "
                            "(default on, so the stn-closure span appears)")
    trace.add_argument("--out", default=None,
                       help="write Chrome trace-event JSON here "
                            "(open in chrome://tracing or Perfetto)")
    trace.add_argument("--num-labels", type=int, default=8,
                       help="random labels when no sidecar exists (default 8)")
    trace.add_argument("--seed", type=int, default=0,
                       help="seed for random label assignment")

    submit = sub.add_parser(
        "submit", help="print a JSONL request line for 'repro serve'"
    )
    submit.add_argument("--op", default="query",
                        choices=("query", "metrics", "graphs", "ping",
                                 "trace", "poll", "unsubscribe", "shutdown"),
                        help="request type (default query)")
    submit.add_argument("--graph", default=None,
                        help="registered graph name (query op)")
    submit.add_argument("--pattern", default=None,
                        help="pattern JSON file; inlined into the request")
    submit.add_argument("--algorithm", default=None,
                        help="matcher name (service default: tcsm-eve)")
    submit.add_argument("--limit", type=int, default=None,
                        help="stop after this many matches")
    submit.add_argument("--time-budget", type=float, default=None,
                        help="per-query wall-clock budget in seconds")
    submit.add_argument("--workers", type=int, default=None,
                        help="partitions for this query")
    submit.add_argument("--partition-strategy", default=None,
                        choices=("stride", "range", "label"),
                        help="candidate partitioning strategy for "
                             "fan-out (query op)")
    submit.add_argument("--order-by", default=None,
                        choices=("any", "earliest"),
                        help="result order: 'earliest' returns the exact "
                             "top-limit matches by latest edge timestamp "
                             "(query op)")
    submit.add_argument("--mode", default=None,
                        choices=("enumerate", "count", "estimate"),
                        help="answer shape: enumerate matches, count "
                             "exactly, or estimate via HT sampling "
                             "(query op)")
    submit.add_argument("--probes", type=int, default=None,
                        help="HT sampling probes for --mode estimate "
                             "(service default: 200)")
    submit.add_argument("--estimate-seed", type=int, default=None,
                        help="RNG seed for --mode estimate (default 0)")
    submit.add_argument("--codegen", action="store_true",
                        help="ask the service for a compiled enumerator "
                             "(ignored by algorithms without support)")
    submit.add_argument("--count-only", action="store_true",
                        help="request match counts without match payloads")
    submit.add_argument("--trace", action="store_true",
                        help="force tracing for this query (query op)")
    submit.add_argument("--trace-id", default=None,
                        help="retrieve one stored trace (trace op; omit to "
                             "list retained trace ids)")
    submit.add_argument("--subscription-id", default=None,
                        help="standing subscription id (poll/unsubscribe ops)")
    submit.add_argument("--max", type=int, default=None, dest="max_items",
                        help="cap emissions drained per poll (poll op)")
    submit.add_argument("--id", default=None,
                        help="request id echoed back in the response")

    subscribe = sub.add_parser(
        "subscribe",
        help="print a JSONL subscribe request registering a standing pattern",
    )
    subscribe.add_argument("--graph", required=True,
                           help="registered graph name on the server")
    subscribe.add_argument("--pattern", required=True,
                           help="pattern JSON file; inlined into the request")
    subscribe.add_argument("--subscription-id", default=None,
                           help="explicit subscription id (server assigns "
                                "'sN' when omitted)")
    subscribe.add_argument("--queue-capacity", type=int, default=None,
                           help="undelivered emissions buffered between "
                                "polls (service default 1024)")
    subscribe.add_argument("--lateness", type=int, default=None,
                           help="out-of-order slack, in timestamp units, "
                                "for partial expiry (default 0)")
    subscribe.add_argument("--search-budget", type=float, default=None,
                           help="seconds per delta search (default "
                                "unbounded, which keeps emissions exact)")
    subscribe.add_argument("--id", default=None,
                           help="request id echoed back in the response")

    ingest = sub.add_parser(
        "ingest",
        help="print batched JSONL ingest requests from an edge file",
    )
    ingest.add_argument("--graph", required=True,
                        help="registered graph name on the server")
    ingest.add_argument("--file", required=True,
                        help="edge file: 'src dst t [label]' lines "
                             "('-' reads stdin)")
    ingest.add_argument("--batch", type=int, default=256,
                        help="edges per ingest request (default 256)")
    ingest.add_argument("--trace", action="store_true",
                        help="trace each ingest batch (segment flushes and "
                             "per-edge delta searches)")
    ingest.add_argument("--id", default=None,
                        help="request id prefix; batches get '<id>-<n>'")
    return parser


def _cmd_match(args: argparse.Namespace) -> int:
    from .core import lint_pattern

    graph = load_snap_temporal(
        args.graph, num_labels=args.num_labels, seed=args.seed
    )
    query, constraints = load_pattern(args.pattern)
    diagnostics = lint_pattern(query, constraints, graph)
    for diagnostic in diagnostics:
        print(diagnostic, file=sys.stderr)
    if any(d.severity == "error" for d in diagnostics):
        print("error: pattern cannot match this graph", file=sys.stderr)
        return 2
    mode = "count" if args.count_only and args.mode == "enumerate" else args.mode
    result = find_matches(
        query,
        constraints,
        graph,
        algorithm=args.algorithm,
        options=MatchOptions(
            limit=args.limit,
            time_budget=args.time_budget,
            collect_matches=not args.count_only and mode == "enumerate",
            order_by=args.order_by,
            mode=mode,
            codegen=args.codegen,
        ),
    )
    if result.estimate is not None:
        est = result.estimate
        if args.json:
            print(json.dumps(est.to_dict()))
        else:
            print(f"~{est.count:.1f} matches "
                  f"(95% CI [{est.ci_low:.1f}, {est.ci_high:.1f}], "
                  f"{est.probes} probes)")
        return 0
    if args.count_only or mode == "count":
        print(result.stats.matches)
        return 0
    if args.output:
        from .core.results import MatchSet

        match_set = MatchSet(result.matches)
        out_path = Path(args.output)
        if out_path.suffix == ".csv":
            match_set.save_csv(out_path)
        else:
            match_set.save_json(out_path, query=query)
        print(f"# saved: {match_set.summary()} -> {out_path}",
              file=sys.stderr)
    for match in result.matches:
        if args.json:
            print(json.dumps({
                "vertices": list(match.vertex_map),
                "edges": [list(edge) for edge in match.edge_map],
            }))
        else:
            edges = " ".join(
                f"({e.u}->{e.v}@{e.t})" for e in match.edge_map
            )
            print(f"vertices={list(match.vertex_map)} edges={edges}")
    truncated = " (stopped at budget)" if result.stats.budget_exhausted else ""
    engine = f"{result.algorithm}+codegen" if args.codegen else result.algorithm
    print(
        f"# {result.num_matches} matches in "
        f"{result.total_seconds:.3f}s with {engine}{truncated}",
        file=sys.stderr,
    )
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    from .graphs import graph_statistics

    graph = load_dataset(
        args.dataset,
        scale=args.scale,
        num_labels=args.num_labels,
        seed=args.seed,
    )
    save_snap_temporal(graph, args.out)
    print(
        f"wrote {args.out} (labels in {Path(args.out).name}.labels)",
        file=sys.stderr,
    )
    print(graph_statistics(graph).describe(), file=sys.stderr)
    return 0


def _cmd_pattern_example(args: argparse.Namespace) -> int:
    query = paper_query(1)
    constraints = paper_constraints(2, num_edges=query.num_edges)
    save_pattern(query, constraints, args.out)
    print(f"wrote sample pattern (q1, tc2) to {args.out}", file=sys.stderr)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service import ServiceConfig, TCSMService, serve_stdio

    if not 0.0 <= args.trace_sample <= 1.0:
        print(f"error: --trace-sample must be within [0, 1], got "
              f"{args.trace_sample}", file=sys.stderr)
        return 2
    config = ServiceConfig(
        max_workers=args.workers,
        pool=args.pool,
        plan_cache_size=args.plan_cache,
        result_cache_size=args.result_cache,
        max_inflight=args.max_inflight,
        default_time_budget=args.time_budget,
        trace_sample_rate=args.trace_sample,
        trace_store_size=args.trace_store,
    )
    with TCSMService(config) as service:
        for spec in args.graph:
            name, sep, path = spec.partition("=")
            if not sep or not name or not path:
                print(f"error: --graph expects NAME=PATH, got {spec!r}",
                      file=sys.stderr)
                return 2
            handle = service.load_graph_file(
                name, path, num_labels=args.num_labels, seed=args.seed
            )
            print(f"# loaded {handle.describe()}", file=sys.stderr)
        if args.use_async:
            import asyncio

            from .service import AsyncFrontConfig, serve_stdio_async

            served = asyncio.run(
                serve_stdio_async(
                    service,
                    sys.stdin,
                    sys.stdout,
                    AsyncFrontConfig(
                        max_queue_depth=args.queue_depth,
                        max_batch=args.batch,
                    ),
                )
            )
        else:
            served = serve_stdio(service, sys.stdin, sys.stdout)
    print(f"# served {served} requests", file=sys.stderr)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .core import MatchOptions
    from .obs import Tracer, render_span_tree, write_chrome_trace

    if (args.graph is None) != (args.pattern is None):
        print("error: 'trace' needs both --graph and --pattern (or neither "
              "for the built-in toy example)", file=sys.stderr)
        return 2
    if args.graph is None:
        from .datasets import toy_instance

        query, constraints, graph, _, _ = toy_instance()
        source = "toy example (paper Fig. 2)"
    else:
        graph = load_snap_temporal(
            args.graph, num_labels=args.num_labels, seed=args.seed
        )
        query, constraints = load_pattern(args.pattern)
        source = args.graph
    tracer = Tracer()
    result = find_matches(
        query,
        constraints,
        graph,
        algorithm=args.algorithm,
        options=MatchOptions(
            limit=args.limit,
            time_budget=args.time_budget,
            tighten=args.tighten,
            codegen=args.codegen,
        ),
        tracer=tracer,
    )
    engine = f"{args.algorithm}+codegen" if args.codegen else args.algorithm
    print(f"# traced {engine} on {source}: "
          f"{result.num_matches} matches in {result.total_seconds:.4f}s")
    print(render_span_tree(tracer))
    summary = result.stats.filter_summary()
    if summary:
        width = max(len(name) for name in summary)
        print(f"{'filter':<{width}}  considered     pruned  survivors")
        for name, row in summary.items():
            print(f"{name:<{width}}  {row['considered']:>10} "
                  f"{row['pruned']:>10} {row['survivors']:>10}")
    if result.stats.timestamps_expanded or result.stats.timestamps_skipped:
        print(f"# timestamps expanded: {result.stats.timestamps_expanded}")
        print(f"# timestamps skipped:  {result.stats.timestamps_skipped}")
    if args.out:
        write_chrome_trace(tracer, args.out)
        print(f"# wrote Chrome trace ({len(tracer)} spans) -> {args.out}",
              file=sys.stderr)
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    request: dict[str, object] = {"op": args.op}
    if args.id is not None:
        request["id"] = args.id
    if args.op == "query":
        if args.graph is None or args.pattern is None:
            print("error: 'submit --op query' needs --graph and --pattern",
                  file=sys.stderr)
            return 2
        from .graphs import pattern_to_dict

        query, constraints = load_pattern(args.pattern)
        request["graph"] = args.graph
        request["pattern"] = pattern_to_dict(query, constraints)
        if args.algorithm is not None:
            request["algorithm"] = args.algorithm
        if args.limit is not None:
            request["limit"] = args.limit
        if args.time_budget is not None:
            request["time_budget"] = args.time_budget
        if args.workers is not None:
            request["workers"] = args.workers
        if args.partition_strategy is not None:
            request["partition_strategy"] = args.partition_strategy
        if args.order_by is not None:
            request["order_by"] = args.order_by
        if args.mode is not None:
            request["mode"] = args.mode
        if args.probes is not None:
            request["probes"] = args.probes
        if args.estimate_seed is not None:
            request["seed"] = args.estimate_seed
        if args.codegen:
            request["codegen"] = True
        if args.count_only:
            request["count_only"] = True
        if args.trace:
            request["trace"] = True
    elif args.op == "trace" and args.trace_id is not None:
        request["trace_id"] = args.trace_id
    elif args.op in ("poll", "unsubscribe"):
        if args.subscription_id is None:
            print(f"error: 'submit --op {args.op}' needs --subscription-id",
                  file=sys.stderr)
            return 2
        request["subscription_id"] = args.subscription_id
        if args.op == "poll" and args.max_items is not None:
            request["max"] = args.max_items
    print(json.dumps(request))
    return 0


def _cmd_subscribe(args: argparse.Namespace) -> int:
    from .graphs import pattern_to_dict

    query, constraints = load_pattern(args.pattern)
    request: dict[str, object] = {
        "op": "subscribe",
        "graph": args.graph,
        "pattern": pattern_to_dict(query, constraints),
    }
    if args.id is not None:
        request["id"] = args.id
    if args.subscription_id is not None:
        request["subscription_id"] = args.subscription_id
    if args.queue_capacity is not None:
        request["queue_capacity"] = args.queue_capacity
    if args.lateness is not None:
        request["lateness"] = args.lateness
    if args.search_budget is not None:
        request["search_budget"] = args.search_budget
    print(json.dumps(request))
    return 0


def _parse_edge_line(line: str, lineno: int) -> list[object] | None:
    """Parse one 'src dst t [label]' edge line (None for blank/comment)."""
    text = line.strip()
    if not text or text.startswith("#"):
        return None
    parts = text.split()
    if len(parts) not in (3, 4):
        raise ReproError(
            f"edge line {lineno} needs 'src dst t [label]', got {text!r}"
        )
    try:
        edge: list[object] = [int(parts[0]), int(parts[1]), int(parts[2])]
    except ValueError as exc:
        raise ReproError(
            f"edge line {lineno}: non-integer src/dst/t in {text!r}"
        ) from exc
    if len(parts) == 4:
        label = parts[3]
        edge.append(int(label) if label.lstrip("-").isdigit() else label)
    return edge


def _cmd_ingest(args: argparse.Namespace) -> int:
    if args.batch < 1:
        print(f"error: --batch must be >= 1, got {args.batch}",
              file=sys.stderr)
        return 2
    if args.file == "-":
        lines = sys.stdin
    else:
        lines = Path(args.file).open(encoding="utf-8")
    batches = 0
    edges: list[list[object]] = []

    def flush() -> None:
        nonlocal batches, edges
        if not edges:
            return
        batches += 1
        request: dict[str, object] = {
            "op": "ingest",
            "graph": args.graph,
            "edges": edges,
        }
        if args.trace:
            request["trace"] = True
        if args.id is not None:
            request["id"] = f"{args.id}-{batches}"
        print(json.dumps(request))
        edges = []

    total = 0
    try:
        for lineno, line in enumerate(lines, start=1):
            edge = _parse_edge_line(line, lineno)
            if edge is None:
                continue
            edges.append(edge)
            total += 1
            if len(edges) >= args.batch:
                flush()
    finally:
        if lines is not sys.stdin:
            lines.close()
    flush()
    print(f"# {total} edges in {batches} ingest requests", file=sys.stderr)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "match":
            return _cmd_match(args)
        if args.command == "generate":
            return _cmd_generate(args)
        if args.command == "pattern-example":
            return _cmd_pattern_example(args)
        if args.command == "algorithms":
            for name in available_algorithms():
                print(name)
            return 0
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "trace":
            return _cmd_trace(args)
        if args.command == "submit":
            return _cmd_submit(args)
        if args.command == "subscribe":
            return _cmd_subscribe(args)
        if args.command == "ingest":
            return _cmd_ingest(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    parser.error(f"unknown command {args.command!r}")
    return 2  # pragma: no cover - parser.error raises


if __name__ == "__main__":  # pragma: no cover - module entry
    sys.exit(main())
