"""The blessed public facade: one stable import for embedding repro.

Three call shapes cover the supported ways in (see docs/API.md for the
stability tiers)::

    from repro import api

    # One-shot matching -------------------------------------------------
    result = api.match(query, constraints, graph,
                       options=api.MatchOptions(limit=10))

    # Prepare once, match many (plan reuse) -----------------------------
    matcher = api.prepare(query, constraints, graph, algorithm="tcsm-eve")
    result = api.match(query, constraints, graph, matcher=matcher)

    # A long-lived serving stack ---------------------------------------
    service = api.serve()
    service.load_graph("g", graph)
    response = service.submit({"op": "query", "graph": "g", ...})

Everything exported here is **stable**: additions are backwards
compatible and removals go through a deprecation cycle.  Deeper imports
(``repro.core.engine``, ``repro.service.executor``, ...) are internal —
they move without notice.  The legacy keyword shims on
:func:`repro.core.find_matches` / ``Matcher.run`` are **deprecated**;
this facade only speaks :class:`MatchOptions` / :class:`RunContext`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from .core import (
    CountEstimate,
    MatchOptions,
    Matcher,
    MatchResult,
    RunContext,
    create_matcher,
    find_matches,
)
from .core.engine import prepare_matcher
from .graphs import GraphView, QueryGraph, TemporalConstraints
from .obs import NULL_TRACER, Tracer

if TYPE_CHECKING:
    from .service import ServiceConfig, TCSMService

__all__ = [
    "CountEstimate",
    "MatchOptions",
    "MatchResult",
    "RunContext",
    "match",
    "prepare",
    "serve",
]


def match(
    query: QueryGraph,
    constraints: TemporalConstraints,
    graph: GraphView,
    algorithm: str = "tcsm-eve",
    *,
    options: MatchOptions | None = None,
    matcher: Matcher | None = None,
    tracer: Tracer | None = None,
) -> MatchResult:
    """Run one TCSM query end to end and return matches plus timings.

    The facade twin of :func:`repro.core.find_matches`, minus the
    deprecated keyword shim: all run behaviour is chosen through
    *options*.  Pass a *matcher* from :func:`prepare` to reuse a warm
    plan (its algorithm wins over the *algorithm* argument).
    """
    return find_matches(
        query,
        constraints,
        graph,
        algorithm=algorithm,
        options=options,
        matcher=matcher,
        tracer=tracer,
    )


def prepare(
    query: QueryGraph,
    constraints: TemporalConstraints,
    graph: GraphView,
    algorithm: str = "tcsm-eve",
    *,
    options: MatchOptions | None = None,
    **matcher_options: Any,
) -> Matcher:
    """Build and prepare a matcher for repeated :func:`match` calls.

    Preparation (TCQ/TCQ+ compilation, candidate filtering, window
    plans) runs once here; the returned matcher can then serve many
    ``match(..., matcher=...)`` calls against the same graph without
    re-preparing.  ``options.plan`` selects the matching-order planner;
    the remaining option fields are per-run and take effect at
    :func:`match` time.
    """
    if options is not None and options.plan != "paper":
        matcher_options.setdefault("plan", options.plan)
    built = create_matcher(
        algorithm, query, constraints, graph, **matcher_options
    )
    prepare_matcher(built, NULL_TRACER)
    return built


def serve(config: "ServiceConfig | None" = None) -> "TCSMService":
    """A ready :class:`~repro.service.TCSMService` (the serving stack).

    Imports the service subsystem lazily so ``import repro.api`` stays
    cheap for library embedders.  Close the returned service (or use it
    as a context manager) to release its worker pools and any
    shared-memory graph segments.
    """
    from .service import TCSMService

    return TCSMService(config)
