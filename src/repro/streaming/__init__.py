"""Continuous TCSM: standing subscriptions over a live edge stream.

The streaming subsystem turns the one-shot matching stack into a
continuous one (see docs/STREAMING.md):

* :class:`~repro.graphs.SegmentedGraph` (in :mod:`repro.graphs`) makes
  the data graph appendable without per-edge snapshot recompilation —
  immutable compiled CSR segments plus a small mutable tail, merged
  LSM-style;
* :class:`StreamingEngine` registers standing patterns
  (:func:`StreamingEngine.subscribe`) and, per ingested edge, runs a
  window-pruned delta search that emits exactly the matches the edge
  completes;
* :class:`~repro.service.TCSMService` exposes the engine through the
  ``subscribe`` / ``ingest`` / ``unsubscribe`` / ``poll`` JSONL ops
  (``repro subscribe`` / ``repro ingest`` in the CLI).
"""

from .engine import IngestReport, StreamingEngine
from .subscription import (
    Emission,
    Subscription,
    SubscriptionOptions,
    build_subscription,
)

__all__ = [
    "Emission",
    "IngestReport",
    "StreamingEngine",
    "Subscription",
    "SubscriptionOptions",
    "build_subscription",
]
