"""The streaming engine: delta-driven TCSM over a segmented graph.

:class:`StreamingEngine` owns one :class:`~repro.graphs.SegmentedGraph`
and a set of standing :class:`~repro.streaming.Subscription` objects.
``ingest`` appends each edge to the graph and runs one **pinned delta
search** per subscription: the new edge is pinned at every query-edge
position whose vertex labels (and optional edge label) it satisfies, and
the rest of the pattern is searched over the edges already ingested.

Correctness under *any* arrival order — including fully shuffled streams
— follows from two facts:

* a match is completed exactly when its **last-arriving** edge is
  ingested (before that, some member edge is absent from the graph), and
* for simple query graphs every data edge occupies at most one position
  of a given match (the vertex map is injective, so distinct query edges
  map to distinct ordered vertex pairs), so the completed match is found
  under exactly one pin.

Hence the streamed emission multiset equals the one-shot match multiset
on the final graph — pinned by ``tests/streaming/test_equivalence.py``
across all TCSM algorithms and both graph backends.

Temporal pruning reuses the one-shot stack's window kernel: each search
position intersects the STN-closure bounds against the already-bound
timestamps (:func:`repro.core.windows.feasible_window`) and bisects the
candidate runs down to the feasible interval
(:func:`repro.core.windows.windowed_times`).  Because the closure bounds
are validated pairwise at bind time, completed embeddings satisfy every
raw constraint and no leaf post-filter is needed.

The **partial ledger** is bounded accounting, not a correctness
mechanism: every label-compatible ingested edge opens a candidacy window
``[t - span, t + span]`` (``span`` = the subscription's largest finite
closure distance) during which future arrivals could still extend it
into a match; once the watermark passes ``t + span + lateness`` the
partial is provably dead and is expired from the ledger, feeding the
``partials_live`` / ``partials_expired`` metrics.

The engine is thread-safe behind one lock: ``ingest`` is strictly
sequential (single-writer, matching the segmented graph's contract), and
``subscribe`` / ``poll`` / ``metrics_snapshot`` interleave safely with
it.
"""

from __future__ import annotations

import heapq
import math
import time
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass
from threading import Lock
from typing import Any, cast

from ..core.match import Match
from ..core.stats import SearchStats
from ..core.windows import feasible_window, windowed_times
from ..errors import StreamingError, UnknownSubscriptionError
from ..graphs import (
    QueryGraph,
    SegmentedGraph,
    TemporalConstraints,
    TemporalEdge,
)
from ..obs import NULL_TRACER, TraceSink, assert_lock_held
from .subscription import (
    Emission,
    Subscription,
    SubscriptionOptions,
    build_subscription,
)

__all__ = ["IngestReport", "StreamingEngine"]

#: An edge to ingest: ``(u, v, t)`` or ``(u, v, t, label)``.
EdgeInput = Sequence[Any]


@dataclass(frozen=True)
class IngestReport:
    """Outcome of one ``ingest`` call (plain data for JSONL responses)."""

    edges: int
    new_edges: int
    duplicates: int
    emitted: int
    seconds: float
    flushes: int
    compactions: int
    watermark: int | None

    def to_dict(self) -> dict[str, Any]:
        return {
            "edges": self.edges,
            "new_edges": self.new_edges,
            "duplicates": self.duplicates,
            "emitted": self.emitted,
            "seconds": self.seconds,
            "flushes": self.flushes,
            "compactions": self.compactions,
            "watermark": self.watermark,
        }


class StreamingEngine:
    """Standing subscriptions over one live, appendable graph."""

    def __init__(
        self,
        graph: SegmentedGraph,
        *,
        tracer: TraceSink = NULL_TRACER,
    ) -> None:
        self.tracer = tracer
        self._lock = Lock()
        self._graph = graph
        graph.tracer = tracer
        self._subs: dict[str, Subscription] = {}
        self._next_sub = 1
        self._edges_ingested = 0
        self._duplicates = 0
        #: Highest event timestamp ingested so far (stream time, not wall
        #: clock); drives partial expiry.
        self._watermark: int | None = None
        self._partial_tokens = 0

    # ------------------------------------------------------------------
    # subscription lifecycle
    # ------------------------------------------------------------------
    def subscribe(
        self,
        query: QueryGraph,
        constraints: TemporalConstraints,
        options: SubscriptionOptions | None = None,
        sub_id: str | None = None,
    ) -> Subscription:
        """Register a standing pattern; returns the live subscription.

        Matches involving edges ingested *before* the subscription exist
        are not replayed — a subscription sees matches completed by edges
        arriving after it (but those matches may reach back into the
        pre-existing graph).
        """
        with self._lock:
            if sub_id is None:
                sub_id = f"s{self._next_sub}"
                self._next_sub += 1
            elif sub_id in self._subs:
                raise StreamingError(
                    f"subscription id {sub_id!r} already registered"
                )
            sub = build_subscription(sub_id, query, constraints, options)
            self._subs[sub_id] = sub
            return sub

    def unsubscribe(self, sub_id: str) -> Subscription:
        """Deregister *sub_id*; returns its final state (for metrics)."""
        with self._lock:
            sub = self._subs.pop(sub_id, None)
            if sub is None:
                raise UnknownSubscriptionError(
                    f"unknown subscription {sub_id!r}"
                )
            return sub

    def subscription(self, sub_id: str) -> Subscription:
        """The live subscription registered as *sub_id*."""
        with self._lock:
            sub = self._subs.get(sub_id)
            if sub is None:
                raise UnknownSubscriptionError(
                    f"unknown subscription {sub_id!r}"
                )
            return sub

    def subscriptions(self) -> list[str]:
        """Registered subscription ids, in registration order."""
        with self._lock:
            return list(self._subs)

    # ------------------------------------------------------------------
    # ingest
    # ------------------------------------------------------------------
    def ingest(
        self,
        edges: Iterable[EdgeInput],
        *,
        tracer: TraceSink | None = None,
    ) -> IngestReport:
        """Append *edges* and deliver the matches each one completes.

        Each element is ``(u, v, t)`` or ``(u, v, t, label)``.  Edges are
        processed strictly in the given order; duplicates (already in the
        graph) are counted but trigger no searches.  Passing *tracer*
        routes this call's delta-search and segment-merge spans to it
        (the engine's own tracer is restored afterwards).
        """
        with self._lock:
            previous = self.tracer
            if tracer is not None:
                self.tracer = tracer
                self._graph.tracer = tracer
            try:
                return self._ingest_locked(edges)
            finally:
                if tracer is not None:
                    self.tracer = previous
                    self._graph.tracer = previous

    def _ingest_locked(self, edges: Iterable[EdgeInput]) -> IngestReport:
        assert_lock_held(self._lock, "StreamingEngine._lock")
        start = time.perf_counter()
        flushes_before = self._graph.flush_count
        compactions_before = self._graph.compaction_count
        total = 0
        new_edges = 0
        duplicates = 0
        emitted = 0
        for item in edges:
            total += 1
            u, v, t = int(item[0]), int(item[1]), int(item[2])
            label = item[3] if len(item) > 3 else None
            edge_start = time.perf_counter()
            if not self._graph.append(u, v, t, label=label):
                duplicates += 1
                continue
            new_edges += 1
            if self._watermark is None or t > self._watermark:
                self._watermark = t
            edge = TemporalEdge(u, v, t)
            emitted += self._deliver_locked(edge, edge_start)
            self._expire_partials_locked()
        self._edges_ingested += new_edges
        self._duplicates += duplicates
        return IngestReport(
            edges=total,
            new_edges=new_edges,
            duplicates=duplicates,
            emitted=emitted,
            seconds=time.perf_counter() - start,
            flushes=self._graph.flush_count - flushes_before,
            compactions=self._graph.compaction_count - compactions_before,
            watermark=self._watermark,
        )

    def _deliver_locked(self, edge: TemporalEdge, edge_start: float) -> int:
        """Run every subscription's delta search for one new edge.

        Runs two call levels below ``ingest``'s ``with self._lock:``
        (one past R013's caller analysis); the ``guarded-by`` pragmas
        assert what :func:`assert_lock_held` checks at runtime.
        """
        assert_lock_held(self._lock, "StreamingEngine._lock")
        graph = self._graph  # reprolint: guarded-by(_lock)
        src_label = graph.labels[edge.u]
        dst_label = graph.labels[edge.v]
        emitted = 0
        for sub in self._subs.values():  # reprolint: guarded-by(_lock)
            sub.edges_seen += 1
            pins = [
                pin
                for pin, labels in enumerate(sub.pin_labels)
                if labels == (src_label, dst_label)
            ]
            if not pins:
                sub.searches_skipped += 1
                continue
            sub.searches += 1
            budget = sub.options.search_budget
            deadline = None if budget is None else time.monotonic() + budget
            search_start = time.perf_counter()
            with self.tracer.span(  # reprolint: guarded-by(_lock)
                "delta-search", subscription=sub.id, pins=len(pins)
            ) as span:
                found = 0
                for pin in pins:
                    for match in _pinned_delta_search(
                        graph, sub, pin, edge, sub.stats, deadline
                    ):
                        self._emit_locked(sub, match, edge, edge_start)
                        found += 1
                span.annotate(matches=found)
            sub.search_seconds += time.perf_counter() - search_start
            emitted += found
            self._open_partial_locked(sub, edge)
        return emitted

    def _emit_locked(
        self,
        sub: Subscription,
        match: Match,
        edge: TemporalEdge,
        edge_start: float,
    ) -> None:
        """Queue one emission; the bounded sink drops the oldest past
        capacity (and counts the drop) so ingest never blocks on a slow
        consumer."""
        assert_lock_held(self._lock, "StreamingEngine._lock")
        latency = time.perf_counter() - edge_start
        sub.queue.accept(
            Emission(
                subscription_id=sub.id,
                seq=sub.next_seq,
                match=match,
                edge=edge,
                latency_seconds=latency,
            )
        )
        sub.next_seq += 1
        sub.matches_emitted += 1
        sub.stats.matches += 1
        sub.last_latency_seconds = latency

    def _open_partial_locked(
        self, sub: Subscription, edge: TemporalEdge
    ) -> None:
        """Record the edge's candidacy window in the partial ledger.

        Unbounded constraint sets (``max_span == inf``) are not tracked:
        such a partial can never be declared dead, so the ledger would
        only grow.  ``partials_live`` then legitimately reads 0 and
        expiry never fires — documented in docs/STREAMING.md.
        """
        assert_lock_held(self._lock, "StreamingEngine._lock")
        if math.isinf(sub.max_span):
            return
        self._partial_tokens += 1
        heapq.heappush(
            sub.partials, (edge.t + sub.max_span, self._partial_tokens)
        )

    def _expire_partials_locked(self) -> None:
        """Drop partials whose feasible window the watermark has passed.

        Like :meth:`_deliver_locked`, runs two call levels below the
        ``with self._lock:`` in ``ingest`` — hence the pragmas.
        """
        assert_lock_held(self._lock, "StreamingEngine._lock")
        watermark = self._watermark  # reprolint: guarded-by(_lock)
        if watermark is None:
            return
        for sub in self._subs.values():  # reprolint: guarded-by(_lock)
            horizon = watermark - sub.options.lateness
            partials = sub.partials
            while partials and partials[0][0] < horizon:
                heapq.heappop(partials)
                sub.partials_expired += 1

    # ------------------------------------------------------------------
    # delivery
    # ------------------------------------------------------------------
    def poll(
        self, sub_id: str, max_items: int | None = None
    ) -> list[Emission]:
        """Drain up to *max_items* queued emissions (all, when ``None``)."""
        with self._lock:
            sub = self._subs.get(sub_id)
            if sub is None:
                raise UnknownSubscriptionError(
                    f"unknown subscription {sub_id!r}"
                )
            return sub.queue.drain(max_items)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def metrics_snapshot(self) -> dict[str, Any]:
        """Engine counters, graph segment state, and per-subscription rows."""
        with self._lock:
            return {
                "edges_ingested": self._edges_ingested,
                "duplicates": self._duplicates,
                "watermark": self._watermark,
                "graph": self._graph.describe(),
                "subscriptions": [
                    sub.describe() for sub in self._subs.values()
                ],
            }

    @property
    def graph(self) -> SegmentedGraph:
        """The engine's live graph (single-writer: do not append around
        the engine while ingest is active)."""
        # The reference itself is constructor-set and never rebound; only
        # its `tracer` attribute is swapped under the lock.
        return self._graph  # reprolint: guarded-by(_lock)


def _pinned_delta_search(
    graph: SegmentedGraph,
    sub: Subscription,
    pin: int,
    pinned_edge: TemporalEdge,
    stats: SearchStats,
    deadline: float | None = None,
) -> Iterator[Match]:
    """All matches containing *pinned_edge* at query position *pin*.

    The window-pruned twin of the CSM baselines' pinned backtracking
    search (:mod:`repro.baselines.csm.stream`): same connected edge
    order and injective vertex binding, but every position first
    intersects the STN-closure bounds into a feasible ``[lo, hi]``
    interval and bisects candidate timestamp runs down to it, crediting
    ``timestamps_expanded`` / ``timestamps_skipped`` exactly like the
    one-shot matchers.  Checking the closure bounds pairwise at bind
    time implies every raw constraint, so complete embeddings are
    emitted without a leaf post-filter.
    """
    query = sub.query
    order = sub.pin_orders[pin]
    plan = sub.window_plans[pin]
    edge_endpoints = query.edges
    query_labels = query.labels
    data_labels = graph.labels
    m = query.num_edges
    edge_map: list[TemporalEdge | None] = [None] * m
    edge_times: list[int | None] = [None] * m
    vertex_map: list[int | None] = [None] * query.num_vertices
    used: set[int] = set()

    stats.candidates_generated += 1
    stats.validations += 1
    pin_label = query.edge_label(pin)
    if pin_label is not None and graph.edge_label(
        pinned_edge.u, pinned_edge.v, pinned_edge.t
    ) != pin_label:
        stats.record_fail(1)
        return
    qa, qb = edge_endpoints[pin]
    edge_map[pin] = pinned_edge
    edge_times[pin] = pinned_edge.t
    vertex_map[qa] = pinned_edge.u
    vertex_map[qb] = pinned_edge.v
    used.add(pinned_edge.u)
    used.add(pinned_edge.v)
    required_labels = query.edge_labels
    check_edge_labels = query.has_edge_labels

    def candidates(
        pos: int, lo: float, hi: float
    ) -> Iterator[TemporalEdge]:
        edge_index = order[pos]
        a, b = edge_endpoints[edge_index]
        da, db = vertex_map[a], vertex_map[b]
        if da is not None and db is not None:
            run = graph.timestamps_list(da, db)
            for t in windowed_times(run, (lo, hi), stats):
                yield TemporalEdge(da, db, t)
        elif da is not None:
            label_b = query_labels[b]
            for x, times in graph.out_items(da):
                if x in used or data_labels[x] != label_b:
                    continue
                for t in windowed_times(times, (lo, hi), stats):
                    yield TemporalEdge(da, x, t)
        elif db is not None:
            label_a = query_labels[a]
            for x, times in graph.in_items(db):
                if x in used or data_labels[x] != label_a:
                    continue
                for t in windowed_times(times, (lo, hi), stats):
                    yield TemporalEdge(x, db, t)
        else:
            # Disconnected component seed: label-indexed scan.
            label_a = query_labels[a]
            label_b = query_labels[b]
            for du in graph.vertices_with_label(label_a):
                if du in used:
                    continue
                for dv, times in graph.out_items(du):
                    if dv in used or data_labels[dv] != label_b:
                        continue
                    for t in windowed_times(times, (lo, hi), stats):
                        yield TemporalEdge(du, dv, t)

    def dfs(pos: int) -> Iterator[Match]:
        if deadline is not None and time.monotonic() > deadline:
            stats.budget_exhausted = True
            stats.deadline_hit = True
            return
        if pos == m:
            full = cast("list[TemporalEdge]", edge_map)  # all bound here
            yield Match(
                tuple(full), cast("tuple[int, ...]", tuple(vertex_map))
            )
            return
        edge_index = order[pos]
        if edge_index == pin:
            yield from dfs(pos + 1)
            return
        window = feasible_window(plan[pos], edge_times)
        if window is None:
            stats.record_fail(pos + 1)
            return
        stats.nodes_expanded += 1
        a, b = edge_endpoints[edge_index]
        produced = False
        required = required_labels[edge_index] if check_edge_labels else None
        for cand in candidates(pos, window[0], window[1]):
            stats.candidates_generated += 1
            stats.validations += 1
            if required is not None and graph.edge_label(
                cand.u, cand.v, cand.t
            ) != required:
                stats.record_fail(pos + 1)
                continue
            new_a = vertex_map[a] is None
            new_b = vertex_map[b] is None
            edge_map[edge_index] = cand
            edge_times[edge_index] = cand.t
            if new_a:
                vertex_map[a] = cand.u
                used.add(cand.u)
            if new_b:
                vertex_map[b] = cand.v
                used.add(cand.v)
            produced = True
            yield from dfs(pos + 1)
            if new_a:
                used.discard(cand.u)
                vertex_map[a] = None
            if new_b:
                used.discard(cand.v)
                vertex_map[b] = None
            edge_map[edge_index] = None
            edge_times[edge_index] = None
        if not produced:
            stats.record_fail(pos + 1)

    yield from dfs(0)
