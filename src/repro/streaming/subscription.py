"""Standing subscriptions: a registered pattern plus its compiled plans.

A subscription is a TCSM pattern registered once against a live edge
stream.  Registration front-loads everything the per-edge delta search
needs, so ingest pays no per-edge planning cost:

* one connected query-edge **pin order** per query edge (the new data
  edge can arrive at any position of a future match, so every position
  gets an order that starts there — the classic continuous-matching
  delta decomposition);
* one **window plan** per pin order, from
  :func:`repro.core.windows.build_edge_window_plan` over the STN closure
  — at each search position the already-bound timestamps intersect into
  one feasible ``[lo, hi]`` interval, and candidates outside it are
  never materialised.  Because the closure bounds are checked pairwise
  at bind time, a completed embedding has already satisfied every raw
  constraint — the delta search needs no leaf post-filter;
* the **maximum feasible span**: the largest finite closure distance
  between any two query edges.  An ingested edge at time ``t`` can only
  join matches whose other timestamps lie in ``[t - span, t + span]``,
  which is what lets the engine expire dead partials once the stream's
  watermark has passed that window.

Infeasible constraint sets are rejected at subscribe time
(:class:`~repro.errors.StreamingError`) — they can never emit a match.
"""

from __future__ import annotations

import math
from collections.abc import Hashable
from dataclasses import dataclass, field
from typing import Any

from ..core.match import Match
from ..core.sinks import BoundedQueueSink
from ..core.stats import SearchStats
from ..core.windows import WindowBounds, build_edge_window_plan
from ..errors import StreamingError
from ..graphs import QueryGraph, TemporalConstraints, TemporalEdge

__all__ = [
    "Emission",
    "Subscription",
    "SubscriptionOptions",
    "build_subscription",
]


@dataclass(frozen=True)
class SubscriptionOptions:
    """Per-subscription knobs (all optional).

    Parameters
    ----------
    queue_capacity:
        Maximum undelivered emissions buffered between ``poll`` calls;
        when full, the oldest emission is dropped and counted in
        ``emissions_dropped`` (bounded memory beats unbounded backlog
        for a dashboard consumer).
    lateness:
        How far (in timestamp units) behind the watermark an edge may
        arrive and still be considered in-order for partial expiry.
        Purely an accounting knob — match emission is exact under any
        arrival order regardless.
    search_budget:
        Wall-clock ceiling in seconds for a single per-edge delta
        search.  ``None`` (the default) searches exhaustively, which is
        what makes streamed emissions exactly equal the one-shot match
        multiset; setting a budget trades that exactness for bounded
        ingest stalls on pathological patterns (a hit is recorded in the
        subscription's ``stats.deadline_hit``).
    """

    queue_capacity: int = 1024
    lateness: int = 0
    search_budget: float | None = None

    def __post_init__(self) -> None:
        if self.queue_capacity < 1:
            raise StreamingError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}"
            )
        if self.lateness < 0:
            raise StreamingError(
                f"lateness must be >= 0, got {self.lateness}"
            )
        if self.search_budget is not None and self.search_budget <= 0:
            raise StreamingError(
                f"search_budget must be positive, got {self.search_budget}"
            )


@dataclass(frozen=True)
class Emission:
    """One match pushed to a subscription's queue.

    ``seq`` increments per subscription; ``edge`` is the ingested edge
    that completed the match (its last-arriving edge); ``latency_seconds``
    measures append-to-emission wall clock for that edge.
    """

    subscription_id: str
    seq: int
    match: Match
    edge: TemporalEdge
    latency_seconds: float

    def to_dict(self) -> dict[str, Any]:
        """Plain-data view used for JSONL ``poll`` responses."""
        return {
            "subscription_id": self.subscription_id,
            "seq": self.seq,
            "vertices": list(self.match.vertex_map),
            "edges": [list(edge) for edge in self.match.edge_map],
            "edge": list(self.edge),
            "latency_seconds": self.latency_seconds,
        }


@dataclass
class Subscription:
    """One standing pattern plus its compiled delta-search plans.

    Built by :func:`build_subscription`; owned and mutated exclusively by
    the :class:`~repro.streaming.StreamingEngine` under its lock (the
    queue, partial-ledger and counter fields are engine-private state).
    """

    id: str
    query: QueryGraph
    constraints: TemporalConstraints
    options: SubscriptionOptions
    #: Per pin position: a connected query-edge order starting there.
    pin_orders: tuple[tuple[int, ...], ...]
    #: Per pin position: the (source label, target label) the data edge
    #: must carry for the pin to be worth searching.
    pin_labels: tuple[tuple[Hashable, Hashable], ...]
    #: Per pin position: the STN-closure window plan for its pin order.
    window_plans: tuple[tuple[WindowBounds, ...], ...]
    #: Largest finite closure distance between any two query edges
    #: (``math.inf`` when some pair is unconstrained — such partials
    #: never expire).
    max_span: float
    stats: SearchStats = field(default_factory=SearchStats)
    #: Undelivered emissions, buffered by the shared drop-oldest sink
    #: from :mod:`repro.core.sinks` (capacity =
    #: ``options.queue_capacity``; drops counted by the sink itself).
    queue: BoundedQueueSink[Emission] = field(init=False)
    #: Min-heap of ``(expiry_time, token)`` for live partial candidacies.
    partials: list[tuple[float, int]] = field(default_factory=list)
    next_seq: int = 0
    matches_emitted: int = 0
    edges_seen: int = 0
    searches: int = 0
    searches_skipped: int = 0
    partials_expired: int = 0
    #: Wall-clock spent inside this subscription's delta searches.
    search_seconds: float = 0.0
    #: Append-to-emission latency of the most recent emission.
    last_latency_seconds: float = 0.0

    def __post_init__(self) -> None:
        self.queue = BoundedQueueSink(self.options.queue_capacity)

    @property
    def emissions_dropped(self) -> int:
        """Oldest-first drops the bounded queue made past its capacity."""
        return self.queue.dropped

    def describe(self) -> dict[str, Any]:
        """Plain-data summary for ``metrics_snapshot`` / JSONL responses."""
        return {
            "id": self.id,
            "query_edges": self.query.num_edges,
            "constraints": len(self.constraints),
            "matches_emitted": self.matches_emitted,
            "queue_depth": len(self.queue),
            "emissions_dropped": self.emissions_dropped,
            "edges_seen": self.edges_seen,
            "searches": self.searches,
            "searches_skipped": self.searches_skipped,
            "partials_live": len(self.partials),
            "partials_expired": self.partials_expired,
            "search_seconds": self.search_seconds,
            "last_latency_seconds": self.last_latency_seconds,
        }


def build_subscription(
    sub_id: str,
    query: QueryGraph,
    constraints: TemporalConstraints,
    options: SubscriptionOptions | None = None,
) -> Subscription:
    """Validate the pattern and compile its per-pin delta-search plans."""
    if query.num_edges == 0:
        raise StreamingError("subscriptions need at least one query edge")
    if constraints.num_edges != query.num_edges:
        raise StreamingError(
            f"constraints expect {constraints.num_edges} query edges, "
            f"query has {query.num_edges}"
        )
    if not constraints.is_feasible():
        raise StreamingError(
            "constraint set is infeasible: no timestamp assignment can "
            "satisfy it, so the subscription would never emit"
        )
    # Imported lazily: the CSM baselines package is only needed once a
    # subscription is actually built, keeping `import repro.streaming`
    # light for service startup.
    from ..baselines.csm.stream import connected_edge_order

    pin_orders = tuple(
        tuple(connected_edge_order(query, e)) for e in range(query.num_edges)
    )
    pin_labels = tuple(
        (query.label(u), query.label(v)) for (u, v) in query.edges
    )
    window_plans = tuple(
        build_edge_window_plan(order, constraints, closure=True)
        for order in pin_orders
    )
    dist = constraints.distance_matrix()
    max_span = 0.0
    for x in range(query.num_edges):
        row = dist[x]
        for y in range(query.num_edges):
            if x == y:
                continue
            bound = row[y]
            if bound == math.inf:
                max_span = math.inf
            elif bound > max_span:
                max_span = bound
    return Subscription(
        id=sub_id,
        query=query,
        constraints=constraints,
        options=options or SubscriptionOptions(),
        pin_orders=pin_orders,
        pin_labels=pin_labels,
        window_plans=window_plans,
        max_span=max_span,
    )
