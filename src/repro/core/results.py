"""Match results and post-processing: outcomes, grouping, exporting.

:class:`MatchResult` is the outcome every engine entry point returns —
the matches the configured sink retained, the search statistics, the
timing split, and the truncation causes (deadline vs. limit, kept as
*distinct* fields).  ``mode="estimate"`` runs return no matches but a
:class:`CountEstimate` instead.

Enumeration semantics count every timestamp combination as a distinct
match (Definition 4), so a single suspicious ring with busy edges can
surface thousands of matches.  Analysts think in *embeddings* — who is
involved — with the timestamp variants as supporting evidence.
:class:`MatchSet` provides that view plus JSON/CSV export for downstream
tooling.
"""

from __future__ import annotations

import csv
import json
from collections import Counter
from collections.abc import Iterable, Iterator, Mapping
from dataclasses import dataclass, field
from pathlib import Path

from ..graphs import QueryGraph
from ..obs import Tracer

from .match import Match
from .stats import SearchStats

__all__ = ["CountEstimate", "MatchResult", "MatchSet"]


@dataclass(frozen=True)
class CountEstimate:
    """An HT match-count estimate with its normal confidence interval.

    ``count`` is the Horvitz-Thompson point estimate (mean of the
    per-probe inverse-probability weights); ``stderr`` the standard
    error of that mean over the probes; ``ci_low``/``ci_high`` the
    normal-approximation interval at ``confidence`` (clamped at 0 —
    a match count cannot be negative).  The interval quantifies probe
    variance only: with few probes on a skewed instance it can still
    miss the true count, which is the usual HT caveat.
    """

    count: float
    ci_low: float
    ci_high: float
    stderr: float
    probes: int
    confidence: float = 0.95

    def to_dict(self) -> dict[str, float | int]:
        return {
            "count": self.count,
            "ci_low": self.ci_low,
            "ci_high": self.ci_high,
            "stderr": self.stderr,
            "probes": self.probes,
            "confidence": self.confidence,
        }


@dataclass
class MatchResult:
    """Outcome of one engine run.

    ``timed_out`` is set when the wall-clock deadline expired mid-search
    and ``truncated_by_limit`` when the match limit shaped the returned
    set (early exit for unordered limits; k-of-N selection for exact
    top-k) — the two causes are distinct fields, both tagged in JSONL
    responses.  Either way the returned matches are a well-defined
    subset of the full result set rather than a silently-short answer.
    ``truncated`` is the legacy alias for limit truncation.  ``ordered``
    marks an ``order_by="earliest"`` run (matches sorted ascending by
    their latest edge timestamp); ``estimate`` carries the
    :class:`CountEstimate` of a ``mode="estimate"`` run (``None``
    otherwise).  ``trace`` carries the tracer of a traced run.
    """

    algorithm: str
    matches: list[Match]
    stats: SearchStats = field(default_factory=SearchStats)
    build_seconds: float = 0.0
    match_seconds: float = 0.0
    timed_out: bool = False
    truncated: bool = False
    truncated_by_limit: bool = False
    ordered: bool = False
    estimate: CountEstimate | None = None
    trace: Tracer | None = None

    @property
    def total_seconds(self) -> float:
        return self.build_seconds + self.match_seconds

    @property
    def num_matches(self) -> int:
        """Matches found, whether or not match objects were retained.

        Falls back to ``stats.matches`` when the run counted without
        collecting (``mode="count"`` / ``collect_matches=False``), where
        ``len(matches)`` would wrongly read 0, and to the rounded point
        estimate for ``mode="estimate"`` runs, which never enumerate.
        """
        if self.estimate is not None:
            return int(round(self.estimate.count))
        return len(self.matches) or self.stats.matches


class MatchSet:
    """An ordered, de-duplicated collection of matches.

    Construction de-duplicates exact repeats while preserving first-seen
    order (matchers never emit duplicates, but unions of multiple runs
    can).
    """

    def __init__(self, matches: Iterable[Match] = ()) -> None:
        seen: dict[Match, None] = {}
        for match in matches:
            seen.setdefault(match, None)
        self._matches: list[Match] = list(seen)

    # ------------------------------------------------------------------
    # container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._matches)

    def __iter__(self) -> Iterator[Match]:
        return iter(self._matches)

    def __contains__(self, match: Match) -> bool:
        return match in set(self._matches)

    def __or__(self, other: "MatchSet") -> "MatchSet":
        return MatchSet(list(self._matches) + list(other._matches))

    @property
    def matches(self) -> tuple[Match, ...]:
        return tuple(self._matches)

    # ------------------------------------------------------------------
    # analyst views
    # ------------------------------------------------------------------
    def embeddings(self) -> dict[tuple[int, ...], list[Match]]:
        """Matches grouped by vertex embedding, insertion-ordered."""
        groups: dict[tuple[int, ...], list[Match]] = {}
        for match in self._matches:
            groups.setdefault(match.vertex_map, []).append(match)
        return groups

    def embedding_counts(self) -> Counter[tuple[int, ...]]:
        """``vertex_map -> number of timestamp variants``."""
        return Counter(match.vertex_map for match in self._matches)

    def vertices_involved(self) -> frozenset[int]:
        """Every data vertex participating in any match."""
        involved: set[int] = set()
        for match in self._matches:
            involved.update(match.vertex_map)
        return frozenset(involved)

    def time_range(self) -> tuple[int, int] | None:
        """Earliest and latest timestamp across all matched edges."""
        times = [
            edge.t for match in self._matches for edge in match.edge_map
        ]
        if not times:
            return None
        return (min(times), max(times))

    def summary(self) -> str:
        """One-line overview."""
        window = self.time_range()
        window_part = (
            f", times {window[0]}..{window[1]}" if window else ""
        )
        return (
            f"{len(self._matches)} matches over "
            f"{len(self.embedding_counts())} embeddings involving "
            f"{len(self.vertices_involved())} vertices{window_part}"
        )

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def to_records(
        self,
        query: QueryGraph | None = None,
        vertex_names: Mapping[int, str] | None = None,
    ) -> list[dict[str, object]]:
        """Plain-data records (one per match) for JSON-ish consumers."""
        def name(v: int) -> int | str:
            if vertex_names is None:
                return v
            return vertex_names.get(v, v)

        records: list[dict[str, object]] = []
        for match in self._matches:
            record: dict[str, object] = {
                "vertices": [name(v) for v in match.vertex_map],
                "edges": [
                    {"source": name(e.u), "target": name(e.v), "time": e.t}
                    for e in match.edge_map
                ],
            }
            if query is not None:
                record["vertex_labels"] = list(query.labels)
            records.append(record)
        return records

    def save_json(
        self,
        path: str | Path,
        query: QueryGraph | None = None,
        vertex_names: Mapping[int, str] | None = None,
    ) -> None:
        """Write all matches as a JSON array."""
        with open(Path(path), "w", encoding="utf-8") as handle:
            json.dump(
                self.to_records(query=query, vertex_names=vertex_names),
                handle,
                indent=2,
            )
            handle.write("\n")

    def save_csv(self, path: str | Path) -> None:
        """Write one row per match: vertex map + per-edge timestamps."""
        with open(Path(path), "w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            if not self._matches:
                writer.writerow(["vertices", "timestamps"])
                return
            writer.writerow(["vertices", "timestamps"])
            for match in self._matches:
                writer.writerow(
                    [
                        " ".join(map(str, match.vertex_map)),
                        " ".join(map(str, match.timestamp_vector())),
                    ]
                )
