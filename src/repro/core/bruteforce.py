"""Brute-force TCSM oracle.

A deliberately simple enumerator implementing Definition 4 with none of
the paper's machinery: vertices are matched in id order with only label,
injectivity and edge-existence checks; per-edge timestamps are enumerated
by brute product with full constraint re-checks.  It shares no ordering,
filtering or pruning code with the real matchers, which is what makes it a
trustworthy differential-testing oracle for them.

Only use on small instances: complexity is the full
``O(|V|^{|V_q|} * prod |T(pair)|)`` search space.
"""

from __future__ import annotations

import itertools
import time
from collections.abc import Collection, Iterator, Sequence
from typing import cast

from ..errors import AlgorithmError
from ..graphs import GraphView, QueryGraph, TemporalConstraints, ensure_snapshot
from ..obs import TraceSink

from .match import Match
from .options import RunContext, resolve_run_context
from .partition import partition_slice
from .sinks import CollectSink, ResultSink, StopEnumeration
from .stats import SearchStats

__all__ = ["BruteForceMatcher", "brute_force_matches"]


class BruteForceMatcher:
    """Oracle matcher with the same protocol as the real matchers."""

    name = "brute-force"
    supports_partition = True

    def __init__(
        self,
        query: QueryGraph,
        constraints: TemporalConstraints,
        graph: GraphView,
        compile_graph: bool = True,
    ) -> None:
        if constraints.num_edges != query.num_edges:
            raise AlgorithmError(
                f"constraints expect {constraints.num_edges} query edges, "
                f"query has {query.num_edges}"
            )
        self.query = query
        self.constraints = constraints
        self.graph = graph
        self.compile_graph = compile_graph
        self._view: GraphView = graph
        self._resolved = False

    def _resolve_view(self) -> GraphView:
        """Freeze the data graph on first use (``run`` skips ``prepare``)."""
        if not self._resolved:
            if self.compile_graph:
                self._view = ensure_snapshot(self.graph)
            self._resolved = True
        return self._view

    def prepare(self, tracer: TraceSink | None = None) -> None:
        """Resolve the data-plane view (kept for protocol compatibility)."""
        self._resolve_view()

    def run(
        self,
        ctx: RunContext | None = None,
        *,
        limit: int | None = None,
        stats: SearchStats | None = None,
        deadline: float | None = None,
        partition: tuple[int, int] | None = None,
    ) -> Iterator[Match]:
        """Yield every match, in deterministic order.

        Run-time state arrives as one :class:`RunContext`; the individual
        keywords are the legacy shim.  ``ctx.partition=(index, count)``
        restricts the search to the slice of the first query vertex's
        candidates owned by that partition (see
        :mod:`repro.core.partition`).  Compat facade over
        :meth:`run_sink`: the returned generator replays the collected
        prefix.
        """
        context = resolve_run_context(
            ctx, limit=limit, stats=stats, deadline=deadline, partition=partition
        )
        return self._run_collected(context)

    def _run_collected(self, ctx: RunContext) -> Iterator[Match]:
        sink = CollectSink(limit=ctx.limit)
        self.run_sink(ctx, sink)
        yield from sink.finish()

    def run_sink(self, ctx: RunContext, sink: ResultSink) -> None:
        """Push every match into *sink* — the primary entry point.

        A satisfied sink raises :class:`StopEnumeration`, which unwinds
        the recursion directly; the stop is recorded on ``ctx.stats`` as
        ``budget_exhausted`` + ``limit_hit``.
        """
        try:
            self._run_sink(ctx, sink)
        except StopEnumeration:
            ctx.stats.budget_exhausted = True
            if not ctx.stats.deadline_hit:
                ctx.stats.limit_hit = True

    def _run_sink(self, ctx: RunContext, sink: ResultSink) -> None:
        deadline = ctx.deadline
        partition = ctx.partition
        search_stats = ctx.stats
        query = self.query
        graph = self._resolve_view()
        n = query.num_vertices
        vertex_map: list[int | None] = [None] * n
        # Read-only view: positions below `u` are always bound in id order.
        bound = cast("list[int]", vertex_map)
        used: set[int] = set()

        # Edges checkable once vertex u is bound (both endpoints <= u).
        edges_closing_at: list[list[int]] = [[] for _ in range(n)]
        for index, (a, b) in enumerate(query.edges):
            edges_closing_at[max(a, b)].append(index)

        def assignments(full_map: tuple[int, ...]) -> Iterator[tuple[int, ...]]:
            options: list[Sequence[int]] = []
            for index, (a, b) in enumerate(query.edges):
                required = query.edge_label(index)
                if required is None:
                    options.append(graph.timestamps(full_map[a], full_map[b]))
                else:
                    options.append(
                        graph.timestamps_with_label(
                            full_map[a], full_map[b], required
                        )
                    )
            for times in itertools.product(*options):
                if all(
                    c.is_satisfied(times[c.earlier], times[c.later])
                    for c in self.constraints
                ):
                    yield times

        root_candidates: list[int] | None = None
        if partition is not None and n > 0:
            root_candidates = partition_slice(
                graph.vertices_with_label(query.label(0)),
                partition,
                strategy=ctx.partition_strategy,
                label_of=graph.label,
            )

        def dfs(u: int) -> None:
            if deadline is not None and time.monotonic() > deadline:
                search_stats.budget_exhausted = True
                search_stats.deadline_hit = True
                raise StopEnumeration
            if u == n:
                full_map = cast(tuple[int, ...], tuple(vertex_map))
                for times in assignments(full_map):
                    search_stats.matches += 1
                    sink.accept(Match.from_vertex_map(query, full_map, times))
                return
            base: Collection[int]
            if u == 0 and root_candidates is not None:
                base = root_candidates
            else:
                base = graph.vertices_with_label(query.label(u))
            for v in base:
                if v in used:
                    continue
                ok = True
                for index in edges_closing_at[u]:
                    a, b = query.edge(index)
                    da = v if a == u else bound[a]
                    db = v if b == u else bound[b]
                    if not graph.has_pair(da, db):
                        ok = False
                        break
                if not ok:
                    continue
                vertex_map[u] = v
                used.add(v)
                dfs(u + 1)
                used.discard(v)
                vertex_map[u] = None

        dfs(0)


def brute_force_matches(
    query: QueryGraph,
    constraints: TemporalConstraints,
    graph: GraphView,
    limit: int | None = None,
) -> list[Match]:
    """All matches of the instance, as a list (convenience wrapper).

    This is the differential-testing reference path: it deliberately
    accumulates a plain list through the compat ``run`` facade instead
    of configuring a sink, so the oracle's answer shares no result-path
    code with the pipeline under test.
    """
    matcher = BruteForceMatcher(query, constraints, graph)
    matches: list[Match] = []
    for match in matcher.run(RunContext(limit=limit)):
        matches.append(match)  # reprolint: disable=R019 -- oracle reference path stays sink-free by design
    return matches
