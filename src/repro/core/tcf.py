"""Temporal-Constraint Forest — TCF (Algorithm 3, lines 1-8).

The TCF is an auxiliary graph over *query-edge* indices: two query edges
become forest-adjacent when they (a) appear together in some temporal
constraint and (b) share a query vertex.  Edges that would close a cycle
are skipped, so the structure is a forest; TCQ+ walks each tree before
jumping to the next, which keeps consecutive matched edges both
structurally adjacent and temporally related.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import QueryError
from ..graphs import QueryGraph, TemporalConstraints

__all__ = ["TCF", "build_tcf"]


class _UnionFind:
    """Minimal union-find for the cycle check of Algorithm 3 line 7."""

    def __init__(self, size: int) -> None:
        self._parent = list(range(size))

    def find(self, x: int) -> int:
        root = x
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[x] != root:  # path compression
            self._parent[x], x = root, self._parent[x]
        return root

    def union(self, a: int, b: int) -> bool:
        """Merge the sets of *a* and *b*; False if already joined (cycle)."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        self._parent[rb] = ra
        return True


@dataclass(frozen=True)
class TCF:
    """The forest: adjacency over query-edge indices."""

    adjacency: tuple[tuple[int, ...], ...]
    """``adjacency[e]``: forest neighbours of query edge ``e`` (sorted)."""

    edges: frozenset[frozenset[int]]
    """Forest edges as unordered index pairs."""

    def neighbors(self, edge_index: int) -> tuple[int, ...]:
        return self.adjacency[edge_index]

    def tree_of(self, edge_index: int) -> frozenset[int]:
        """All query edges in the same tree as *edge_index*."""
        seen = {edge_index}
        stack = [edge_index]
        while stack:
            e = stack.pop()
            for nxt in self.adjacency[e]:
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return frozenset(seen)


def build_tcf(query: QueryGraph, constraints: TemporalConstraints) -> TCF:
    """Build the Temporal-Constraint Forest (Algorithm 3, lines 1-8).

    Iteration follows the paper: for every query vertex, every ordered
    pair of distinct incident edges that co-occur in a constraint is a
    candidate forest edge; candidates closing a cycle are dropped.  The
    scan order (ascending vertex id, ascending edge indices) makes the
    forest deterministic.
    """
    if constraints.num_edges != query.num_edges:
        raise QueryError(
            f"constraints built for {constraints.num_edges} edges but query "
            f"has {query.num_edges}"
        )
    m = query.num_edges
    constrained_pairs = {
        frozenset((c.earlier, c.later)) for c in constraints
    }
    uf = _UnionFind(m)
    adjacency: list[set[int]] = [set() for _ in range(m)]
    forest_edges: set[frozenset[int]] = set()
    for u in query.vertices():
        incident = query.incident_edges(u)
        for a_pos, e_i in enumerate(incident):
            for e_j in incident[a_pos + 1 :]:
                if frozenset((e_i, e_j)) not in constrained_pairs:
                    continue
                if frozenset((e_i, e_j)) in forest_edges:
                    continue  # same pair can share two vertices (antiparallel)
                if uf.union(e_i, e_j):
                    adjacency[e_i].add(e_j)
                    adjacency[e_j].add(e_i)
                    forest_edges.add(frozenset((e_i, e_j)))
    return TCF(
        adjacency=tuple(tuple(sorted(adj)) for adj in adjacency),
        edges=frozenset(forest_edges),
    )
