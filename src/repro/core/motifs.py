"""Temporal-motif helpers: motif counting as a TCSM special case.

The paper's related work traces TCSM's lineage to temporal motifs
(Paranjape, Benson & Leskovec): small patterns whose edges must appear in
a prescribed order within a window δ.  That is exactly a TCSM instance
whose constraint set is a chain over the edge order plus a global window,
so this module provides the translation — letting the TCSM machinery
count ordered motifs directly and giving the library a bridge to the
motif literature.

* :func:`ordered_motif_constraints` — the (σ, δ) motif semantics as a
  :class:`TemporalConstraints`: consecutive edges in the given order must
  not decrease in time, and the whole motif spans at most δ.
* :func:`count_motif` — count occurrences of a small query under those
  semantics with any registered algorithm.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..errors import ConstraintError
from ..graphs import QueryGraph, TemporalConstraints, TemporalGraph

__all__ = ["ordered_motif_constraints", "count_motif"]


def ordered_motif_constraints(
    num_edges: int,
    delta: float,
    order: Sequence[int] | None = None,
) -> TemporalConstraints:
    """Constraints expressing a (σ, δ)-temporal motif.

    Parameters
    ----------
    num_edges:
        Number of query edges.
    delta:
        Global window: the last edge happens at most ``delta`` after the
        first (in the prescribed order).
    order:
        Edge indices in required temporal order; defaults to index order
        (``e_0 <= e_1 <= ... <= e_{m-1}``).

    Notes
    -----
    Consecutive pairs get the full ``delta`` as their pairwise gap (the
    binding bound is the first-to-last constraint); the STN closure
    tightens the rest automatically if a matcher opts into ``tighten``.
    """
    if order is None:
        order = list(range(num_edges))
    if sorted(order) != list(range(num_edges)):
        raise ConstraintError(
            f"order must be a permutation of 0..{num_edges - 1}, got {order}"
        )
    if delta < 0:
        raise ConstraintError(f"delta must be >= 0, got {delta}")
    triples: list[tuple[int, int, float]] = []
    for a, b in zip(order, order[1:]):
        triples.append((a, b, delta))
    if len(order) > 2:
        first, last = order[0], order[-1]
        triples.append((first, last, delta))
    return TemporalConstraints.merged(triples, num_edges=num_edges)


def count_motif(
    query: QueryGraph,
    graph: TemporalGraph,
    delta: float,
    order: Sequence[int] | None = None,
    algorithm: str = "tcsm-eve",
) -> int:
    """Number of (σ, δ)-ordered occurrences of *query* in *graph*."""
    from .engine import count_matches

    constraints = ordered_motif_constraints(
        query.num_edges, delta, order=order
    )
    return count_matches(query, constraints, graph, algorithm=algorithm)
