"""Search statistics collected by every matcher.

Exp-9 of the paper ("Observations on Failed Enumeration") compares, per
algorithm, the total number of failed enumerations and the layer of the
matching tree at which the first failure occurs — both are indicators of
pruning power.  :class:`SearchStats` records exactly those quantities, plus
a few cheap counters that the experiment drivers report.

Per-filter pruning effectiveness (the paper's Exp-9 ablation, and the
lever TimeCSM-style temporal filtering turns) is recorded in
:class:`FilterStats` buckets, one per named filter: how many candidates
the filter *considered*, how many it *pruned*, and (derived) how many
survived.  Filters are chained, so for consecutive filters on the same
candidate stream ``later.considered == earlier.survivors`` — the test
suite pins this sum-consistency.  Counters are plain attribute increments
on slotted objects and stay on in production; matchers fetch the bucket
once before their DFS and touch only ints in the hot loop.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

__all__ = ["FilterStats", "SearchStats"]


@dataclass(slots=True)
class FilterStats:
    """Pruning counters for one named candidate filter.

    ``considered`` counts candidates the filter examined; ``pruned``
    counts those it rejected.  ``survivors`` is always the difference, so
    the three are sum-consistent by construction.
    """

    considered: int = 0
    pruned: int = 0

    @property
    def survivors(self) -> int:
        return self.considered - self.pruned

    def merge(self, other: "FilterStats") -> None:
        self.considered += other.considered
        self.pruned += other.pruned

    def as_dict(self) -> dict[str, int]:
        return {
            "considered": self.considered,
            "pruned": self.pruned,
            "survivors": self.survivors,
        }


@dataclass
class SearchStats:
    """Counters filled in by a matcher during one ``run()``.

    Attributes
    ----------
    candidates_generated:
        Candidate vertices/edges produced before validation.
    validations:
        Validation calls performed (structure + temporal checks).
    failed_enumerations:
        Candidates rejected by any check, plus matching-tree nodes that
        produced zero candidates.  This is the paper's "failed
        enumerations" metric (Fig. 21, left).
    first_fail_layer:
        Shallowest matching-tree layer (1-based) at which a failure was
        recorded, or ``None`` if the search never failed (Fig. 21, right).
    fail_layers:
        Failure count per layer — a superset of what Fig. 21 plots.
    nodes_expanded:
        Matching-tree nodes visited.
    matches:
        Matches emitted.
    budget_exhausted:
        Set when the matcher stopped early due to a limit/time budget;
        counts are then lower bounds.
    deadline_hit:
        Set when the early stop was caused specifically by the wall-clock
        deadline (a subset of ``budget_exhausted``).  Lets callers
        distinguish a *timed-out* run from one merely *truncated* by a
        match limit — the service layer tags responses with exactly this
        split.
    limit_hit:
        Set when the early stop was caused by the match limit — i.e. a
        satisfied result sink raised ``StopEnumeration`` (also a subset
        of ``budget_exhausted``, and disjoint from ``deadline_hit`` in
        any single run).  Together the two flags split the old
        conflated ``truncated`` reading into its two causes.
    timestamps_expanded:
        Temporal-edge timestamps materialised from candidate pairs (the
        expansion cost edge-based matchers pay per pair and V2V pays at
        its leaves).
    timestamps_skipped:
        Timestamps in probed runs that the window kernel excluded by
        bisection *instead of* materialising them (see
        :mod:`repro.core.windows`).  For any single probed run,
        ``expanded + skipped`` equals the run length, so this counter is
        exactly the enumerate-then-discard work the kernel avoided; it
        stays 0 with the kernel disabled.
    filters:
        Per-filter :class:`FilterStats`, keyed by filter name (``"nlf"``,
        ``"ldf"``, ``"temporal"``, ...); see :meth:`filter`.
    """

    candidates_generated: int = 0
    validations: int = 0
    failed_enumerations: int = 0
    first_fail_layer: int | None = None
    fail_layers: Counter[int] = field(default_factory=Counter)
    nodes_expanded: int = 0
    matches: int = 0
    budget_exhausted: bool = False
    deadline_hit: bool = False
    limit_hit: bool = False
    timestamps_expanded: int = 0
    timestamps_skipped: int = 0
    filters: dict[str, FilterStats] = field(default_factory=dict)

    def filter(self, name: str) -> FilterStats:
        """The (created-on-first-use) counter bucket for filter *name*.

        Matchers call this once per run, outside the hot loop, and then
        increment the returned object's ints directly.
        """
        bucket = self.filters.get(name)
        if bucket is None:
            bucket = FilterStats()
            self.filters[name] = bucket
        return bucket

    def filter_summary(self) -> dict[str, dict[str, int]]:
        """Plain-data view of every filter bucket (for JSON/metrics)."""
        return {
            name: bucket.as_dict()
            for name, bucket in sorted(self.filters.items())
        }

    def record_fail(self, layer: int) -> None:
        """Record one failed enumeration at 1-based *layer*."""
        self.failed_enumerations += 1
        self.fail_layers[layer] += 1
        if self.first_fail_layer is None or layer < self.first_fail_layer:
            self.first_fail_layer = layer

    def merge(self, other: "SearchStats") -> None:
        """Accumulate *other* into self (used by multi-phase baselines)."""
        self.candidates_generated += other.candidates_generated
        self.validations += other.validations
        self.failed_enumerations += other.failed_enumerations
        self.fail_layers.update(other.fail_layers)
        self.nodes_expanded += other.nodes_expanded
        self.matches += other.matches
        self.budget_exhausted |= other.budget_exhausted
        self.deadline_hit |= other.deadline_hit
        self.limit_hit |= other.limit_hit
        self.timestamps_expanded += other.timestamps_expanded
        self.timestamps_skipped += other.timestamps_skipped
        for name, bucket in other.filters.items():
            self.filter(name).merge(bucket)
        if other.first_fail_layer is not None and (
            self.first_fail_layer is None
            or other.first_fail_layer < self.first_fail_layer
        ):
            self.first_fail_layer = other.first_fail_layer
