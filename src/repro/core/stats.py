"""Search statistics collected by every matcher.

Exp-9 of the paper ("Observations on Failed Enumeration") compares, per
algorithm, the total number of failed enumerations and the layer of the
matching tree at which the first failure occurs — both are indicators of
pruning power.  :class:`SearchStats` records exactly those quantities, plus
a few cheap counters that the experiment drivers report.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

__all__ = ["SearchStats"]


@dataclass
class SearchStats:
    """Counters filled in by a matcher during one ``run()``.

    Attributes
    ----------
    candidates_generated:
        Candidate vertices/edges produced before validation.
    validations:
        Validation calls performed (structure + temporal checks).
    failed_enumerations:
        Candidates rejected by any check, plus matching-tree nodes that
        produced zero candidates.  This is the paper's "failed
        enumerations" metric (Fig. 21, left).
    first_fail_layer:
        Shallowest matching-tree layer (1-based) at which a failure was
        recorded, or ``None`` if the search never failed (Fig. 21, right).
    fail_layers:
        Failure count per layer — a superset of what Fig. 21 plots.
    nodes_expanded:
        Matching-tree nodes visited.
    matches:
        Matches emitted.
    budget_exhausted:
        Set when the matcher stopped early due to a limit/time budget;
        counts are then lower bounds.
    deadline_hit:
        Set when the early stop was caused specifically by the wall-clock
        deadline (a subset of ``budget_exhausted``).  Lets callers
        distinguish a *timed-out* run from one merely *truncated* by a
        match limit — the service layer tags responses with exactly this
        split.
    """

    candidates_generated: int = 0
    validations: int = 0
    failed_enumerations: int = 0
    first_fail_layer: int | None = None
    fail_layers: Counter[int] = field(default_factory=Counter)
    nodes_expanded: int = 0
    matches: int = 0
    budget_exhausted: bool = False
    deadline_hit: bool = False

    def record_fail(self, layer: int) -> None:
        """Record one failed enumeration at 1-based *layer*."""
        self.failed_enumerations += 1
        self.fail_layers[layer] += 1
        if self.first_fail_layer is None or layer < self.first_fail_layer:
            self.first_fail_layer = layer

    def merge(self, other: "SearchStats") -> None:
        """Accumulate *other* into self (used by multi-phase baselines)."""
        self.candidates_generated += other.candidates_generated
        self.validations += other.validations
        self.failed_enumerations += other.failed_enumerations
        self.fail_layers.update(other.fail_layers)
        self.nodes_expanded += other.nodes_expanded
        self.matches += other.matches
        self.budget_exhausted |= other.budget_exhausted
        self.deadline_hit |= other.deadline_hit
        if other.first_fail_layer is not None and (
            self.first_fail_layer is None
            or other.first_fail_layer < self.first_fail_layer
        ):
            self.first_fail_layer = other.first_fail_layer
