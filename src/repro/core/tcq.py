"""Temporal-Constraint Query Graph — TCQ (Algorithm 1, Figures 3-4).

The TCQ fuses the query graph and the temporal-constraint graph into the
four hash tables that drive TCSM-V2V:

* **TO** (temporal order): the vertex matching order, seeded by
  temporal-constraint support (*tsup*) and grown by connectivity;
* **PD** (prec dictionary): for each vertex, the earliest-ordered already
  matched neighbour from which its candidates are generated;
* **FV** (forward vertices): the other already-ordered neighbours, whose
  data edges must be verified when the vertex is matched;
* **TC** (time-constraint table): for each constraint, the vertex ordered
  last among the endpoints of its two edges — the point at which the
  constraint becomes checkable.

Determinism: ties are broken by (a) fewest initial candidates when
candidate counts are supplied (the paper's rule), then (b) smallest vertex
id, replacing the paper's "random" fallback so runs are reproducible.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from ..errors import QueryError
from ..graphs import Constraint, QueryGraph, TemporalConstraints

from .planner import PlanCosts, choose_vertex_order, validate_plan

__all__ = ["TCQ", "build_tcq", "tcq_from_order", "vertex_tsup"]


@dataclass(frozen=True)
class TCQ:
    """The four tables of Algorithm 1, positionally indexed.

    All per-position tuples are aligned with ``order``: entry ``p``
    describes the vertex matched at layer ``p`` (0-based; the paper's
    ``λ = p + 1``).
    """

    order: tuple[int, ...]
    """TO: query vertex ids in matching order."""

    position: tuple[int, ...]
    """Inverse of ``order``: ``position[u]`` is ``u``'s layer."""

    prec: tuple[int | None, ...]
    """PD: the prec vertex of the vertex at each position (None = seed)."""

    forward: tuple[tuple[int, ...], ...]
    """FV: already-ordered neighbours other than prec, per position."""

    check_at: tuple[tuple[Constraint, ...], ...]
    """TC: constraints that become fully checkable at each position."""

    tsup: tuple[int, ...]
    """Temporal-constraint support per query vertex (Definition 5)."""

    @property
    def num_vertices(self) -> int:
        return len(self.order)


def vertex_tsup(
    query: QueryGraph, constraints: TemporalConstraints
) -> list[int]:
    """Temporal-constraint support per vertex (Definition 5 / Alg. 1 l.1-3).

    Each constraint ``(i, j, k)`` contributes 1 to every endpoint of
    ``e_i`` and every endpoint of ``e_j``; summed over constraints this
    equals ``sum(d(e)) over incident edges e`` with ``d`` the degree in the
    temporal-constraint graph.
    """
    tsup = [0] * query.num_vertices
    for c in constraints:
        for edge_index in (c.earlier, c.later):
            u, v = query.edge(edge_index)
            tsup[u] += 1
            tsup[v] += 1
    return tsup


def _paper_vertex_order(
    query: QueryGraph,
    tsup: Sequence[int],
    candidate_counts: Sequence[int] | None,
) -> tuple[int, ...]:
    """The tsup-greedy matching order of Algorithm 1 (order only)."""
    n = query.num_vertices

    def tie_key(u: int) -> tuple[int, int]:
        count = candidate_counts[u] if candidate_counts is not None else 0
        return (count, u)

    # Seed: highest tsup, then fewest candidates, then smallest id.
    seed = min(range(n), key=lambda u: (-tsup[u],) + tie_key(u))
    order: list[int] = [seed]
    in_order = [False] * n
    in_order[seed] = True
    while len(order) < n:
        remaining = [u for u in range(n) if not in_order[u]]
        # Selection rule: among the frontier (remaining vertices adjacent to
        # TO), take the highest tsup; ties by fewest candidates, then id.
        # Algorithm 1 line 8 as printed maximises |N_mu(u)| instead, but the
        # paper's own worked example (Example 2: u5 chosen over u3) follows
        # the tsup-first rule, which also matches TCQ+ (Alg. 3 line 18); we
        # implement the example's rule.  See DESIGN.md reconstruction notes.
        frontier = [
            u
            for u in remaining
            if any(in_order[w] for w in query.neighbors(u))
        ]
        pool = frontier if frontier else remaining
        chosen = min(pool, key=lambda u: (-tsup[u],) + tie_key(u))
        order.append(chosen)
        in_order[chosen] = True
    return tuple(order)


def tcq_from_order(
    query: QueryGraph,
    constraints: TemporalConstraints,
    order: Sequence[int],
) -> TCQ:
    """Build the PD/FV/TC tables for an arbitrary vertex matching *order*.

    The table rules are exactly Algorithm 1's: prec is the
    earliest-ordered already-matched neighbour (None for seeds of
    connected components — candidates then come from the initial sets),
    FV the remaining back-neighbours by position, and TC places each
    constraint at the last-ordered endpoint of its two edges.  Applying
    this to the paper's own order reproduces ``build_tcq`` output
    verbatim, which is what lets the cost-based planner substitute any
    permutation without touching the matcher.
    """
    n = query.num_vertices
    if sorted(order) != list(range(n)):
        raise QueryError(
            f"matching order must be a permutation of 0..{n - 1}, "
            f"not {tuple(order)}"
        )
    position: list[int] = [-1] * n
    for pos, u in enumerate(order):
        position[u] = pos
    prec: list[int | None] = []
    forward: list[tuple[int, ...]] = []
    for pos, u in enumerate(order):
        ordered_neighbors = [
            w for w in query.neighbors(u) if position[w] < pos
        ]
        if ordered_neighbors:
            u_prec = min(ordered_neighbors, key=lambda w: position[w])
            fv = tuple(
                sorted(
                    (w for w in ordered_neighbors if w != u_prec),
                    key=lambda w: position[w],
                )
            )
        else:
            u_prec = None
            fv = ()
        prec.append(u_prec)
        forward.append(fv)

    # TC table: each constraint becomes checkable at the last-ordered
    # vertex among the endpoints of its two edges.
    check_at: list[list[Constraint]] = [[] for _ in range(n)]
    for c in constraints:
        endpoints: set[int] = set()
        for edge_index in (c.earlier, c.later):
            a, b = query.edge(edge_index)
            endpoints.add(a)
            endpoints.add(b)
        last_pos = max(position[u] for u in endpoints)
        check_at[last_pos].append(c)

    return TCQ(
        order=tuple(order),
        position=tuple(position),
        prec=tuple(prec),
        forward=tuple(forward),
        check_at=tuple(tuple(cs) for cs in check_at),
        tsup=tuple(vertex_tsup(query, constraints)),
    )


def build_tcq(
    query: QueryGraph,
    constraints: TemporalConstraints,
    candidate_counts: Sequence[int] | None = None,
    plan: str = "paper",
    costs: PlanCosts | None = None,
) -> TCQ:
    """Construct the TCQ (Algorithm 1).

    Parameters
    ----------
    query, constraints:
        The matching problem; ``constraints.num_edges`` must equal
        ``query.num_edges``.
    candidate_counts:
        Optional per-vertex initial candidate-set sizes (from NLF), used
        for tie-breaking as in the paper; omitted ties fall back to vertex
        id.
    plan:
        ``"paper"`` (default) keeps Algorithm 1's tsup-greedy order;
        ``"cost"`` lets :mod:`repro.core.planner` pick the cheapest among
        the paper order and its heuristic alternatives (the paper order
        wins cost ties, so ``"cost"`` never changes a plan gratuitously).
    costs:
        Data-graph statistics for ``plan="cost"`` (see
        :func:`repro.core.planner.plan_costs`); defaults used if omitted.
    """
    if constraints.num_edges != query.num_edges:
        raise QueryError(
            f"constraints built for {constraints.num_edges} edges but query "
            f"has {query.num_edges}"
        )
    validate_plan(plan)
    tsup = vertex_tsup(query, constraints)
    order = _paper_vertex_order(query, tsup, candidate_counts)
    if plan == "cost":
        order = choose_vertex_order(
            query,
            constraints,
            candidate_counts,
            costs if costs is not None else PlanCosts(0, 0, 0, 0),
            extra_orders=(order,),
        )
    return tcq_from_order(query, constraints, order)
