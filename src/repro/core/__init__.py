"""Core TCSM algorithms: TCQ/TCQ+ construction and the three matchers."""

from .bruteforce import BruteForceMatcher, brute_force_matches
from .codegen import CompiledPlan, compile_enumerator, set_codegen_listener
from .e2e import E2EMatcher
from .engine import (
    MatchResult,
    Matcher,
    PartitionedMatcher,
    available_algorithms,
    count_matches,
    create_matcher,
    find_matches,
    invoke_run,
    invoke_run_sink,
    register_algorithm,
    supports_codegen,
    supports_partition,
)
from .results import CountEstimate, MatchSet
from .sinks import (
    BoundedQueueSink,
    CollectSink,
    CountSink,
    ResultSink,
    StopEnumeration,
    TopKEarliestSink,
    build_sink,
    drain_into_sink,
    match_sort_key,
)
from .estimate import estimate_match_count, estimate_with_ci
from .eve import EVEMatcher
from .explain import constraint_slack, explain_match
from .filters import (
    initial_edge_candidate_pairs,
    initial_vertex_candidates,
    ldf,
    nlf,
)
from .match import Match, is_valid_match
from .options import MatchOptions, RunContext, resolve_run_context
from .partition import check_partition, partition_slice
from .planner import (
    PLAN_CHOICES,
    PlanCosts,
    candidate_edge_orders,
    candidate_vertex_orders,
    choose_edge_order,
    choose_vertex_order,
    plan_costs,
    score_edge_order,
    score_vertex_order,
    validate_plan,
)
from .motifs import count_motif, ordered_motif_constraints
from .render import render_tcq, render_tcq_plus
from .stats import FilterStats, SearchStats
from .tcf import TCF, build_tcf
from .tcq import TCQ, build_tcq, tcq_from_order, vertex_tsup
from .tcq_plus import TCQPlus, build_tcq_plus, edge_tsup, tcq_plus_from_order
from .validate import Diagnostic, lint_pattern
from .timestamps import (
    count_timestamp_assignments,
    iter_timestamp_assignments,
    windows_compatible,
)
from .v2v import V2VMatcher
from .windows import (
    NO_WINDOW,
    build_edge_window_plan,
    constraint_slices,
    feasible_window,
    propagate_run_windows,
    window_slice,
    windowed_times,
)

__all__ = [
    "BoundedQueueSink",
    "BruteForceMatcher",
    "CollectSink",
    "CompiledPlan",
    "CountEstimate",
    "CountSink",
    "Diagnostic",
    "lint_pattern",
    "E2EMatcher",
    "EVEMatcher",
    "FilterStats",
    "Match",
    "MatchOptions",
    "MatchResult",
    "MatchSet",
    "Matcher",
    "ResultSink",
    "StopEnumeration",
    "TopKEarliestSink",
    "NO_WINDOW",
    "PLAN_CHOICES",
    "PartitionedMatcher",
    "PlanCosts",
    "RunContext",
    "SearchStats",
    "TCF",
    "TCQ",
    "TCQPlus",
    "V2VMatcher",
    "available_algorithms",
    "brute_force_matches",
    "build_edge_window_plan",
    "build_tcf",
    "build_tcq",
    "build_tcq_plus",
    "candidate_edge_orders",
    "candidate_vertex_orders",
    "check_partition",
    "choose_edge_order",
    "choose_vertex_order",
    "compile_enumerator",
    "constraint_slack",
    "constraint_slices",
    "count_matches",
    "count_motif",
    "build_sink",
    "drain_into_sink",
    "estimate_match_count",
    "estimate_with_ci",
    "invoke_run",
    "invoke_run_sink",
    "match_sort_key",
    "explain_match",
    "ordered_motif_constraints",
    "count_timestamp_assignments",
    "create_matcher",
    "edge_tsup",
    "feasible_window",
    "find_matches",
    "initial_edge_candidate_pairs",
    "initial_vertex_candidates",
    "is_valid_match",
    "iter_timestamp_assignments",
    "ldf",
    "nlf",
    "partition_slice",
    "plan_costs",
    "propagate_run_windows",
    "register_algorithm",
    "render_tcq",
    "render_tcq_plus",
    "resolve_run_context",
    "score_edge_order",
    "score_vertex_order",
    "set_codegen_listener",
    "supports_codegen",
    "supports_partition",
    "tcq_from_order",
    "tcq_plus_from_order",
    "validate_plan",
    "vertex_tsup",
    "window_slice",
    "windowed_times",
    "windows_compatible",
]
