"""Per-plan specialized enumerator compilation (``MatchOptions(codegen=True)``).

The interpreted matchers walk generic TCQ/TCQ+ tables on every DFS step:
each layer re-reads the matching order, re-discovers which endpoints are
already bound, loops over the constraint tuples, and consults the window
plan through two levels of helper calls.  All of that is *static* for a
prepared plan — the order, the per-position bound/unbound split, the
constraint gaps and the STN-closure window coefficients are fixed the
moment ``prepare()`` finishes.  This module generates, per prepared
matcher, one specialized Python enumeration function in which:

* the DFS is unrolled into one nested function per matching position;
* each position's candidate source is the single branch its statically
  known bound-endpoint pattern selects (seed / extend-out / extend-in /
  closing edge) — the other three branches are gone, as are the
  ``is None`` boundness probes;
* temporal-constraint checks are unrolled with the gap inlined as a
  constant and the current timestamp substituted symbolically;
* STN-closure window bounds are inlined as constants and the feasible
  ``[lo, hi]`` slice of each sorted timestamp run is taken by direct
  bisection on the snapshot's memoryview runs;
* graph accessors, candidate sets and label constants are closed over
  as entry-function locals, so the hot loop never touches a dict;
* all ``SearchStats`` counters accumulate in local integers flushed in a
  ``finally`` block — bit-identical totals to the interpreted path, even
  when a satisfied sink raises :class:`StopEnumeration` mid-search.

Matches are pushed through the existing :class:`ResultSink` protocol, so
limit / top-k / count modes work unchanged, and every counter the
interpreted matchers maintain is preserved exactly (the equivalence grid
in ``tests/core/test_codegen_equivalence.py`` pins match multisets *and*
pruning totals).  Shapes the generator does not support (currently:
edge-based matching of self-loop query edges, or edgeless queries) fall
back to the interpreted path silently — ``compile_enumerator`` returns
``None`` and the matcher keeps its generic loop.

``compile``/``exec`` of generated source is confined to this module by
reprolint rule R020.  To inspect what was generated, register a debug
listener::

    from repro.core import codegen

    codegen.set_codegen_listener(lambda plan: print(plan.source))

or read ``matcher.compiled_source`` after ``prepare()``.  Generated
sources are also registered with :mod:`linecache`, so tracebacks out of
a compiled enumerator show real source lines.
"""

from __future__ import annotations

import bisect
import linecache
import math
import time
from collections.abc import Callable, Hashable, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, cast

from ..graphs import TemporalEdge

from .match import Match
from .options import RunContext
from .partition import partition_slice
from .sinks import ResultSink, StopEnumeration
from .stats import SearchStats
from .timestamps import iter_timestamp_assignments, windows_compatible
from .windows import constraint_slices, propagate_run_windows, windowed_times

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .e2e import E2EMatcher
    from .v2v import V2VMatcher

__all__ = [
    "CompiledPlan",
    "compile_enumerator",
    "set_codegen_listener",
]

#: Signature of the generated entry point.
EntryFunction = Callable[[RunContext, ResultSink], None]

#: Debug hook signature: called once per successful compilation.
DebugListener = Callable[["CompiledPlan"], None]

_LISTENER: DebugListener | None = None  # reprolint: disable=R016 -- debug hook, swapped only from tests/tooling


def set_codegen_listener(listener: DebugListener | None) -> None:
    """Register *listener* to observe every successful compilation.

    The listener receives the :class:`CompiledPlan` (including its full
    generated source) right before ``compile_enumerator`` returns.  Pass
    ``None`` to remove it.  This is the debug hook documented in
    ``docs/CODEGEN.md``; it is not meant for production use.
    """
    global _LISTENER
    _LISTENER = listener


@dataclass(frozen=True)
class CompiledPlan:
    """One specialized enumerator: the generated source and its entry.

    ``entry(ctx, sink)`` has exactly the contract of the interpreted
    ``Matcher._run_sink`` — it closes over the prepared matcher's
    snapshot accessors and candidate sets, pushes matches into *sink*,
    lets a satisfied sink's :class:`StopEnumeration` propagate, and
    leaves bit-identical counters on ``ctx.stats``.
    """

    algorithm: str
    source: str
    entry: EntryFunction


class _Writer:
    """Tiny indented-source emitter for the generated module."""

    def __init__(self) -> None:
        self._lines: list[str] = []
        self._depth = 0

    def line(self, text: str = "") -> None:
        self._lines.append("    " * self._depth + text if text else "")

    def open(self, header: str) -> None:
        self.line(header)
        self._depth += 1

    def close(self) -> None:
        self._depth -= 1

    def source(self) -> str:
        return "\n".join(self._lines) + "\n"


def _flush_fails(stats: SearchStats, fails: Sequence[int]) -> None:
    """Merge layer-indexed local failure counts into *stats*.

    Ascending layer order makes ``first_fail_layer`` the smallest layer
    with a nonzero count — the same value the interpreted path's
    incremental ``record_fail`` calls produce, independent of the order
    failures occurred in.
    """
    for layer in range(1, len(fails)):
        count = fails[layer]
        if count:
            stats.failed_enumerations += count
            stats.fail_layers[layer] += count
            if stats.first_fail_layer is None or layer < stats.first_fail_layer:
                stats.first_fail_layer = layer


def _num(value: float) -> str:
    """Inline a finite numeric constant into generated source."""
    return repr(value)


def _deadline_check(w: _Writer) -> None:
    w.open("if deadline is not None and mono() > deadline:")
    w.line("stats.budget_exhausted = True")
    w.line("stats.deadline_hit = True")
    w.line("raise Stop")
    w.close()


def _emit_window(
    w: _Writer, entries: Sequence[tuple[int, float, float]]
) -> None:
    """Inline ``feasible_window`` for one position's constant bounds."""
    w.line("lo = NINF")
    w.line("hi = PINF")
    for other, hi_add, lo_sub in entries:
        w.line(f"t_o = et[{other}]")
        if hi_add < math.inf:
            w.line(f"b = t_o + {_num(hi_add)}")
            w.open("if b < hi:")
            w.line("hi = b")
            w.close()
        if lo_sub < math.inf:
            w.line(f"b = t_o - {_num(lo_sub)}")
            w.open("if b > lo:")
            w.line("lo = b")
            w.close()


# ----------------------------------------------------------------------
# E2E / EVE generation (Algorithm 4 / 5 specialized per position)
# ----------------------------------------------------------------------


def _vmatch_label_consts(
    matcher: "E2EMatcher", ns: dict[str, Any]
) -> dict[tuple[int, int], tuple[tuple[int, list[str]], ...]]:
    """Per (pos): for each vmatch entry, (query vertex, label alias names).

    Label objects are arbitrary hashables, so they travel through the
    exec namespace rather than being ``repr``-inlined.
    """
    plan: dict[tuple[int, int], tuple[tuple[int, list[str]], ...]] = {}
    if not matcher.vertex_prematching:
        return plan
    for pos, entries in enumerate(matcher._vmatch_plan):
        rendered: list[tuple[int, list[str]]] = []
        for i, (u, labels) in enumerate(entries):
            names: list[str] = []
            for k, label in enumerate(sorted(labels, key=repr)):
                name = f"_WL_{pos}_{i}_{k}"
                ns[name] = label
                names.append(name)
            rendered.append((u, names))
        plan[(pos, 0)] = tuple(rendered)
    return plan


def _compile_e2e(matcher: "E2EMatcher") -> CompiledPlan | None:
    query = matcher.query
    tcq = matcher.tcq_plus
    pair_candidates = matcher.pair_candidates
    assert tcq is not None and pair_candidates is not None
    m = query.num_edges
    n = query.num_vertices
    if any(qa == qb for qa, qb in query.edges):
        return None  # self-loop query edges keep the interpreted path
    graph = matcher._view
    data = graph.static_view()
    window_plan = matcher._window_plan
    edge_labels = query.edge_labels
    intersect = matcher.intersect_candidates

    ns: dict[str, Any] = {
        "_PART_SLICE": partition_slice,
        "_LAB": graph.label,
        "_OUT": graph.out_neighbor_ids,
        "_IN": graph.in_neighbor_ids,
        "_TS": graph.timestamps_list,
        "_TSL": graph.timestamps_with_label,
        "_NLC": data.neighbor_label_counts,
        "_BL": bisect.bisect_left,
        "_BR": bisect.bisect_right,
        "_MONO": time.monotonic,
        "_STOP": StopEnumeration,
        "_MATCH": Match,
        "_TE": TemporalEdge,
        "_NINF": -math.inf,
        "_PINF": math.inf,
        "_FLUSH_FAILS": _flush_fails,
    }
    for e in range(m):
        ns[f"_PAIRS_{e}"] = pair_candidates[e]
        if edge_labels[e] is not None:
            ns[f"_EL_{e}"] = edge_labels[e]
    vmatch_consts = _vmatch_label_consts(matcher, ns)

    # Static per-position facts: which endpoints the earlier positions
    # already bound (stack discipline makes this invariant at runtime).
    bound: set[int] = set()
    infos: list[tuple[int, int, int, bool, bool]] = []
    for e in tcq.order:
        qa, qb = query.edge(e)
        infos.append((e, qa, qb, qa in bound, qb in bound))
        bound.add(qa)
        bound.add(qb)

    # Intersect-off target labels per position (extend branches only).
    for pos, (e, qa, qb, a_bound, b_bound) in enumerate(infos):
        if not intersect:
            if a_bound and not b_bound:
                ns[f"_QL_{pos}"] = query.label(qb)
            elif b_bound and not a_bound:
                ns[f"_QL_{pos}"] = query.label(qa)

    w = _Writer()
    w.open("def _enumerate(ctx, sink):")
    w.line("stats = ctx.stats")
    w.line("deadline = ctx.deadline")
    w.line("accept = sink.accept")
    w.line('b_inj = stats.filter("injectivity")')
    w.line('b_tmp = stats.filter("temporal")')
    if matcher.vertex_prematching:
        w.line('b_vm = stats.filter("vmatch")')
    # Hoist every namespace constant into entry locals: the nested DFS
    # functions reach them through fast closure cells, not dict lookups.
    w.line("mono = _MONO")
    w.line("Stop = _STOP")
    w.line("Mk = _MATCH")
    w.line("TE = _TE")
    w.line("NINF = _NINF")
    w.line("PINF = _PINF")
    w.line("bl = _BL")
    w.line("br = _BR")
    w.line("tsl = _TS")
    w.line("tsw = _TSL")
    w.line("outn = _OUT")
    w.line("inn = _IN")
    if not intersect:
        w.line("labf = _LAB")
    if matcher.vertex_prematching:
        w.line("nlc = _NLC")
    for e in range(m):
        w.line(f"pairs{e} = _PAIRS_{e}")
        if edge_labels[e] is not None:
            w.line(f"el{e} = _EL_{e}")
    if not intersect:
        for pos in range(m):
            if f"_QL_{pos}" in ns:
                w.line(f"ql{pos} = _QL_{pos}")
    for (pos, _), entries in vmatch_consts.items():
        for i, (_, names) in enumerate(entries):
            for k, name in enumerate(names):
                w.line(f"wl{pos}_{i}_{k} = {name}")
    w.line(f"et = [0] * {m}")
    w.line(f"vm = [0] * {n}")
    w.line("used = set()")
    w.line("used_add = used.add")
    w.line("used_discard = used.discard")
    counters = [
        "cand_n",
        "val_n",
        "nodes_n",
        "match_n",
        "exp_n",
        "skp_n",
        "inj_c",
        "inj_p",
        "tmp_c",
        "tmp_p",
    ]
    if matcher.vertex_prematching:
        counters += ["vm_c", "vm_p"]
    for name in counters:
        w.line(f"{name} = 0")
    w.line(f"fails = [0] * {m + 2}")
    root_edge = tcq.order[0]
    w.open("if ctx.partition is not None:")
    w.line(
        f"root_seed = _PART_SLICE(pairs{root_edge}, ctx.partition, "
        "strategy=ctx.partition_strategy, "
        "label_of=lambda pair: _LAB(pair[0]))"
    )
    w.close()
    w.open("else:")
    w.line(f"root_seed = pairs{root_edge}")
    w.close()

    nonlocal_decl = "nonlocal " + ", ".join(counters)

    def emit_candidate_body(
        pos: int,
        e: int,
        u_expr: str,
        v_expr: str,
        seed: bool,
        new_a: bool,
        new_b: bool,
        qa: int,
        qb: int,
    ) -> None:
        """The per-timestamp candidate validation + bind + recurse block."""
        fail = f"fails[{pos + 1}] += 1"
        _deadline_check(w)
        w.line("cand_n += 1")
        w.line("val_n += 1")
        w.line("inj_c += 1")
        if seed:
            w.open(f"if {u_expr} == {v_expr}:")
            w.line("inj_p += 1")
            w.line(fail)
            w.line("continue")
            w.close()
        w.line(f"et[{e}] = t")
        w.line("tmp_c += 1")
        for c in tcq.check_at[pos]:
            later = "t" if c.later == e else f"et[{c.later}]"
            earlier = "t" if c.earlier == e else f"et[{c.earlier}]"
            w.line(f"d = {later} - {earlier}")
            w.open(f"if d < 0 or d > {c.gap}:")
            w.line("tmp_p += 1")
            w.line(fail)
            w.line("continue")
            w.close()
        if matcher.vertex_prematching:
            w.line("vm_c += 1")
            entries = vmatch_consts.get((pos, 0), ())
            for i, (u, names) in enumerate(entries):
                if not names:
                    continue
                arg = u_expr if u == qa else v_expr
                w.line(f"nc = nlc({arg})")
                cond = " or ".join(
                    f"wl{pos}_{i}_{k} not in nc" for k in range(len(names))
                )
                w.open(f"if {cond}:")
                w.line("vm_p += 1")
                w.line(fail)
                w.line("continue")
                w.close()
        if new_a:
            w.line(f"vm[{qa}] = {u_expr}")
            w.line(f"used_add({u_expr})")
        if new_b:
            w.line(f"vm[{qb}] = {v_expr}")
            w.line(f"used_add({v_expr})")
        w.line("produced = True")
        if pos + 1 == m:
            _deadline_check(w)
            w.line("match_n += 1")
            edges = ", ".join(
                f"TE(vm[{ea}], vm[{eb}], et[{idx}])"
                for idx, (ea, eb) in enumerate(query.edges)
            )
            verts = ", ".join(f"vm[{u}]" for u in range(n))
            trailing = "," if m == 1 else ""
            vtrailing = "," if n == 1 else ""
            w.line(f"accept(Mk(({edges}{trailing}), ({verts}{vtrailing})))")
        else:
            w.line(f"d{pos + 1}()")
        if new_a:
            w.line(f"used_discard({u_expr})")
        if new_b:
            w.line(f"used_discard({v_expr})")

    def emit_time_loop(
        pos: int,
        e: int,
        windowed: bool,
        src_expr: str,
        body: Callable[[], None],
    ) -> None:
        """Fetch one pair's run, slice it to the window, loop timestamps."""
        w.line(f"ts = {src_expr}")
        if windowed:
            w.line("i0 = bl(ts, lo)")
            w.line("i1 = br(ts, hi)")
            w.line("exp_n += i1 - i0")
            w.line("skp_n += len(ts) - (i1 - i0)")
            w.open("for t in ts[i0:i1]:")
        else:
            w.line("exp_n += len(ts)")
            w.open("for t in ts:")
        body()
        w.close()

    def run_expr(e: int, u: str, v: str) -> str:
        if edge_labels[e] is None:
            return f"tsl({u}, {v})"
        return f"tsw({u}, {v}, el{e})"

    for pos, (e, qa, qb, a_bound, b_bound) in enumerate(infos):
        w.open(f"def d{pos}():")
        w.line(nonlocal_decl)
        _deadline_check(w)
        w.line("nodes_n += 1")
        w.line("produced = False")
        entries = window_plan[pos] if window_plan is not None else ()
        windowed = bool(entries)
        if windowed:
            _emit_window(w, entries)
            w.open("if lo <= hi:")
        if a_bound and b_bound:
            # Closing edge: both endpoints pinned.
            w.line(f"da = vm[{qa}]")
            w.line(f"db = vm[{qb}]")
            guard = f"if (da, db) in pairs{e}:" if intersect else None
            if guard is not None:
                w.open(guard)
            emit_time_loop(
                pos,
                e,
                windowed,
                run_expr(e, "da", "db"),
                lambda pos=pos, e=e, qa=qa, qb=qb: emit_candidate_body(
                    pos, e, "da", "db", False, False, False, qa, qb
                ),
            )
            if guard is not None:
                w.close()
        elif a_bound:
            w.line(f"da = vm[{qa}]")
            w.open("for x in outn(da):")
            if intersect:
                w.open(f"if (da, x) not in pairs{e}:")
                w.line("continue")
                w.close()
            else:
                w.open(f"if labf(x) != ql{pos}:")
                w.line("continue")
                w.close()
            w.open("if x in used:")
            w.line("continue")
            w.close()
            emit_time_loop(
                pos,
                e,
                windowed,
                run_expr(e, "da", "x"),
                lambda pos=pos, e=e, qa=qa, qb=qb: emit_candidate_body(
                    pos, e, "da", "x", False, False, True, qa, qb
                ),
            )
            w.close()
        elif b_bound:
            w.line(f"db = vm[{qb}]")
            w.open("for x in inn(db):")
            if intersect:
                w.open(f"if (x, db) not in pairs{e}:")
                w.line("continue")
                w.close()
            else:
                w.open(f"if labf(x) != ql{pos}:")
                w.line("continue")
                w.close()
            w.open("if x in used:")
            w.line("continue")
            w.close()
            emit_time_loop(
                pos,
                e,
                windowed,
                run_expr(e, "x", "db"),
                lambda pos=pos, e=e, qa=qa, qb=qb: emit_candidate_body(
                    pos, e, "x", "db", False, True, False, qa, qb
                ),
            )
            w.close()
        else:
            # Seed edge of a (possibly disconnected) component; only the
            # root position honours the partition slice.
            seed_iter = "root_seed" if pos == 0 else f"pairs{e}"
            w.open(f"for du, dv in {seed_iter}:")
            if pos != 0:
                # At the root nothing is bound yet: the used-check is a
                # statically dead branch and is elided.
                w.open("if du in used or dv in used:")
                w.line("continue")
                w.close()
            emit_time_loop(
                pos,
                e,
                windowed,
                run_expr(e, "du", "dv"),
                lambda pos=pos, e=e, qa=qa, qb=qb: emit_candidate_body(
                    pos, e, "du", "dv", True, True, True, qa, qb
                ),
            )
            w.close()
        if windowed:
            w.close()
        w.open("if not produced:")
        w.line(f"fails[{pos + 1}] += 1")
        w.close()
        w.close()  # def d{pos}

    w.open("try:")
    w.line("d0()")
    w.close()
    w.open("finally:")
    w.line("stats.candidates_generated += cand_n")
    w.line("stats.validations += val_n")
    w.line("stats.nodes_expanded += nodes_n")
    w.line("stats.matches += match_n")
    w.line("stats.timestamps_expanded += exp_n")
    w.line("stats.timestamps_skipped += skp_n")
    w.line("b_inj.considered += inj_c")
    w.line("b_inj.pruned += inj_p")
    w.line("b_tmp.considered += tmp_c")
    w.line("b_tmp.pruned += tmp_p")
    if matcher.vertex_prematching:
        w.line("b_vm.considered += vm_c")
        w.line("b_vm.pruned += vm_p")
    w.line("_FLUSH_FAILS(stats, fails)")
    w.close()
    w.close()  # def _enumerate

    return _finish(matcher.name, w.source(), ns, m, n)


# ----------------------------------------------------------------------
# V2V generation (Algorithm 2 specialized per position)
# ----------------------------------------------------------------------


def _compile_v2v(matcher: "V2VMatcher") -> CompiledPlan | None:
    query = matcher.query
    tcq = matcher.tcq
    candidates = matcher.candidates
    assert tcq is not None and candidates is not None
    m = query.num_edges
    n = query.num_vertices
    if m == 0 or n == 0:
        return None  # degenerate shapes keep the interpreted path
    graph = matcher._view
    edge_labels = query.edge_labels
    edge_endpoints = query.edges
    intersect = matcher.intersect_candidates
    use_kernel = matcher._dist is not None

    ns: dict[str, Any] = {
        "_PART_SLICE": partition_slice,
        "_LAB": graph.label,
        "_OUT": graph.out_neighbor_ids,
        "_IN": graph.in_neighbor_ids,
        "_HP": graph.has_pair,
        "_TS": graph.timestamps_list,
        "_TSL": graph.timestamps_with_label,
        "_MONO": time.monotonic,
        "_STOP": StopEnumeration,
        "_MATCH": Match,
        "_TE": TemporalEdge,
        "_FLUSH_FAILS": _flush_fails,
        "_CS": constraint_slices,
        "_WC": windows_compatible,
        "_PROP": propagate_run_windows,
        "_WT": windowed_times,
        "_ITER_TS": iter_timestamp_assignments,
        "_CONS": matcher.constraints,
        "_DIST": matcher._dist,
    }
    for u in range(n):
        ns[f"_CANDS_{u}"] = candidates[u]
    for e in range(m):
        if edge_labels[e] is not None:
            ns[f"_EL_{e}"] = edge_labels[e]
    if not intersect:
        for pos, u in enumerate(tcq.order):
            ns[f"_QL_{pos}"] = query.label(u)

    w = _Writer()
    w.open("def _enumerate(ctx, sink):")
    w.line("stats = ctx.stats")
    w.line("deadline = ctx.deadline")
    w.line("accept = sink.accept")
    w.line('b_int = stats.filter("intersect")')
    w.line('b_inj = stats.filter("injectivity")')
    w.line('b_str = stats.filter("structure")')
    w.line('b_tmp = stats.filter("temporal")')
    w.line('b_join = stats.filter("timestamp-join")')
    w.line("mono = _MONO")
    w.line("Stop = _STOP")
    w.line("Mk = _MATCH")
    w.line("TE = _TE")
    w.line("tsl = _TS")
    w.line("tsw = _TSL")
    w.line("outn = _OUT")
    w.line("inn = _IN")
    w.line("hp = _HP")
    w.line("labf = _LAB")
    w.line("wc = _WC")
    if use_kernel:
        w.line("cs = _CS")
        w.line("prop = _PROP")
        w.line("wt = _WT")
        w.line("dist = _DIST")
    w.line("iter_ts = _ITER_TS")
    w.line("cons = _CONS")
    for u in range(n):
        w.line(f"cands{u} = _CANDS_{u}")
    for e in range(m):
        if edge_labels[e] is not None:
            w.line(f"el{e} = _EL_{e}")
    if not intersect:
        for pos in range(n):
            w.line(f"ql{pos} = _QL_{pos}")
    w.line(f"vm = [0] * {n}")
    w.line("used = set()")
    w.line("used_add = used.add")
    w.line("used_discard = used.discard")
    counters = [
        "cand_n",
        "val_n",
        "nodes_n",
        "match_n",
        "int_c",
        "int_p",
        "inj_c",
        "inj_p",
        "str_c",
        "str_p",
        "tmp_c",
        "tmp_p",
        "join_c",
        "join_p",
    ]
    for name in counters:
        w.line(f"{name} = 0")
    w.line(f"fails = [0] * {n + 2}")
    root_vertex = tcq.order[0]
    w.open("if ctx.partition is not None:")
    w.line(
        f"root_seed = _PART_SLICE(cands{root_vertex}, ctx.partition, "
        "strategy=ctx.partition_strategy, label_of=labf)"
    )
    w.close()
    w.open("else:")
    w.line(f"root_seed = cands{root_vertex}")
    w.close()

    nonlocal_decl = "nonlocal " + ", ".join(counters)

    def run_expr(e: int, u: str, v: str) -> str:
        if edge_labels[e] is None:
            return f"tsl({u}, {v})"
        return f"tsw({u}, {v}, el{e})"

    # Leaf: joint timestamp enumeration over the complete embedding.
    w.open("def leaf():")
    w.line("nonlocal match_n, join_c, join_p")
    _deadline_check(w)
    for e, (eu, ev) in enumerate(edge_endpoints):
        w.line(f"r{e} = {run_expr(e, f'vm[{eu}]', f'vm[{ev}]')}")
    run_names = ", ".join(f"r{e}" for e in range(m))
    total_len = " + ".join(f"len(r{e})" for e in range(m))
    if use_kernel:
        w.line(f"wins = prop([{run_names}], dist)")
        w.open("if wins is None:")
        w.line(f"stats.timestamps_skipped += {total_len}")
        w.line("join_c += 1")
        w.line("join_p += 1")
        w.line(f"fails[{n}] += 1")
        w.line("return")
        w.close()
        opts = ", ".join(f"wt(r{e}, wins[{e}], stats)" for e in range(m))
        w.line(f"opts = [{opts}]")
    else:
        w.line(f"stats.timestamps_expanded += {total_len}")
        w.line(f"opts = [{run_names}]")
    w.line("join_c += 1")
    w.line("produced = False")
    verts = ", ".join(f"vm[{u}]" for u in range(n))
    vtrailing = "," if n == 1 else ""
    w.line(f"fm = ({verts}{vtrailing})")
    w.open(
        f"for times in iter_ts(opts, cons, use_windows={matcher.use_windows}):"
    )
    w.line("produced = True")
    w.line("match_n += 1")
    edges = ", ".join(
        f"TE(fm[{eu}], fm[{ev}], times[{e}])"
        for e, (eu, ev) in enumerate(edge_endpoints)
    )
    etrailing = "," if m == 1 else ""
    w.line(f"accept(Mk(({edges}{etrailing}), fm))")
    w.close()
    w.open("if not produced:")
    w.line("join_p += 1")
    w.line(f"fails[{n}] += 1")
    w.close()
    w.close()  # def leaf

    for pos, u in enumerate(tcq.order):
        u_prec = tcq.prec[pos]
        w.open(f"def d{pos}():")
        w.line(nonlocal_decl)
        _deadline_check(w)
        w.line("nodes_n += 1")
        w.line("produced = False")
        if u_prec is None:
            base = "root_seed" if pos == 0 else f"cands{u}"
        else:
            need_out, need_in = matcher._prec_needs[pos]
            w.line(f"dp = vm[{u_prec}]")
            if need_out and need_in:
                w.line("base = [x for x in inn(dp) if hp(dp, x)]")
                base = "base"
            elif need_out:
                base = "outn(dp)"
            else:
                base = "inn(dp)"
        fail = f"fails[{pos + 1}] += 1"
        w.open(f"for v in {base}:")
        _deadline_check(w)
        w.line("cand_n += 1")
        w.line("int_c += 1")
        if u_prec is not None:
            # Seed positions iterate their own candidate set, so the
            # membership test is statically true and elided (the counter
            # stays, matching the interpreted stream).
            if intersect:
                w.open(f"if v not in cands{u}:")
            else:
                w.open(f"if labf(v) != ql{pos}:")
            w.line("int_p += 1")
            w.line(fail)
            w.line("continue")
            w.close()
        w.line("inj_c += 1")
        w.open("if v in used:")
        w.line("inj_p += 1")
        w.line(fail)
        w.line("continue")
        w.close()
        w.line("val_n += 1")
        w.line("str_c += 1")
        for wv, need_uw, need_wu in matcher._fv_checks[pos]:
            if need_uw:
                w.open(f"if not hp(v, vm[{wv}]):")
                w.line("str_p += 1")
                w.line(fail)
                w.line("continue")
                w.close()
            if need_wu:
                w.open(f"if not hp(vm[{wv}], v):")
                w.line("str_p += 1")
                w.line(fail)
                w.line("continue")
                w.close()
        w.line(f"vm[{u}] = v")
        w.line("tmp_c += 1")
        for c in tcq.check_at[pos]:
            eu, ev = edge_endpoints[c.earlier]
            lu, lv = edge_endpoints[c.later]
            w.line(f"e_ts = {run_expr(c.earlier, f'vm[{eu}]', f'vm[{ev}]')}")
            w.line(f"l_ts = {run_expr(c.later, f'vm[{lu}]', f'vm[{lv}]')}")
            if use_kernel:
                w.line(f"e_ts, l_ts = cs(e_ts, l_ts, {c.gap}, stats)")
            else:
                w.line(
                    "stats.timestamps_expanded += len(e_ts) + len(l_ts)"
                )
            w.open(f"if not wc(e_ts, l_ts, {c.gap}):")
            w.line("tmp_p += 1")
            w.line(fail)
            w.line("continue")
            w.close()
        w.line("produced = True")
        w.line("used_add(v)")
        if pos + 1 == n:
            w.line("leaf()")
        else:
            w.line(f"d{pos + 1}()")
        w.line("used_discard(v)")
        w.close()  # for v
        w.open("if not produced:")
        w.line(fail)
        w.close()
        w.close()  # def d{pos}

    w.open("try:")
    w.line("d0()")
    w.close()
    w.open("finally:")
    w.line("stats.candidates_generated += cand_n")
    w.line("stats.validations += val_n")
    w.line("stats.nodes_expanded += nodes_n")
    w.line("stats.matches += match_n")
    w.line("b_int.considered += int_c")
    w.line("b_int.pruned += int_p")
    w.line("b_inj.considered += inj_c")
    w.line("b_inj.pruned += inj_p")
    w.line("b_str.considered += str_c")
    w.line("b_str.pruned += str_p")
    w.line("b_tmp.considered += tmp_c")
    w.line("b_tmp.pruned += tmp_p")
    w.line("b_join.considered += join_c")
    w.line("b_join.pruned += join_p")
    w.line("_FLUSH_FAILS(stats, fails)")
    w.close()
    w.close()  # def _enumerate

    return _finish(matcher.name, w.source(), ns, m, n)


# ----------------------------------------------------------------------
# shared finishing: compile, register with linecache, notify the hook
# ----------------------------------------------------------------------


def _finish(
    algorithm: str, source: str, ns: dict[str, Any], m: int, n: int
) -> CompiledPlan:
    filename = f"<repro-codegen:{algorithm}:{m}e{n}v:{id(ns):x}>"
    code = compile(source, filename, "exec")
    exec(code, ns)  # noqa: S102 - confined to this module by reprolint R020
    entry = cast(EntryFunction, ns["_enumerate"])
    linecache.cache[filename] = (
        len(source),
        None,
        source.splitlines(keepends=True),
        filename,
    )
    plan = CompiledPlan(algorithm=algorithm, source=source, entry=entry)
    listener = _LISTENER
    if listener is not None:
        listener(plan)
    return plan


def compile_enumerator(matcher: Any) -> CompiledPlan | None:
    """Compile a specialized enumerator for a *prepared* matcher.

    Dispatches on the matcher's plan tables (``tcq_plus`` for the
    edge-based family, ``tcq`` for V2V) rather than concrete classes, so
    the matcher modules can import this one without a cycle.  Returns
    ``None`` — interpreted fallback — for matchers this generator does
    not support or query shapes it deliberately bails on.
    """
    if getattr(matcher, "tcq_plus", None) is not None:
        return _compile_e2e(cast("E2EMatcher", matcher))
    if getattr(matcher, "tcq", None) is not None:
        return _compile_v2v(cast("V2VMatcher", matcher))
    return None


#: Re-exported for the matchers' type annotations.
Label = Hashable
