"""Pattern linting: catch analyst mistakes before matching runs.

A TCSM pattern that is *valid* (passes construction) can still be
*useless* — disconnected queries explode candidate generation, edges left
out of every constraint multiply matches by raw timestamp counts, and
over-tight constraint combinations silently admit nothing.  The paper's
case study stresses that window tuning is where precision is won or lost
(Exp-10); :func:`lint_pattern` surfaces these issues as structured
diagnostics so tooling (the CLI, notebooks) can warn early.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..graphs import QueryGraph, TemporalConstraints, TemporalGraph

__all__ = ["Diagnostic", "lint_pattern"]


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding.

    ``severity`` is ``"error"`` (matching cannot return anything useful),
    ``"warning"`` (likely mistake or performance trap) or ``"info"``.
    """

    severity: str
    code: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - convenience
        return f"[{self.severity}] {self.code}: {self.message}"


def lint_pattern(
    query: QueryGraph,
    constraints: TemporalConstraints,
    graph: TemporalGraph | None = None,
) -> list[Diagnostic]:
    """Analyse a pattern (optionally against a data graph).

    Checks performed:

    * ``arity-mismatch`` (error) — constraints built for a different edge
      count;
    * ``infeasible`` (error) — the constraint set admits no assignment;
    * ``disconnected-query`` (warning) — weakly disconnected queries
      multiply match counts and defeat prec-based candidate generation;
    * ``unconstrained-edges`` (info) — edges in no constraint contribute
      all their timestamps to every match;
    * ``forced-equality`` (warning) — a constraint cycle forces two edges
      to share a timestamp exactly (gap effectively zero);
    * against a graph: ``label-missing`` (error) when a query vertex label
      has no data vertices, ``edge-label-missing`` (error) when a required
      edge label never occurs, ``gap-vs-span`` (info) when every gap
      exceeds the graph's whole time span (constraints are then vacuous).
    """
    diagnostics: list[Diagnostic] = []

    if constraints.num_edges != query.num_edges:
        diagnostics.append(
            Diagnostic(
                "error",
                "arity-mismatch",
                f"constraints expect {constraints.num_edges} edges, "
                f"query has {query.num_edges}",
            )
        )
        return diagnostics  # everything else would be misleading

    if not constraints.is_feasible():
        diagnostics.append(
            Diagnostic(
                "error",
                "infeasible",
                "the temporal constraints admit no timestamp assignment",
            )
        )

    if not query.is_weakly_connected():
        diagnostics.append(
            Diagnostic(
                "warning",
                "disconnected-query",
                "query is weakly disconnected; match counts are the "
                "product over components and candidate generation falls "
                "back to label scans",
            )
        )

    involved = constraints.edges_involved()
    free = [e for e in range(query.num_edges) if e not in involved]
    if free and len(constraints):
        diagnostics.append(
            Diagnostic(
                "info",
                "unconstrained-edges",
                f"edges {free} appear in no constraint; every timestamp "
                "of their matched pairs multiplies the match count",
            )
        )

    if len(constraints):
        dist = constraints.distance_matrix()
        forced = sorted(
            (x, y)
            for x in range(query.num_edges)
            for y in range(x + 1, query.num_edges)
            if dist[x][y] == 0 and dist[y][x] == 0
        )
        if forced:
            diagnostics.append(
                Diagnostic(
                    "warning",
                    "forced-equality",
                    f"constraint cycles force identical timestamps on "
                    f"edge pairs {forced}",
                )
            )

    if graph is not None:
        for u in query.vertices():
            if not graph.vertices_with_label(query.label(u)):
                diagnostics.append(
                    Diagnostic(
                        "error",
                        "label-missing",
                        f"no data vertex carries label "
                        f"{query.label(u)!r} (query vertex {u})",
                    )
                )
        for index in range(query.num_edges):
            required = query.edge_label(index)
            if required is None:
                continue
            present = any(
                graph.edge_label(e.u, e.v, e.t) == required
                for e in graph.edges()
            )
            if not present:
                diagnostics.append(
                    Diagnostic(
                        "error",
                        "edge-label-missing",
                        f"no data edge carries label {required!r} "
                        f"(query edge {index})",
                    )
                )
        if len(constraints):
            span = graph.time_span
            finite_gaps = [c.gap for c in constraints if c.gap < math.inf]
            if finite_gaps and span and min(finite_gaps) > span:
                diagnostics.append(
                    Diagnostic(
                        "info",
                        "gap-vs-span",
                        f"every constraint gap exceeds the graph's time "
                        f"span ({span}); only the ordering parts of the "
                        "constraints can prune",
                    )
                )
    return diagnostics
