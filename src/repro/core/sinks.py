"""Pluggable result sinks: the unified enumeration back end.

Matchers no longer decide what happens to a match — they push every
emission into a :class:`ResultSink` and the sink decides: accumulate
(:class:`CollectSink`), count without retaining (:class:`CountSink`),
stop after ``k`` (any sink constructed with a ``limit``), or keep the
``k`` earliest seen so far (:class:`TopKEarliestSink`, a bounded heap
keyed on each match's *latest* edge timestamp).  A satisfied sink raises
:class:`StopEnumeration` from ``accept``; push-based matchers let it
unwind their DFS recursion directly, which is what makes ``limit=1`` do
measurably less work than a full run (``stats.timestamps_expanded``
strictly drops — pinned by ``benchmarks/bench_topk.py``).

The same abstraction backs the streaming layer's per-subscription
emission queues (:class:`BoundedQueueSink`: drop-oldest, never raises)
so bounded buffering lives in exactly one place.

Pull-based matchers (the CSM baselines) are bridged by
:func:`drain_into_sink`, which closes the generator on early exit so
``GeneratorExit`` unwinds *their* recursion the same way.
"""

from __future__ import annotations

import heapq
from collections import deque
from collections.abc import Iterator
from typing import Generic, Protocol, TypeVar

from ..errors import AlgorithmError

from .match import Match
from .stats import SearchStats

__all__ = [
    "BoundedQueueSink",
    "CollectSink",
    "CountSink",
    "ResultSink",
    "StopEnumeration",
    "TopKEarliestSink",
    "build_sink",
    "drain_into_sink",
    "match_sort_key",
]

T = TypeVar("T")

#: Total-order sort key type: (max timestamp, timestamp vector, maps).
SortKey = tuple[int, tuple[int, ...], tuple[int, ...], tuple[object, ...]]


class StopEnumeration(Exception):
    """Raised by a satisfied sink to stop the enumeration early.

    Push-based matchers let it propagate through their DFS recursion (a
    genuine early exit: no further candidates are generated, no further
    timestamps expanded) and their ``run_sink`` wrapper records the stop
    in ``stats.budget_exhausted`` / ``stats.limit_hit``.
    """


def match_sort_key(match: Match) -> SortKey:
    """Total order for "earliest-first": latest edge time, then ties.

    The primary key is the match's *maximum* edge timestamp — the moment
    the match completes, which is what "earliest k matches" means for a
    temporal pattern (Mackey et al.'s chronological enumeration order).
    The remaining components (full timestamp vector, vertex embedding,
    edge tuple) break ties totally, so the top-k of any partitioned
    union is a deterministic multiset identical to the top-k of the
    full enumeration regardless of partition strategy or executor.
    """
    return (
        max(edge.t for edge in match.edge_map),
        match.timestamp_vector(),
        match.vertex_map,
        match.edge_map,
    )


class ResultSink(Protocol):
    """What matchers push matches into.

    ``accept`` is called once per emitted match, *after* the matcher has
    counted it in ``stats.matches``; it raises :class:`StopEnumeration`
    once the sink needs no further matches.  ``finish`` returns the
    retained matches in the sink's output order (empty for count-only
    sinks) and is safe to call whether or not the run stopped early.
    """

    def accept(self, match: Match) -> None: ...

    def finish(self) -> list[Match]: ...


class CollectSink:
    """Accumulate matches in emission order, optionally stopping at *limit*.

    With ``ordered=True``, ``finish()`` returns the collection sorted by
    :func:`match_sort_key` (earliest-first over the *complete*
    enumeration — use :class:`TopKEarliestSink` when a limit applies).
    """

    def __init__(self, limit: int | None = None, ordered: bool = False) -> None:
        if limit is not None and limit < 0:
            raise AlgorithmError(f"limit must be >= 0, not {limit}")
        self.limit = limit
        self.ordered = ordered
        self.matches: list[Match] = []
        if limit == 0:
            # Degenerate bound: satisfied before the first emission.
            self._full = True
        else:
            self._full = False

    def accept(self, match: Match) -> None:
        if self._full:
            raise StopEnumeration
        self.matches.append(match)
        if self.limit is not None and len(self.matches) >= self.limit:
            self._full = True
            raise StopEnumeration

    def finish(self) -> list[Match]:
        if self.ordered:
            self.matches.sort(key=match_sort_key)
        return self.matches


class CountSink:
    """Count matches without retaining them, optionally stopping at *limit*."""

    def __init__(self, limit: int | None = None) -> None:
        if limit is not None and limit < 0:
            raise AlgorithmError(f"limit must be >= 0, not {limit}")
        self.limit = limit
        self.count = 0
        if limit == 0:
            self._full = True
        else:
            self._full = False

    def accept(self, match: Match) -> None:
        if self._full:
            raise StopEnumeration
        self.count += 1
        if self.limit is not None and self.count >= self.limit:
            self._full = True
            raise StopEnumeration

    def finish(self) -> list[Match]:
        return []


class _HeapItem:
    """Heap entry with *reversed* comparison: heapq's min-root becomes
    the largest key, i.e. the current worst of the kept k — exactly the
    entry to evict when a smaller (earlier) match arrives."""

    __slots__ = ("key", "match")

    def __init__(self, key: SortKey, match: Match) -> None:
        self.key = key
        self.match = match

    def __lt__(self, other: "_HeapItem") -> bool:
        return self.key > other.key


class TopKEarliestSink:
    """Keep the ``k`` earliest matches seen (bounded max-heap of size k).

    Keyed on :func:`match_sort_key` — primary component: the match's
    maximum edge timestamp.  Never raises :class:`StopEnumeration`: the
    k earliest of the full enumeration cannot be known without seeing
    every match, so this sink trades early exit for an exact ordered
    answer.  ``finish()`` returns the survivors sorted ascending.
    """

    def __init__(self, k: int) -> None:
        if k < 0:
            raise AlgorithmError(f"limit must be >= 0, not {k}")
        self.k = k
        self.seen = 0
        self._heap: list[_HeapItem] = []
        # Primary key (max edge timestamp) of the current worst kept
        # match, cached so the common reject path below never touches
        # the heap at all.  Meaningful only once the heap holds k items.
        self._worst_primary = 0

    def accept(self, match: Match) -> None:
        self.seen += 1
        if self.k == 0:
            return
        heap = self._heap
        if len(heap) >= self.k:
            # Once the heap is full, most matches lose to the current
            # worst on the primary key alone — decide that from the max
            # edge timestamp before allocating the full tie-break key
            # (timestamp vector + embedding tuples) and a heap entry.
            latest = match.edge_map[0].t
            for edge in match.edge_map:
                if edge.t > latest:
                    latest = edge.t
            if latest > self._worst_primary:
                return
            item = _HeapItem(match_sort_key(match), match)
            if item.key < heap[0].key:
                heapq.heapreplace(heap, item)
                self._worst_primary = heap[0].key[0]
            return
        heapq.heappush(heap, _HeapItem(match_sort_key(match), match))
        if len(heap) == self.k:
            self._worst_primary = heap[0].key[0]

    @property
    def overflowed(self) -> bool:
        """True when the enumeration produced more than k matches."""
        return self.seen > self.k

    def finish(self) -> list[Match]:
        return [item.match for item in sorted(self._heap, key=lambda i: i.key)]


class BoundedQueueSink(Generic[T]):
    """Drop-oldest bounded queue (the streaming layer's emission buffer).

    Unlike the matching sinks this one never raises — a subscription
    outliving its consumer must not abort the ingest path — it evicts
    the oldest retained item instead and counts the drop.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise AlgorithmError(f"capacity must be >= 1, not {capacity}")
        self.capacity = capacity
        self.items: deque[T] = deque()
        self.dropped = 0

    def accept(self, item: T) -> None:
        if len(self.items) >= self.capacity:
            self.items.popleft()
            self.dropped += 1
        self.items.append(item)

    def __len__(self) -> int:
        return len(self.items)

    def drain(self, max_items: int | None = None) -> list[T]:
        """Remove and return up to *max_items* queued items, oldest first.

        ``None`` drains everything.
        """
        if max_items is None or max_items >= len(self.items):
            out = list(self.items)
            self.items.clear()
            return out
        return [self.items.popleft() for _ in range(max(0, max_items))]

    def finish(self) -> list[T]:
        return list(self.items)


def build_sink(
    *,
    mode: str = "enumerate",
    order_by: str = "any",
    limit: int | None = None,
    collect: bool = True,
) -> ResultSink:
    """The sink implied by one (mode, order_by, limit, collect) choice.

    ``mode="count"`` (or ``collect=False``) counts without retaining;
    ``order_by="earliest"`` with a limit keeps the k earliest via the
    bounded heap, without a limit collects everything and sorts at
    ``finish``.  ``mode="estimate"`` never reaches a sink — the engine
    routes it to the HT estimator before enumeration starts.
    """
    if mode == "estimate":  # pragma: no cover - guarded by the engine
        raise AlgorithmError("estimate mode does not enumerate into a sink")
    if mode == "count" or not collect:
        return CountSink(limit=limit)
    if order_by == "earliest":
        if limit is not None:
            return TopKEarliestSink(limit)
        return CollectSink(ordered=True)
    return CollectSink(limit=limit)


def drain_into_sink(
    iterator: Iterator[Match],
    sink: ResultSink,
    stats: SearchStats | None = None,
) -> None:
    """Bridge a pull-based (generator) matcher onto a sink.

    On :class:`StopEnumeration` the generator is closed, so
    ``GeneratorExit`` unwinds the producer's recursion — the same
    genuine early exit push-based matchers get natively — and the stop
    is recorded in *stats* when given.
    """
    try:
        for match in iterator:
            sink.accept(match)
    except StopEnumeration:
        if stats is not None:
            stats.budget_exhausted = True
            if not stats.deadline_hit:
                stats.limit_hit = True
    finally:
        close = getattr(iterator, "close", None)
        if close is not None:
            close()
