"""Temporal-Constraint Query Graph over edges — TCQ+ (Algorithm 3, Fig. 6-7).

TCQ+ plays the role of TCQ for the edge-based matchers (TCSM-E2E and
TCSM-EVE).  The matching unit becomes the query *edge*:

* **TO** orders query edges, preferring high-tsup edges and walking each
  tree of the Temporal-Constraint Forest before jumping to the next;
* **PD** assigns each edge a *prec* — the forest parent when the edge was
  reached through a TCF edge, otherwise the earliest-ordered query edge
  sharing a vertex (see DESIGN.md reconstruction notes for why the two
  cases differ);
* **FE** (forward edges) records, for each endpoint already covered by
  earlier edges but not pinned through prec, one earliest covering edge;
* **TC** is as in TCQ: a constraint is checked at the later of its two
  edges.

TCQ+ additionally records which query vertices each edge *introduces*
(``new_vertices``); TCSM-EVE runs its ``Vmatch`` look-ahead exactly on
those.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from ..errors import QueryError
from ..graphs import Constraint, QueryGraph, TemporalConstraints

from .planner import PlanCosts, choose_edge_order, validate_plan
from .tcf import TCF, build_tcf

__all__ = ["TCQPlus", "build_tcq_plus", "edge_tsup", "tcq_plus_from_order"]


@dataclass(frozen=True)
class TCQPlus:
    """The tables of Algorithm 3, positionally indexed (0-based layers)."""

    order: tuple[int, ...]
    """TO: query-edge indices in matching order."""

    position: tuple[int, ...]
    """Inverse of ``order``: ``position[e]`` is ``e``'s layer."""

    prec: tuple[int | None, ...]
    """PD: prec query edge per position (None for the seed edge)."""

    forward: tuple[tuple[int, ...], ...]
    """FE: forward edges per position (one per extra covered endpoint)."""

    check_at: tuple[tuple[Constraint, ...], ...]
    """TC: constraints fully checkable once the edge at a position matches."""

    tsup: tuple[int, ...]
    """Temporal-constraint support per query edge (degree in TC graph)."""

    new_vertices: tuple[tuple[int, ...], ...]
    """Query vertices first covered by the edge at each position."""

    tcf: TCF
    """The Temporal-Constraint Forest the order was derived from."""

    @property
    def num_edges(self) -> int:
        return len(self.order)


def edge_tsup(query: QueryGraph, constraints: TemporalConstraints) -> list[int]:
    """Per query edge, its degree in the temporal-constraint graph."""
    return [constraints.degree(e) for e in range(query.num_edges)]


def _paper_edge_order(
    query: QueryGraph,
    tcf: TCF,
    tsup: Sequence[int],
    candidate_counts: Sequence[int] | None,
) -> tuple[int, ...]:
    """The TCF-walking matching order of Algorithm 3 (order only)."""
    m = query.num_edges

    def tie_key(e: int) -> tuple[int, int]:
        count = candidate_counts[e] if candidate_counts is not None else 0
        return (count, e)

    seed = min(range(m), key=lambda e: (-tsup[e],) + tie_key(e))
    order: list[int] = [seed]
    in_order = [False] * m
    in_order[seed] = True
    # Unordered TCF-neighbours of ordered edges (the paper's delta counter).
    frontier: set[int] = {e for e in tcf.neighbors(seed) if not in_order[e]}

    def shares_vertex(a: int, b: int) -> bool:
        return bool(query.edges_share_vertex(a, b))

    while len(order) < m:
        if frontier:
            chosen = min(frontier, key=lambda e: (-tsup[e],) + tie_key(e))
        else:
            adjacent = [
                e
                for e in range(m)
                if not in_order[e]
                and any(shares_vertex(e, o) for o in order)
            ]
            if adjacent:
                chosen = min(adjacent, key=lambda e: (-tsup[e],) + tie_key(e))
            else:
                # Disconnected edge component: restart from candidates.
                remaining = [e for e in range(m) if not in_order[e]]
                chosen = min(remaining, key=lambda e: (-tsup[e],) + tie_key(e))
        order.append(chosen)
        in_order[chosen] = True
        frontier.discard(chosen)
        frontier.update(e for e in tcf.neighbors(chosen) if not in_order[e])
    return tuple(order)


def tcq_plus_from_order(
    query: QueryGraph,
    constraints: TemporalConstraints,
    order: Sequence[int],
) -> TCQPlus:
    """Build the PD/FE/TC tables for an arbitrary edge matching *order*.

    Table rules are Algorithm 3's, restated position-wise so they apply
    to any permutation: prec is the earliest-ordered TCF-neighbour when
    one exists (the forest parent through which the walk would have
    reached the edge — Fig. 6 shows PD[e4]=e7), otherwise the
    earliest-ordered vertex-sharing edge, otherwise None (disconnected
    component, candidates restart from the initial sets); FE records one
    earliest covering edge per endpoint already covered but not pinned
    through prec; TC places each constraint at the later of its two
    edges.  On the paper's own walk order these rules coincide with what
    the walk records — frontier picks always have an ordered
    TCF-neighbour, adjacent picks never do (the frontier was empty) — so
    ``plan="paper"`` output is unchanged.
    """
    m = query.num_edges
    if sorted(order) != list(range(m)):
        raise QueryError(
            f"matching order must be a permutation of 0..{m - 1}, "
            f"not {tuple(order)}"
        )
    tcf = build_tcf(query, constraints)
    position = [-1] * m
    for pos, e in enumerate(order):
        position[e] = pos

    prec: list[int | None] = []
    forward: list[tuple[int, ...]] = []
    new_vertices: list[tuple[int, ...]] = []
    covered: set[int] = set()
    first_cover: dict[int, int] = {}
    for pos, chosen in enumerate(order):
        ordered_tcf_neighbors = [
            e for e in tcf.neighbors(chosen) if position[e] < pos
        ]
        if ordered_tcf_neighbors:
            chosen_prec: int | None = min(
                ordered_tcf_neighbors, key=lambda e: position[e]
            )
        else:
            sharing = [
                e
                for e in range(m)
                if position[e] < pos and query.edges_share_vertex(chosen, e)
            ]
            if sharing:
                chosen_prec = min(sharing, key=lambda e: position[e])
            else:
                chosen_prec = None

        endpoints = query.edge(chosen)
        if chosen_prec is None:
            pinned: frozenset[int] = frozenset()
        else:
            pinned = query.edges_share_vertex(chosen, chosen_prec)
        fe: list[int] = []
        for w in endpoints:
            if w in covered and w not in pinned:
                fe.append(first_cover[w])
        introduced = tuple(
            sorted(w for w in set(endpoints) if w not in covered)
        )

        prec.append(chosen_prec)
        forward.append(tuple(fe))
        new_vertices.append(introduced)
        for w in endpoints:
            covered.add(w)
            first_cover.setdefault(w, chosen)

    check_at: list[list[Constraint]] = [[] for _ in range(m)]
    for c in constraints:
        last_pos = max(position[c.earlier], position[c.later])
        check_at[last_pos].append(c)

    return TCQPlus(
        order=tuple(order),
        position=tuple(position),
        prec=tuple(prec),
        forward=tuple(forward),
        check_at=tuple(tuple(cs) for cs in check_at),
        tsup=tuple(edge_tsup(query, constraints)),
        new_vertices=tuple(new_vertices),
        tcf=tcf,
    )


def build_tcq_plus(
    query: QueryGraph,
    constraints: TemporalConstraints,
    candidate_counts: Sequence[int] | None = None,
    plan: str = "paper",
    costs: PlanCosts | None = None,
) -> TCQPlus:
    """Construct the TCQ+ (Algorithm 3).

    Parameters
    ----------
    query, constraints:
        The matching problem.
    candidate_counts:
        Optional per-edge initial candidate-set sizes (from LDF) for
        tie-breaking; omitted ties fall back to edge index.
    plan:
        ``"paper"`` (default) keeps Algorithm 3's TCF-walking order;
        ``"cost"`` lets :mod:`repro.core.planner` pick the cheapest among
        the paper order and its heuristic alternatives (the paper order
        wins cost ties).
    costs:
        Data-graph statistics for ``plan="cost"`` (see
        :func:`repro.core.planner.plan_costs`); defaults used if omitted.
    """
    if constraints.num_edges != query.num_edges:
        raise QueryError(
            f"constraints built for {constraints.num_edges} edges but query "
            f"has {query.num_edges}"
        )
    if query.num_edges == 0:
        raise QueryError("query graph has no edges; nothing to match")
    validate_plan(plan)
    tcf = build_tcf(query, constraints)
    tsup = edge_tsup(query, constraints)
    order = _paper_edge_order(query, tcf, tsup, candidate_counts)
    if plan == "cost":
        order = choose_edge_order(
            query,
            constraints,
            candidate_counts,
            costs if costs is not None else PlanCosts(0, 0, 0, 0),
            extra_orders=(order,),
        )
    return tcq_plus_from_order(query, constraints, order)
