"""TCSM-E2E: edge-to-edge expansion matching (Algorithm 4).

Query edges are matched in TCQ+ order.  Each candidate is a concrete
*temporal* edge, so timestamps are bound immediately and every temporal
constraint is checked exactly once — at the position of its later edge —
with no post-hoc permutation.  Candidates come from the data adjacency of
the prec's match (Algorithm 4 line 14); endpoint consistency with the
partial vertex map subsumes the forward-edge (FE) intersection check and
additionally enforces vertex injectivity, which Definition 4's isomorphism
semantics require.
"""

from __future__ import annotations

import time
from collections.abc import Hashable, Iterable, Iterator, Sequence
from typing import cast

from ..errors import AlgorithmError
from ..graphs import (
    GraphView,
    QueryGraph,
    TemporalConstraints,
    TemporalEdge,
    ensure_snapshot,
)
from ..obs import NULL_TRACER, TraceSink

from .codegen import CompiledPlan, compile_enumerator
from .filters import check_prefilter, initial_edge_candidate_pairs
from .match import Match
from .options import RunContext, resolve_run_context
from .partition import partition_slice
from .planner import plan_costs, validate_plan
from .sinks import CollectSink, ResultSink, StopEnumeration
from .stats import SearchStats
from .tcq_plus import TCQPlus, build_tcq_plus
from .windows import (
    NO_WINDOW,
    WindowBounds,
    build_edge_window_plan,
    feasible_window,
    windowed_times,
)

__all__ = ["E2EMatcher"]


class E2EMatcher:
    """Matcher implementing TCSM-E2E.

    Parameters
    ----------
    query, constraints, graph:
        The matching problem.
    intersect_candidates:
        When True (default), DFS candidates must belong to the initial LDF
        candidate set of their query edge (Algorithm 4 lines 1-3); line 15
        alone would filter by endpoint labels only.  Sound either way;
        ablation knob.
    use_window_kernel:
        When True (default), each DFS layer intersects the STN-closure
        bounds of already-bound edge times into one feasible ``[lo, hi]``
        window and reads only that slice of each candidate pair's sorted
        timestamp run (see :mod:`repro.core.windows`); skipped timestamps
        are counted in ``stats.timestamps_skipped``.  False restores the
        expand-then-filter behaviour (ablation knob; match multisets are
        pinned identical either way).
    plan:
        ``"paper"`` (default) uses Algorithm 3's TCF-walking matching
        order; ``"cost"`` asks :mod:`repro.core.planner` to choose the
        cheapest order under the data graph's statistics.
    compile_graph:
        When True (default), ``prepare`` freezes the data graph into a
        CSR :class:`~repro.graphs.GraphSnapshot` and the hot loops run
        against it; pass False to run directly against the mutable
        dict-backed graph (both paths are pinned equivalent by tests).
    codegen:
        When True, ``prepare`` compiles a specialized enumeration
        function for the concrete (query shape, matching order, window
        plan) via :mod:`repro.core.codegen` and ``run_sink`` dispatches
        to it; match multisets and every ``SearchStats`` counter are
        pinned bit-identical to the interpreted loop.  Shapes the
        generator bails on fall back to the interpreted path silently.
    prefilter:
        ``"bitset"`` prunes LDF candidate *sources* with int-mask label
        prefilters before the pair scan (see
        :func:`repro.core.filters.initial_edge_candidate_pairs`);
        ``"none"`` (default) keeps the plain scan.  Candidate sets are
        identical either way.
    """

    name = "tcsm-e2e"
    supports_partition = True
    #: :mod:`repro.core.codegen` has a specializing generator for this
    #: matcher family (the engine consults this before forwarding the
    #: ``codegen`` option to the constructor).
    supports_codegen = True

    #: Subclass hook (TCSM-EVE): vertex pre-matching on newly introduced
    #: query vertices.  E2E performs no vertex look-ahead.
    vertex_prematching = False

    def __init__(
        self,
        query: QueryGraph,
        constraints: TemporalConstraints,
        graph: GraphView,
        intersect_candidates: bool = True,
        use_window_kernel: bool = True,
        plan: str = "paper",
        compile_graph: bool = True,
        codegen: bool = False,
        prefilter: str = "none",
    ) -> None:
        if constraints.num_edges != query.num_edges:
            raise AlgorithmError(
                f"constraints expect {constraints.num_edges} query edges, "
                f"query has {query.num_edges}"
            )
        if query.num_edges == 0:
            raise AlgorithmError(
                "edge-based matchers need at least one query edge"
            )
        self.query = query
        self.constraints = constraints
        self.graph = graph
        self.compile_graph = compile_graph
        #: Resolved data-plane view; ``prepare`` swaps in the frozen
        #: snapshot when ``compile_graph`` is set.
        self._view: GraphView = graph
        self.intersect_candidates = intersect_candidates
        self.use_window_kernel = use_window_kernel
        self.plan = validate_plan(plan)
        self.codegen = codegen
        self.prefilter = check_prefilter(prefilter)
        #: Specialized enumerator compiled by ``prepare`` when
        #: ``codegen`` is set; None means the interpreted loop runs.
        self._compiled: CompiledPlan | None = None
        #: Per-position window bounds for the kernel (set by ``prepare``
        #: when ``use_window_kernel`` is on; None disables the kernel).
        self._window_plan: tuple[WindowBounds, ...] | None = None
        self.pair_candidates: list[frozenset[tuple[int, int]]] | None = None
        self.tcq_plus: TCQPlus | None = None
        #: Filter counters accumulated during ``prepare`` (the engine
        #: merges them into the run stats exactly once per query).
        self.prepare_stats = SearchStats()
        self._prepared = False

    # ------------------------------------------------------------------
    # preparation (Algorithm 4 lines 1-4)
    # ------------------------------------------------------------------
    def prepare(self, tracer: TraceSink | None = None) -> None:
        """Compute LDF candidates and build the TCQ+ (idempotent)."""
        if self._prepared:
            return
        tr = tracer if tracer is not None else NULL_TRACER
        if self.compile_graph:
            with tr.span("compile-snapshot"):
                self._view = ensure_snapshot(self.graph)
        with tr.span("candidate-filter:ldf", edges=self.query.num_edges) as sp:
            self.pair_candidates = initial_edge_candidate_pairs(
                self.query,
                self._view,
                stats=self.prepare_stats,
                prefilter=self.prefilter,
            )
            sp.annotate(**self.prepare_stats.filter("ldf").as_dict())
        self.tcq_plus = build_tcq_plus(
            self.query,
            self.constraints,
            candidate_counts=[len(c) for c in self.pair_candidates],
            plan=self.plan,
            costs=plan_costs(self._view) if self.plan == "cost" else None,
        )
        if self.use_window_kernel:
            self._window_plan = build_edge_window_plan(
                self.tcq_plus.order, self.constraints
            )
        self._vmatch_plan = self._build_vmatch_plan()
        if self.codegen:
            with tr.span("codegen-compile", algorithm=self.name) as sp:
                self._compiled = compile_enumerator(self)
                sp.annotate(compiled=self._compiled is not None)
        self._prepared = True

    @property
    def compiled_source(self) -> str | None:
        """Generated source of the specialized enumerator, if compiled.

        The debug hook documented in ``docs/CODEGEN.md``; ``None`` when
        ``codegen`` is off, ``prepare`` has not run, or the generator
        bailed on this query shape.
        """
        return None if self._compiled is None else self._compiled.source

    def _build_vmatch_plan(
        self,
    ) -> tuple[tuple[tuple[int, frozenset[Hashable]], ...], ...]:
        """Per position: (new query vertex, labels its BN requires).

        ``BN(u)`` (Definition 8) is ``N(u)`` minus the vertex shared
        between the introducing edge and its prec (for the seed edge: the
        other endpoint).  Only the *labels* of BN matter to ``Vmatch``, so
        the plan stores the deduplicated label set.
        """
        query = self.query
        tcq = self.tcq_plus
        assert tcq is not None  # prepare() builds the TCQ+ before this
        plan: list[tuple[tuple[int, frozenset[Hashable]], ...]] = []
        for pos, edge_index in enumerate(tcq.order):
            entries: list[tuple[int, frozenset[Hashable]]] = []
            endpoints = set(query.edge(edge_index))
            prec = tcq.prec[pos]
            if prec is None:
                # Seed edge (or component seed): exclude the other endpoint.
                excluded_by_vertex = {
                    u: endpoints - {u} for u in tcq.new_vertices[pos]
                }
            else:
                shared = query.edges_share_vertex(edge_index, prec)
                excluded_by_vertex = {
                    u: set(shared) for u in tcq.new_vertices[pos]
                }
            for u in tcq.new_vertices[pos]:
                backward = query.neighbors(u) - excluded_by_vertex[u]
                labels = frozenset(query.label(w) for w in backward)
                entries.append((u, labels))
            plan.append(tuple(entries))
        return tuple(plan)

    # ------------------------------------------------------------------
    # matching (Algorithm 4 lines 5-27)
    # ------------------------------------------------------------------
    def run(
        self,
        ctx: RunContext | None = None,
        *,
        limit: int | None = None,
        stats: SearchStats | None = None,
        deadline: float | None = None,
        partition: tuple[int, int] | None = None,
    ) -> Iterator[Match]:
        """Yield all matches (compat facade over :meth:`run_sink`).

        Run-time state arrives as one :class:`RunContext`; the individual
        keywords are the legacy shim.  ``ctx.partition=(index, count)``
        restricts the search to the slice of the *root* edge's candidate
        pairs owned by that partition (see :mod:`repro.core.partition`);
        the ``count`` partitions jointly enumerate exactly the
        unpartitioned match set, disjointly.  ``ctx.limit`` and the
        deadline still stop the search early; the returned generator
        replays the collected prefix.
        """
        context = resolve_run_context(
            ctx, limit=limit, stats=stats, deadline=deadline, partition=partition
        )
        self.prepare()
        return self._run_collected(context)

    def _run_collected(self, ctx: RunContext) -> Iterator[Match]:
        sink = CollectSink(limit=ctx.limit)
        self.run_sink(ctx, sink)
        yield from sink.finish()

    def run_sink(self, ctx: RunContext, sink: ResultSink) -> None:
        """Push every match into *sink* — the primary entry point.

        A satisfied sink raises :class:`StopEnumeration`, which unwinds
        the DFS recursion directly (no further candidates generated, no
        further timestamps expanded); the stop is recorded on
        ``ctx.stats`` as ``budget_exhausted`` + ``limit_hit``.
        """
        self.prepare()
        try:
            if self._compiled is not None:
                self._compiled.entry(ctx, sink)
            else:
                self._run_sink(ctx, sink)
        except StopEnumeration:
            ctx.stats.budget_exhausted = True
            if not ctx.stats.deadline_hit:
                ctx.stats.limit_hit = True

    def _run_sink(self, ctx: RunContext, sink: ResultSink) -> None:
        deadline = ctx.deadline
        partition = ctx.partition
        search_stats = ctx.stats
        # prepare() populated these; the casts rebind them non-Optional
        # because narrowing does not propagate into the closures below.
        tcq = cast(TCQPlus, self.tcq_plus)
        pair_candidates = cast(
            "list[frozenset[tuple[int, int]]]", self.pair_candidates
        )
        query = self.query
        graph = self._view
        data = graph.static_view()
        m = query.num_edges
        n = query.num_vertices
        edge_map: list[TemporalEdge | None] = [None] * m
        vertex_map: list[int | None] = [None] * n
        used: set[int] = set()
        edge_times: list[int | None] = [None] * m
        # Read-only view of edge_times: a constraint is checked only at the
        # position where its later edge binds, so both reads are bound.
        bound_times = cast("list[int]", edge_times)
        root_pairs: list[tuple[int, int]] | None = None
        if partition is not None:
            root_pairs = partition_slice(
                pair_candidates[tcq.order[0]],
                partition,
                strategy=ctx.partition_strategy,
                label_of=lambda pair: graph.label(pair[0]),
            )
        # Per-filter pruning counters, fetched once so the hot loop only
        # touches ints.  Chained on the same candidate stream, so each
        # filter's ``considered`` equals the previous one's ``survivors``.
        inj_counters = search_stats.filter("injectivity")
        temporal_counters = search_stats.filter("temporal")
        vmatch_counters = (
            search_stats.filter("vmatch") if self.vertex_prematching else None
        )

        def vmatch(u: int, v: int, required_labels: frozenset[Hashable]) -> bool:
            """Vmatch (Algorithm 5 lines 24-28): label look-ahead on BN."""
            counts = data.neighbor_label_counts(v)
            return all(label in counts for label in required_labels)

        def temporal_ok(pos: int) -> bool:
            for c in tcq.check_at[pos]:
                delta = bound_times[c.later] - bound_times[c.earlier]
                if not 0 <= delta <= c.gap:
                    return False
            return True

        required_labels = query.edge_labels
        window_plan = self._window_plan

        def admissible_times(
            edge_index: int, du: int, dv: int, window: tuple[float, float]
        ) -> Sequence[int]:
            required = required_labels[edge_index]
            if required is None:
                times = graph.timestamps_list(du, dv)
            else:
                times = graph.timestamps_with_label(du, dv, required)
            return windowed_times(times, window, search_stats)

        def candidate_edges(pos: int) -> Iterator[TemporalEdge]:
            """Candidates per Algorithm 4 line 14, driven by the vertex map.

            With the window kernel on, the feasible ``[lo, hi]`` interval
            for this layer's timestamp is computed once from the bound
            edge times (it does not depend on the candidate pair), every
            run probe is bisected down to it, and a collapsed window
            short-circuits the layer with zero expansions.
            """
            edge_index = tcq.order[pos]
            if window_plan is not None:
                feasible = feasible_window(window_plan[pos], bound_times)
                if feasible is None:
                    return
                window = feasible
            else:
                window = NO_WINDOW
            qa, qb = query.edge(edge_index)
            da, db = vertex_map[qa], vertex_map[qb]
            allowed = pair_candidates[edge_index]
            if da is not None and db is not None:
                # Closing edge: both endpoints pinned (prec + FE combined).
                if self.intersect_candidates and (da, db) not in allowed:
                    return
                for t in admissible_times(edge_index, da, db, window):
                    yield TemporalEdge(da, db, t)
            elif da is not None:
                target_label = query.label(qb)
                for x in graph.out_neighbor_ids(da):
                    if self.intersect_candidates:
                        if (da, x) not in allowed:
                            continue
                    elif graph.label(x) != target_label:
                        continue
                    if x in used:
                        continue
                    for t in admissible_times(edge_index, da, x, window):
                        yield TemporalEdge(da, x, t)
            elif db is not None:
                source_label = query.label(qa)
                for x in graph.in_neighbor_ids(db):
                    if self.intersect_candidates:
                        if (x, db) not in allowed:
                            continue
                    elif graph.label(x) != source_label:
                        continue
                    if x in used:
                        continue
                    for t in admissible_times(edge_index, x, db, window):
                        yield TemporalEdge(x, db, t)
            else:
                # Seed edge of a (possibly disconnected) component.  Only
                # the root (pos 0) may be partitioned; later component
                # seeds must stay exhaustive or matches would be lost.
                seed_pairs: Iterable[tuple[int, int]] = allowed
                if pos == 0 and root_pairs is not None:
                    seed_pairs = root_pairs
                for du, dv in seed_pairs:
                    if du in used or dv in used:
                        continue
                    for t in admissible_times(edge_index, du, dv, window):
                        yield TemporalEdge(du, dv, t)

        def dfs(pos: int) -> None:
            if deadline is not None and time.monotonic() > deadline:
                search_stats.budget_exhausted = True
                search_stats.deadline_hit = True
                raise StopEnumeration
            if pos == m:
                search_stats.matches += 1
                sink.accept(
                    Match(
                        cast("tuple[TemporalEdge, ...]", tuple(edge_map)),
                        cast("tuple[int, ...]", tuple(vertex_map)),
                    )
                )
                return
            search_stats.nodes_expanded += 1
            edge_index = tcq.order[pos]
            qa, qb = query.edge(edge_index)
            produced = False
            for cand in candidate_edges(pos):
                if deadline is not None and time.monotonic() > deadline:
                    search_stats.budget_exhausted = True
                    search_stats.deadline_hit = True
                    raise StopEnumeration
                search_stats.candidates_generated += 1
                search_stats.validations += 1
                # Injectivity: a newly bound data vertex must be fresh and
                # the two endpoints of a seed edge must differ.
                inj_counters.considered += 1
                new_a = vertex_map[qa] is None
                new_b = vertex_map[qb] is None
                if new_a and new_b and cand.u == cand.v:
                    inj_counters.pruned += 1
                    search_stats.record_fail(pos + 1)
                    continue
                edge_map[edge_index] = cand
                edge_times[edge_index] = cand.t
                temporal_counters.considered += 1
                if not temporal_ok(pos):
                    temporal_counters.pruned += 1
                    edge_map[edge_index] = None
                    edge_times[edge_index] = None
                    search_stats.record_fail(pos + 1)
                    continue
                if vmatch_counters is not None:
                    vmatch_counters.considered += 1
                    if not all(
                        vmatch(u, cand.u if u == qa else cand.v, labels)
                        for u, labels in self._vmatch_plan[pos]
                    ):
                        vmatch_counters.pruned += 1
                        edge_map[edge_index] = None
                        edge_times[edge_index] = None
                        search_stats.record_fail(pos + 1)
                        continue
                if new_a:
                    vertex_map[qa] = cand.u
                    used.add(cand.u)
                if new_b:
                    vertex_map[qb] = cand.v
                    used.add(cand.v)
                produced = True
                dfs(pos + 1)
                if new_a:
                    used.discard(cand.u)
                    vertex_map[qa] = None
                if new_b:
                    used.discard(cand.v)
                    vertex_map[qb] = None
                edge_map[edge_index] = None
                edge_times[edge_index] = None
            if not produced:
                search_stats.record_fail(pos + 1)

        dfs(0)
