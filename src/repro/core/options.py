"""The consolidated matching API surface: options and run context.

Two small frozen dataclasses replace the keyword sprawl that had been
growing on :func:`repro.core.find_matches` and ``Matcher.run``:

:class:`MatchOptions`
    Everything a *caller* chooses about one end-to-end match run — limit,
    time budget, STN tightening, match collection, seed partition, and
    tracing.  Hashable and canonically fingerprintable, so the service's
    caches key on it directly instead of re-deriving ad-hoc tuples.

:class:`RunContext`
    Everything a *matcher* needs inside ``run()`` — the resolved limit,
    deadline, stats sink, partition slice, and tracer.  Matchers accept
    it as the single first parameter; the legacy ``limit=``/``stats=``/
    ``deadline=``/``partition=`` keywords remain as a back-compat shim
    that :func:`resolve_run_context` folds into a context.
"""

from __future__ import annotations

import hashlib
import json
import warnings
from dataclasses import dataclass, field, replace
from typing import Any

from ..errors import AlgorithmError
from ..obs import NULL_TRACER, TraceSink
from .partition import check_partition_strategy
from .planner import validate_plan
from .stats import SearchStats

__all__ = ["MatchOptions", "RunContext", "resolve_run_context"]


@dataclass(frozen=True)
class MatchOptions:
    """Caller-side knobs for one match run (see :func:`find_matches`).

    Attributes
    ----------
    limit:
        Stop after this many matches (``None`` = unbounded).
    time_budget:
        Wall-clock seconds for the matching phase (``None`` = unbounded).
    tighten:
        Replace the constraint set by its STN closure before matching.
    collect_matches:
        When False, matches are counted but not retained.
    partition:
        ``(index, count)`` seed partition restricting the search to one
        deterministic slice of the root candidates.
    partition_strategy:
        How the root candidates are carved into partitions: ``"stride"``
        (default, round-robin over the id order), ``"range"``
        (contiguous vertex-id shards) or ``"label"`` (shards grouped by
        root label).  See :mod:`repro.core.partition`; every strategy
        preserves the exact-multiset merge guarantee.
    plan:
        Matching-order planning mode for the TCSM matchers: ``"paper"``
        (default) keeps the paper's structural orders, ``"cost"`` lets
        :mod:`repro.core.planner` pick the cheapest order under the data
        graph's statistics.  Either way the match multiset is identical;
        only enumeration cost changes.
    order_by:
        Result ordering: ``"any"`` (default, emission order — with a
        ``limit`` the run stops after the first k found) or
        ``"earliest"`` (ascending by each match's latest edge
        timestamp; with a ``limit`` the *exact* k earliest of the full
        enumeration are kept via a bounded heap — no early exit, but a
        deterministic answer across executors and partitionings).
    mode:
        Answering mode: ``"enumerate"`` (default, return matches),
        ``"count"`` (exact count, match objects never retained) or
        ``"estimate"`` (Horvitz-Thompson sampled count with a
        confidence interval, no enumeration at all; see
        :mod:`repro.core.estimate`).
    codegen:
        Compile a specialized enumeration function for the prepared
        plan at ``prepare()`` time (see :mod:`repro.core.codegen`):
        constraint checks unrolled per position, dead candidate
        branches elided, STN window bounds inlined as constants.  The
        match multiset and every ``SearchStats`` counter are pinned
        bit-identical to the interpreted path; only wall clock
        changes.  Algorithms without a specializing generator (the
        baselines, ``brute-force``) silently run interpreted.
    trace:
        Record per-phase spans into a fresh tracer, returned on
        ``MatchResult.trace``.
    sanitize:
        Run this match under the concurrency sanitizer (write-barrier
        snapshot wrapping; see :mod:`repro.obs.sanitize`) regardless of
        the ``REPRO_SANITIZE`` environment flag.
    """

    limit: int | None = None
    time_budget: float | None = None
    tighten: bool = False
    collect_matches: bool = True
    partition: tuple[int, int] | None = None
    partition_strategy: str = "stride"
    plan: str = "paper"
    trace: bool = False
    sanitize: bool = False
    order_by: str = "any"
    mode: str = "enumerate"
    codegen: bool = False

    def __post_init__(self) -> None:
        if self.limit is not None and self.limit < 0:
            raise AlgorithmError(f"limit must be >= 0, not {self.limit}")
        if self.order_by not in ("any", "earliest"):
            raise AlgorithmError(
                f'order_by must be "any" or "earliest", not {self.order_by!r}'
            )
        if self.mode not in ("enumerate", "count", "estimate"):
            raise AlgorithmError(
                'mode must be "enumerate", "count" or "estimate", '
                f"not {self.mode!r}"
            )
        validate_plan(self.plan)
        check_partition_strategy(self.partition_strategy)
        if self.partition is not None:
            index, count = self.partition
            if count < 1 or not 0 <= index < count:
                raise AlgorithmError(
                    f"partition must satisfy 0 <= index < count, "
                    f"not {self.partition}"
                )

    def canonical_hash(self) -> str:
        """Stable hex digest of the *result-shaping* fields.

        Covers ``limit``, ``tighten``, ``collect_matches``, ``partition``,
        ``plan``, ``order_by`` and ``mode`` — the fields that change
        which answer comes back (``plan`` changes enumeration *order*,
        and with a ``limit`` the order decides which matches are
        returned; ``order_by``/``mode`` change the result's shape
        outright, so a cached complete enumeration is never served for
        a ``limit=k`` request nor vice versa).  ``codegen`` is covered
        too — not because it changes the answer (it is pinned not to)
        but because the service's *plan* cache keys on this hash and a
        compiled plan is a different artifact from an interpreted one.
        ``time_budget`` is
        excluded because only budget-independent (complete) results are
        ever cached, and ``trace``/``sanitize`` because observability
        and runtime checking never change the answer.  Equal options
        hash equal across processes (canonical
        JSON, no ``hash()`` randomisation).
        """
        payload = json.dumps(
            {
                "codegen": self.codegen,
                "limit": self.limit,
                "tighten": self.tighten,
                "collect_matches": self.collect_matches,
                "partition": (
                    None if self.partition is None else list(self.partition)
                ),
                "partition_strategy": self.partition_strategy,
                "plan": self.plan,
                "order_by": self.order_by,
                "mode": self.mode,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def replace(self, **changes: Any) -> "MatchOptions":
        """A copy with *changes* applied (convenience over dataclasses)."""
        return replace(self, **changes)


@dataclass(frozen=True)
class RunContext:
    """Resolved run-time state handed to ``Matcher.run`` as one object.

    Frozen so a context can be shared and re-derived (``with_partition``)
    without aliasing surprises; the ``stats`` object it carries is the
    one deliberately mutable channel matchers write into.
    """

    limit: int | None = None
    deadline: float | None = None
    partition: tuple[int, int] | None = None
    partition_strategy: str = "stride"
    stats: SearchStats = field(default_factory=SearchStats)
    tracer: TraceSink = NULL_TRACER

    def with_partition(self, index: int, count: int) -> "RunContext":
        """This context re-aimed at one partition slice, with fresh stats.

        The partition *strategy* is preserved, so the executor's fan-out
        derives all slices from one consistently-carved candidate order.
        """
        return replace(
            self, partition=(index, count), stats=SearchStats()
        )


def resolve_run_context(
    ctx: RunContext | None,
    limit: int | None = None,
    stats: SearchStats | None = None,
    deadline: float | None = None,
    partition: tuple[int, int] | None = None,
) -> RunContext:
    """Fold a ``RunContext`` or the legacy keywords into one context.

    Passing both a context *and* any non-default legacy keyword is an
    error — the values would silently compete otherwise.  The legacy
    keywords alone are a deprecated shim (see docs/API.md): they emit a
    :class:`DeprecationWarning` and will be removed two releases after
    the ``repro.api`` facade stabilises.
    """
    legacy_used = (
        limit is not None
        or stats is not None
        or deadline is not None
        or partition is not None
    )
    if ctx is not None:
        if legacy_used:
            raise TypeError(
                "pass either a RunContext or the legacy "
                "limit/stats/deadline/partition keywords, not both"
            )
        return ctx
    if legacy_used:
        warnings.warn(
            "the limit=/stats=/deadline=/partition= keywords on "
            "Matcher.run() are deprecated; pass a RunContext instead "
            "(see docs/API.md)",
            DeprecationWarning,
            stacklevel=3,
        )
    return RunContext(
        limit=limit,
        deadline=deadline,
        partition=partition,
        stats=stats if stats is not None else SearchStats(),
    )
