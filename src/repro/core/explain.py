"""Human-readable explanations of matches and constraint slack.

Fraud analysts (the paper's motivating users) need more than a match
list: they need to see *why* a subgraph was flagged — which interaction
mapped where, and how close each temporal constraint came to its bound.
:func:`explain_match` renders exactly that; :func:`constraint_slack`
exposes the underlying numbers for programmatic thresholds (e.g. ranking
flagged rings by urgency, as the case study's "varying urgency and
intervals" discussion suggests).
"""

from __future__ import annotations

from collections.abc import Callable, Mapping

from ..graphs import QueryGraph, TemporalConstraints, TemporalGraph

from .match import Match, is_valid_match

__all__ = ["constraint_slack", "explain_match"]


def constraint_slack(
    constraints: TemporalConstraints, match: Match
) -> list[tuple[int, float, float]]:
    """Per constraint: ``(index, delta, slack)``.

    ``delta`` is the realised ``t(later) - t(earlier)``; ``slack`` is
    ``gap - delta`` (how far from the upper bound; 0 means the match sits
    exactly on the window edge).  Tighter slack = more temporally
    coordinated behaviour.
    """
    times = match.timestamp_vector()
    report: list[tuple[int, float, float]] = []
    for index, c in enumerate(constraints):
        delta = times[c.later] - times[c.earlier]
        report.append((index, float(delta), float(c.gap - delta)))
    return report


def explain_match(
    query: QueryGraph,
    constraints: TemporalConstraints,
    graph: TemporalGraph,
    match: Match,
    vertex_names: Mapping[int, str] | Callable[[int], str] | None = None,
    time_format: Callable[[float], str] | None = None,
) -> str:
    """Render a match as an analyst-readable report.

    Parameters
    ----------
    vertex_names:
        Optional mapping or callable turning data-vertex ids into display
        names (e.g. the inverse of a builder's name map).
    time_format:
        Optional timestamp formatter (e.g. ``lambda t: f"day {t/86400:.1f}"``).

    Raises
    ------
    ValueError
        If the match is not actually valid for the instance — explaining
        an invalid match would produce misleading output.
    """
    if not is_valid_match(query, constraints, graph, match):
        raise ValueError("cannot explain an invalid match")

    if vertex_names is None:
        def name(v: int) -> str:
            return f"v{v}"
    elif callable(vertex_names):
        name = vertex_names  # type: ignore[assignment]
    else:
        mapping = vertex_names

        def name(v: int) -> str:
            return str(mapping.get(v, f"v{v}"))

    if time_format is None:
        def fmt(t: float) -> str:
            return str(t)
    else:
        fmt = time_format

    lines = ["match:"]
    lines.append("  vertices:")
    for u in query.vertices():
        v = match.vertex_map[u]
        lines.append(
            f"    q{u} [{query.label(u)}] -> {name(v)}"
        )
    lines.append("  edges:")
    for index, (qu, qv) in enumerate(query.edges):
        edge = match.edge_map[index]
        required = query.edge_label(index)
        label_part = f" [{required}]" if required is not None else ""
        lines.append(
            f"    e{index}{label_part}: {name(edge.u)} -> {name(edge.v)} "
            f"@ {fmt(edge.t)}"
        )
    if len(constraints):
        lines.append("  temporal constraints:")
        for index, delta, slack in constraint_slack(constraints, match):
            c = constraints[index]
            lines.append(
                f"    e{c.earlier} -> e{c.later}: delta={fmt(delta)} "
                f"(gap {fmt(c.gap)}, slack {fmt(slack)})"
            )
    else:
        lines.append("  temporal constraints: none")
    return "\n".join(lines)
