"""Match objects: the result type shared by all matchers.

A TCSM match (Definition 4) is an injective mapping from query edges to
temporal edges; the induced mapping on vertices must be an injective,
label-preserving homomorphism.  :class:`Match` stores both views so
downstream code can pick whichever is convenient.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import NamedTuple

from ..graphs import QueryGraph, TemporalConstraints, TemporalEdge, TemporalGraph

__all__ = ["Match", "is_valid_match"]


class Match(NamedTuple):
    """One temporal-constraint subgraph match.

    Attributes
    ----------
    edge_map:
        ``edge_map[i]`` is the temporal edge matched to query edge ``i``.
    vertex_map:
        ``vertex_map[u]`` is the data vertex matched to query vertex ``u``.
    """

    edge_map: tuple[TemporalEdge, ...]
    vertex_map: tuple[int, ...]

    @classmethod
    def from_vertex_map(
        cls,
        query: QueryGraph,
        vertex_map: Sequence[int],
        timestamps: Sequence[int],
    ) -> "Match":
        """Assemble a match from a vertex embedding plus per-edge timestamps.

        ``timestamps[i]`` is the interaction time chosen for query edge
        ``i``; endpoints come from the embedding.
        """
        edge_map = tuple(
            TemporalEdge(vertex_map[u], vertex_map[v], timestamps[i])
            for i, (u, v) in enumerate(query.edges)
        )
        return cls(edge_map, tuple(vertex_map))

    def timestamp_vector(self) -> tuple[int, ...]:
        """Per-query-edge timestamps, in edge-index order."""
        return tuple(edge.t for edge in self.edge_map)


def is_valid_match(
    query: QueryGraph,
    constraints: TemporalConstraints,
    graph: TemporalGraph,
    match: Match,
) -> bool:
    """Check a match against Definition 4 from first principles.

    Used by the test-suite oracle and available to users as a debugging
    aid.  Verifies: arity, vertex injectivity, label preservation, edge
    consistency (endpoints follow the vertex map and the temporal edge
    exists in the data graph), and every temporal constraint.
    """
    if len(match.edge_map) != query.num_edges:
        return False
    if len(match.vertex_map) != query.num_vertices:
        return False
    # Vertex injectivity and label preservation.
    if len(set(match.vertex_map)) != query.num_vertices:
        return False
    for u in query.vertices():
        v = match.vertex_map[u]
        if not 0 <= v < graph.num_vertices:
            return False
        if graph.label(v) != query.label(u):
            return False
    # Edge consistency, existence, and (optional) edge-label agreement.
    for i, (qu, qv) in enumerate(query.edges):
        edge = match.edge_map[i]
        if edge.u != match.vertex_map[qu] or edge.v != match.vertex_map[qv]:
            return False
        if edge.t not in graph.timestamps(edge.u, edge.v):
            return False
        required = query.edge_label(i)
        if required is not None and graph.edge_label(
            edge.u, edge.v, edge.t
        ) != required:
            return False
    # Temporal constraints.
    times = match.timestamp_vector()
    for c in constraints:
        if not c.is_satisfied(times[c.earlier], times[c.later]):
            return False
    return True
