"""Joint timestamp assignment under temporal constraints.

TCSM-V2V matches *vertices* first; once a full vertex embedding is found,
every query edge maps to a data vertex pair that may carry several
timestamps, and the algorithm must enumerate the timestamp combinations
that jointly satisfy the constraint set — the "edge permutation" cost the
paper attributes to vertex-based matching.  The static RI-DS baseline has
exactly the same post-processing step.

The solver here is a small backtracking search over query edges with two
prunings:

* window propagation — the STN distance matrix gives, for every assigned
  edge ``x`` and unassigned edge ``y``, the implied window
  ``t_y ∈ [t_x - D[y][x], t_x + D[x][y]]``; timestamps outside the
  intersection of all such windows are skipped via bisection;
* constraint ordering — edges are assigned most-constrained-first so
  violations surface early.

There is also an existence check (:func:`windows_compatible`) used for the
partial pruning inside TCSM-V2V's DFS.
"""

from __future__ import annotations

import bisect
import math
from collections.abc import Iterator, Sequence

from ..graphs import TemporalConstraints

__all__ = [
    "iter_timestamp_assignments",
    "count_timestamp_assignments",
    "windows_compatible",
]


def windows_compatible(
    earlier_times: Sequence[int],
    later_times: Sequence[int],
    gap: float,
) -> bool:
    """Does some pair ``(a, b)`` with ``0 <= b - a <= gap`` exist?

    Both sequences must be sorted ascending.  Two-pointer sweep, O(n+m).
    """
    i = 0
    for b in later_times:
        # Advance past earlier-times that are too small to reach b.
        while i < len(earlier_times) and b - earlier_times[i] > gap:
            i += 1
        if i == len(earlier_times):
            return False
        if earlier_times[i] <= b:
            return True
    return False


def iter_timestamp_assignments(
    options: Sequence[Sequence[int]],
    constraints: TemporalConstraints,
    use_windows: bool = True,
) -> Iterator[tuple[int, ...]]:
    """Yield every per-edge timestamp choice satisfying *constraints*.

    Parameters
    ----------
    options:
        ``options[i]`` is the sorted sequence of available timestamps for
        query edge ``i`` (the data pair's interaction times).
    constraints:
        The temporal-constraint set; ``constraints.num_edges`` must equal
        ``len(options)``.
    use_windows:
        When True (default) the STN distance matrix prunes candidate
        timestamps by implied windows; turning it off reproduces the naive
        enumeration (ablation knob).

    Yields
    ------
    tuple of timestamps, index-aligned with *options*.
    """
    m = len(options)
    if m != constraints.num_edges:
        raise ValueError(
            f"got {m} option lists for {constraints.num_edges} query edges"
        )
    if any(len(times) == 0 for times in options):
        return

    dist = constraints.distance_matrix() if use_windows else None

    # Assign most-constrained edges first; unconstrained edges go last so
    # their (free) choices multiply after all checks passed.
    order = sorted(range(m), key=lambda e: -constraints.degree(e))
    position = [0] * m
    for pos, edge in enumerate(order):
        position[edge] = pos

    # Pre-index constraints by the later-assigned side so each is checked
    # exactly once, as soon as both sides are bound.
    checks: list[list[tuple[int, int, float, bool]]] = [[] for _ in range(m)]
    for c in constraints:
        if position[c.earlier] < position[c.later]:
            checks[position[c.later]].append(
                (c.earlier, c.later, c.gap, True)
            )
        else:
            checks[position[c.earlier]].append(
                (c.earlier, c.later, c.gap, False)
            )

    chosen: list[int] = [0] * m
    assigned: list[int] = []

    def candidates_at(pos: int) -> Iterator[int]:
        edge = order[pos]
        times = options[edge]
        if dist is None or not assigned:
            yield from times
            return
        lo, hi = -math.inf, math.inf
        for other in assigned:
            t_other = chosen[other]
            hi = min(hi, t_other + dist[other][edge])
            lo = max(lo, t_other - dist[edge][other])
        if lo > hi:
            return
        left = 0 if lo == -math.inf else bisect.bisect_left(times, lo)
        right = len(times) if hi == math.inf else bisect.bisect_right(times, hi)
        yield from times[left:right]

    def backtrack(pos: int) -> Iterator[tuple[int, ...]]:
        if pos == m:
            yield tuple(chosen)
            return
        edge = order[pos]
        for t in candidates_at(pos):
            ok = True
            for earlier, later, gap, current_is_later in checks[pos]:
                if current_is_later:
                    delta = t - chosen[earlier]
                else:
                    delta = chosen[later] - t
                if not 0 <= delta <= gap:
                    ok = False
                    break
            if not ok:
                continue
            chosen[edge] = t
            assigned.append(edge)
            yield from backtrack(pos + 1)
            assigned.pop()
        return

    yield from backtrack(0)


def count_timestamp_assignments(
    options: Sequence[Sequence[int]],
    constraints: TemporalConstraints,
    use_windows: bool = True,
) -> int:
    """Number of satisfying timestamp combinations (see the iterator)."""
    return sum(
        1
        for _ in iter_timestamp_assignments(
            options, constraints, use_windows=use_windows
        )
    )
