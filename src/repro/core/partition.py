"""Seed-space partitioning shared by the partition-aware matchers.

A *partition* ``(index, count)`` restricts a matcher to one deterministic
slice of the search tree's root candidates — the candidate set of the
first TCQ/TCQ+ position only.  Because every match binds the root to
exactly one candidate, the match sets of the ``count`` partitions are
pairwise disjoint and their union is exactly the unpartitioned match
set; this is what lets the service layer fan one query out across a
worker pool and merge results without deduplication.

Three *strategies* decide which candidates a partition owns, all with
the same disjoint-and-exhaustive guarantee (each is a chunking of one
fixed total order over the candidates):

``"stride"`` (default)
    ``sorted(candidates)[index::count]`` — round-robin over the
    id-sorted candidates, spreading dense id regions evenly.  This is
    the original root-candidate slicing.
``"range"``
    Contiguous id ranges: partition ``i`` owns the ``i``-th of ``count``
    equal chunks of the id-sorted candidates.  Turns partitions into
    *vertex-range data shards* — each worker's probes concentrate on one
    contiguous region of the CSR arrays, which is the cache- and
    page-locality-friendly choice for shared-memory fan-out.
``"label"``
    Contiguous chunks of the candidates sorted by ``(label, id)`` via
    the caller-supplied ``label_of`` key.  Groups same-labelled roots
    into the same shard (falls back to ``"range"`` ordering when no
    ``label_of`` is available).

Only the root position may be partitioned: restricting a *later* seed
(e.g. the seed of a second connected component) would cross-product the
restrictions and lose matches.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable, Iterable
from typing import TypeVar

from ..errors import AlgorithmError

__all__ = [
    "PARTITION_STRATEGIES",
    "check_partition",
    "check_partition_strategy",
    "partition_slice",
]

_OrderedT = TypeVar("_OrderedT", int, "tuple[int, int]")

#: Recognised values for the ``partition_strategy`` knob.
PARTITION_STRATEGIES: tuple[str, ...] = ("stride", "range", "label")


def check_partition(partition: tuple[int, int]) -> tuple[int, int]:
    """Validate a ``(index, count)`` partition; returns it normalised.

    Raises :class:`AlgorithmError` on a malformed partition so a bad
    service request fails loudly instead of silently dropping matches.
    """
    try:
        index, count = partition
    except (TypeError, ValueError):
        raise AlgorithmError(
            f"partition must be an (index, count) pair, got {partition!r}"
        ) from None
    if count < 1 or not 0 <= index < count:
        raise AlgorithmError(
            f"partition index {index} out of range for count {count}"
        )
    return index, count


def check_partition_strategy(strategy: str) -> str:
    """Validate a partition strategy name; returns it unchanged."""
    if strategy not in PARTITION_STRATEGIES:
        known = ", ".join(PARTITION_STRATEGIES)
        raise AlgorithmError(
            f"unknown partition strategy {strategy!r}; available: {known}"
        )
    return strategy


def _chunk(ordered: list[_OrderedT], index: int, count: int) -> list[_OrderedT]:
    """The *index*-th of *count* contiguous, balanced chunks of *ordered*."""
    n = len(ordered)
    return ordered[index * n // count : (index + 1) * n // count]


def partition_slice(
    candidates: Iterable[_OrderedT],
    partition: tuple[int, int],
    strategy: str = "stride",
    label_of: Callable[[_OrderedT], Hashable] | None = None,
) -> list[_OrderedT]:
    """Deterministic slice of *candidates* owned by *partition*.

    Candidates are totally ordered first (by id, or by ``(label, id)``
    for the ``"label"`` strategy) so the assignment is independent of
    set iteration order; see the module docstring for how each strategy
    carves that order up.  All strategies yield pairwise-disjoint,
    jointly-exhaustive slices — the exact-multiset merge invariant the
    executor relies on holds for every strategy.
    """
    index, count = check_partition(partition)
    check_partition_strategy(strategy)
    if strategy == "stride":
        return sorted(candidates)[index::count]
    if strategy == "label" and label_of is not None:
        # repr() keys keep arbitrary Hashable labels mutually comparable;
        # the id tie-break makes the order (and thus the shards) total.
        keyed = sorted(candidates, key=lambda c: (repr(label_of(c)), c))
        return _chunk(keyed, index, count)
    return _chunk(sorted(candidates), index, count)
