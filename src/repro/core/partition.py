"""Seed-space partitioning shared by the partition-aware matchers.

A *partition* ``(index, count)`` restricts a matcher to the slice
``sorted(seed candidates)[index::count]`` of the search tree's root
candidates — the candidate set of the first TCQ/TCQ+ position only.
Because every match binds the root to exactly one candidate, the match
sets of the ``count`` partitions are pairwise disjoint and their union is
exactly the unpartitioned match set; this is what lets the service layer
fan one query out across a worker pool and merge results without
deduplication.

Only the root position may be partitioned: restricting a *later* seed
(e.g. the seed of a second connected component) would cross-product the
restrictions and lose matches.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import TypeVar

from ..errors import AlgorithmError

__all__ = ["check_partition", "partition_slice"]

_OrderedT = TypeVar("_OrderedT", int, "tuple[int, int]")


def check_partition(partition: tuple[int, int]) -> tuple[int, int]:
    """Validate a ``(index, count)`` partition; returns it normalised.

    Raises :class:`AlgorithmError` on a malformed partition so a bad
    service request fails loudly instead of silently dropping matches.
    """
    try:
        index, count = partition
    except (TypeError, ValueError):
        raise AlgorithmError(
            f"partition must be an (index, count) pair, got {partition!r}"
        ) from None
    if count < 1 or not 0 <= index < count:
        raise AlgorithmError(
            f"partition index {index} out of range for count {count}"
        )
    return index, count


def partition_slice(
    candidates: Iterable[_OrderedT], partition: tuple[int, int]
) -> list[_OrderedT]:
    """Deterministic slice of *candidates* owned by *partition*.

    Candidates are sorted first so the assignment is independent of set
    iteration order; stride-slicing then spreads dense regions of the
    candidate space roughly evenly across partitions.
    """
    index, count = check_partition(partition)
    return sorted(candidates)[index::count]
