"""Sampling-based cardinality estimation for TCSM.

Match counts explode with the constraint gap (Exp-10) and with graph
size; an analyst tuning a fraud pattern often needs "roughly how many
matches would this produce?" *before* paying for full enumeration.
This module implements the classic Horvitz-Thompson estimator over the
matching tree (the filtering-sampling idea the paper's related work [8]
cites for static subgraph matching), adapted to the temporal setting:

Starting from the TCSM-EVE search structure (TCQ+ order, LDF candidates),
a random root-to-leaf probe is drawn by choosing uniformly among the
*valid* candidates at every layer; a probe reaching a full match
contributes the product of the branching factors along its path, zero
otherwise.  The mean over probes is an unbiased estimate of the match
count (unbiasedness is a property of the estimator; the test-suite checks
it statistically against exact counts).
"""

from __future__ import annotations

import math
import random
from collections.abc import Sequence

from ..graphs import GraphView, QueryGraph, TemporalConstraints, ensure_snapshot

from .eve import EVEMatcher
from .results import CountEstimate
from .windows import build_edge_window_plan, feasible_window

__all__ = ["estimate_match_count", "estimate_with_ci"]

#: Two-sided normal quantile for the 95% confidence interval.
_Z_95 = 1.959963984540054


def estimate_match_count(
    query: QueryGraph,
    constraints: TemporalConstraints,
    graph: GraphView,
    probes: int = 200,
    seed: int = 0,
) -> float:
    """Unbiased estimate of the TCSM match count via random probes.

    Parameters
    ----------
    probes:
        Number of root-to-leaf probes (estimator variance shrinks as
        ``1/probes``; counts concentrated in few branches need more).
    seed:
        RNG seed; estimates are deterministic for a given seed.

    Notes
    -----
    Cost per probe is ``O(sum of candidate-list lengths)`` along one
    path — orders of magnitude below full enumeration on match-dense
    instances.
    """
    weights = _probe_weights(query, constraints, graph, probes, seed)
    return sum(weights) / len(weights)


def estimate_with_ci(
    query: QueryGraph,
    constraints: TemporalConstraints,
    graph: GraphView,
    probes: int = 200,
    seed: int = 0,
) -> CountEstimate:
    """The HT estimate plus its normal 95% confidence interval.

    Same probe sequence as :func:`estimate_match_count` (a given seed
    yields the identical point estimate); additionally reports the
    standard error of the probe mean and the normal-approximation
    interval, clamped at 0 since a match count cannot be negative.
    This is the engine's ``mode="estimate"`` backend.
    """
    weights = _probe_weights(query, constraints, graph, probes, seed)
    n = len(weights)
    mean = sum(weights) / n
    if n > 1:
        variance = sum((w - mean) ** 2 for w in weights) / (n - 1)
        stderr = math.sqrt(variance / n)
    else:
        stderr = 0.0
    return CountEstimate(
        count=mean,
        ci_low=max(0.0, mean - _Z_95 * stderr),
        ci_high=mean + _Z_95 * stderr,
        stderr=stderr,
        probes=n,
        confidence=0.95,
    )


def _probe_weights(
    query: QueryGraph,
    constraints: TemporalConstraints,
    graph: GraphView,
    probes: int,
    seed: int,
) -> list[float]:
    """One HT weight per probe (0.0 for probes that die before a match)."""
    if probes < 1:
        raise ValueError(f"probes must be >= 1, got {probes}")
    rng = random.Random(seed)

    # Reuse EVE's prepared structures (LDF pairs + TCQ+) for candidates,
    # and probe the same frozen view its hot loops use (freeze() caches,
    # so this is the snapshot the matcher just compiled).
    matcher = EVEMatcher(query, constraints, graph)
    matcher.prepare()
    graph = ensure_snapshot(graph)
    tcq = matcher.tcq_plus
    pair_candidates = matcher.pair_candidates
    m = query.num_edges
    n = query.num_vertices
    # Direct (closure=False) windows reproduce exactly the per-constraint
    # checks this estimator used to apply candidate-by-candidate: every
    # constraint due at a position involves the position's own edge, so
    # its feasibility region is a pure interval on that edge's timestamp.
    # Reading only the interval through the snapshot's in-window bisect
    # accessors leaves each layer's valid-candidate *list* — order
    # included — unchanged, which keeps the probe distribution and the
    # seeded estimates identical.  (The STN closure would prune more and
    # is deliberately not used here.)
    window_plan = build_edge_window_plan(tcq.order, constraints, closure=False)

    weights: list[float] = []
    for _ in range(probes):
        vertex_map: list[int | None] = [None] * n
        used: set[int] = set()
        edge_times: list[int | None] = [None] * m
        weight = 1.0
        alive = True
        for pos in range(m):
            edge_index = tcq.order[pos]
            qa, qb = query.edge(edge_index)
            da, db = vertex_map[qa], vertex_map[qb]
            required = query.edge_label(edge_index)
            window = feasible_window(window_plan[pos], edge_times)
            if window is None:
                alive = False
                break
            lo, hi = window

            def times_in_window(du: int, dv: int) -> Sequence[int]:
                if required is None:
                    return graph.timestamps_in_window(du, dv, lo, hi)
                return graph.timestamps_with_label_in_window(
                    du, dv, required, lo, hi
                )

            valid: list[tuple[int, int, int]] = []
            if da is not None and db is not None:
                if (da, db) in pair_candidates[edge_index]:
                    valid = [(da, db, t) for t in times_in_window(da, db)]
            elif da is not None:
                for x in graph.out_neighbor_ids(da):
                    if x in used or (da, x) not in pair_candidates[edge_index]:
                        continue
                    valid.extend((da, x, t) for t in times_in_window(da, x))
            elif db is not None:
                for x in graph.in_neighbor_ids(db):
                    if x in used or (x, db) not in pair_candidates[edge_index]:
                        continue
                    valid.extend((x, db, t) for t in times_in_window(x, db))
            else:
                for du, dv in pair_candidates[edge_index]:
                    if du in used or dv in used:
                        continue
                    valid.extend((du, dv, t) for t in times_in_window(du, dv))

            if not valid:
                alive = False
                break
            weight *= len(valid)
            du, dv, t = rng.choice(valid)
            edge_times[edge_index] = t
            if vertex_map[qa] is None:
                vertex_map[qa] = du
                used.add(du)
            if vertex_map[qb] is None:
                vertex_map[qb] = dv
                used.add(dv)
        weights.append(weight if alive else 0.0)
    return weights
