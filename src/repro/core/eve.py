"""TCSM-EVE: edge-vertex-edge expansion matching (Algorithm 5).

EVE is TCSM-E2E plus *vertex pre-matching*: whenever an edge match
introduces a new query vertex ``u``, the candidate data vertex must have,
for every backward neighbour ``u' ∈ BN(u)`` (Definition 8), some data
neighbour carrying ``L(u')``.  The look-ahead prunes embeddings whose
surroundings can never complete, before any further edges are attempted —
this is the paper's best algorithm.

The shared search machinery lives in :class:`E2EMatcher`; EVE only flips
the ``vertex_prematching`` hook (the candidate loop consults
``_vmatch_plan`` built during preparation).
"""

from __future__ import annotations

from .e2e import E2EMatcher

__all__ = ["EVEMatcher"]


class EVEMatcher(E2EMatcher):
    """Matcher implementing TCSM-EVE (Algorithm 5)."""

    name = "tcsm-eve"
    vertex_prematching = True
