"""Temporal window-propagation kernel shared by every TCSM matcher.

The paper's Exp-9/Exp-10 show enumeration cost tracking the number of
*timestamps materialised* from candidate vertex pairs: the matchers used
to expand every timestamp of a pair and reject most of them afterwards
with per-constraint gap checks.  The CSR :class:`~repro.graphs.GraphSnapshot`
stores each pair's timestamps as one sorted run precisely so a feasible
interval can be read out by bisection — this module is the piece that
computes those intervals and does the slicing, and every matcher
(V2V temporal checks and leaf enumeration, E2E/EVE candidate expansion,
the HT estimator) funnels through it.

Three layers:

* **plans** — :func:`build_edge_window_plan` precomputes, per matching
  position, which already-bound query edges bound the current edge's
  timestamp and by how much (either the raw constraints or their STN
  closure via :meth:`TemporalConstraints.distance_matrix`);
* **windows** — :func:`feasible_window` intersects those bounds against
  the concrete bound timestamps into one ``[lo, hi]`` interval (``None``
  when the interval is empty, i.e. the subtree is dead);
* **slices** — :func:`windowed_times` / :func:`constraint_slices` /
  :func:`propagate_run_windows` bisect sorted timestamp runs down to the
  feasible interval, crediting the kept part to
  ``SearchStats.timestamps_expanded`` and the pruned part to
  ``SearchStats.timestamps_skipped``.

Every helper works on plain sorted integer sequences, so it behaves
identically on the zero-copy memoryview runs of a compiled snapshot and
the plain lists of the dict-backed builder graph — which is what lets the
backend-equivalence tests pin counter-for-counter equality.
"""

from __future__ import annotations

import bisect
import math
from collections.abc import Sequence

from ..graphs import TemporalConstraints

from .stats import SearchStats

__all__ = [
    "NO_WINDOW",
    "WindowBounds",
    "build_edge_window_plan",
    "constraint_slices",
    "feasible_window",
    "propagate_run_windows",
    "window_slice",
    "windowed_times",
]

#: The unconstrained window: every timestamp is feasible.
NO_WINDOW: tuple[float, float] = (-math.inf, math.inf)

#: Per matching position: ``(other_edge, hi_add, lo_sub)`` triples, each
#: constraining the current edge's timestamp ``t`` to
#: ``t_other - lo_sub <= t <= t_other + hi_add`` once ``other_edge`` is
#: bound.  Only triples with at least one finite side are stored.
WindowBounds = tuple[tuple[int, float, float], ...]


def build_edge_window_plan(
    order: Sequence[int],
    constraints: TemporalConstraints,
    closure: bool = True,
) -> tuple[WindowBounds, ...]:
    """Per position of *order*, the bounds earlier-positioned edges impose.

    Parameters
    ----------
    order:
        Query-edge matching order (TCQ+ ``TO``); position ``p`` binds
        edge ``order[p]`` and may consult edges at positions ``< p``.
    constraints:
        The temporal-constraint set over those edges.
    closure:
        When True (default), bounds come from the STN distance matrix —
        the tightest *implied* window, including transitive tightening
        through edges not yet bound.  When False, only the raw
        constraints with the other side already bound contribute; this
        reproduces exactly the per-constraint checks the matchers apply,
        which the HT estimator needs to keep its probe distribution (and
        therefore its seeded estimates) unchanged.
    """
    plan: list[WindowBounds] = []
    if closure:
        dist = constraints.distance_matrix()
        for pos, edge in enumerate(order):
            entries: list[tuple[int, float, float]] = []
            for other_pos in range(pos):
                other = order[other_pos]
                hi_add = dist[other][edge]
                lo_sub = dist[edge][other]
                if hi_add < math.inf or lo_sub < math.inf:
                    entries.append((other, hi_add, lo_sub))
            plan.append(tuple(entries))
        return tuple(plan)
    position = {edge: pos for pos, edge in enumerate(order)}
    raw: list[list[tuple[int, float, float]]] = [[] for _ in order]
    for c in constraints:
        # 0 <= t_later - t_earlier <= gap, attributed to whichever side
        # binds second (the position where the check becomes possible).
        if position[c.earlier] < position[c.later]:
            raw[position[c.later]].append((c.earlier, float(c.gap), 0.0))
        else:
            raw[position[c.earlier]].append((c.later, 0.0, float(c.gap)))
    return tuple(tuple(entries) for entries in raw)


def feasible_window(
    bounds: WindowBounds, edge_times: Sequence[int | None]
) -> tuple[float, float] | None:
    """Intersect *bounds* against bound timestamps into one ``[lo, hi]``.

    ``edge_times`` is indexed by query-edge id; every edge referenced by
    *bounds* must be bound (the plans only reference earlier positions).
    Returns ``None`` when the intersection is empty — no timestamp can
    extend the current partial match.
    """
    lo, hi = NO_WINDOW
    for other, hi_add, lo_sub in bounds:
        t_other = edge_times[other]
        assert t_other is not None  # plans only reference bound positions
        upper = t_other + hi_add
        if upper < hi:
            hi = upper
        lower = t_other - lo_sub
        if lower > lo:
            lo = lower
        if lo > hi:
            return None
    return (lo, hi)


def window_slice(
    times: Sequence[int], lo: float, hi: float
) -> Sequence[int]:
    """The ``lo <= t <= hi`` slice of a sorted run (bisect, zero-copy).

    Slicing a memoryview run from a snapshot aliases the underlying
    array; list/tuple runs from the dict backend copy the (short) slice.
    """
    if lo == -math.inf and hi == math.inf:
        return times
    left = bisect.bisect_left(times, lo)
    right = bisect.bisect_right(times, hi)
    return times[left:right]


def windowed_times(
    times: Sequence[int],
    window: tuple[float, float],
    stats: SearchStats | None = None,
) -> Sequence[int]:
    """Slice *times* to *window*, crediting expanded vs skipped counters.

    The kept slice counts toward ``stats.timestamps_expanded`` (those
    timestamps *are* materialised by the caller); everything the window
    excluded counts toward ``stats.timestamps_skipped``.  With
    ``window=NO_WINDOW`` this degrades to the old expand-everything
    behaviour, which is exactly the kernel-off ablation path.
    """
    kept = window_slice(times, window[0], window[1])
    if stats is not None:
        stats.timestamps_expanded += len(kept)
        stats.timestamps_skipped += len(times) - len(kept)
    return kept


def constraint_slices(
    earlier_times: Sequence[int],
    later_times: Sequence[int],
    gap: float,
    stats: SearchStats | None = None,
) -> tuple[Sequence[int], Sequence[int]]:
    """Mutually windowed slices for one existential constraint check.

    For ``0 <= t_later - t_earlier <= gap``, any witnessing pair has its
    earlier side inside ``[min(later) - gap, max(later)]`` and its later
    side inside ``[min(earlier), max(earlier) + gap]`` — endpoints of a
    sorted run are O(1), so both slices are two bisects.  Feeding the
    slices to :func:`repro.core.windows_compatible` gives exactly the
    answer the full runs would, with only the feasible region expanded.
    """
    total = len(earlier_times) + len(later_times)
    if not len(earlier_times) or not len(later_times):
        if stats is not None:
            stats.timestamps_skipped += total
        return (), ()
    e_slice = window_slice(
        earlier_times, later_times[0] - gap, float(later_times[-1])
    )
    l_slice = window_slice(
        later_times, float(earlier_times[0]), earlier_times[-1] + gap
    )
    if stats is not None:
        kept = len(e_slice) + len(l_slice)
        stats.timestamps_expanded += kept
        stats.timestamps_skipped += total - kept
    return e_slice, l_slice


def propagate_run_windows(
    runs: Sequence[Sequence[int]],
    dist: Sequence[Sequence[float]],
) -> list[tuple[float, float]] | None:
    """Per-edge feasible windows for a complete vertex embedding.

    Given one sorted timestamp run per query edge and the STN distance
    matrix, each edge's timestamp must lie within
    ``[min(T_f) - D[e][f], max(T_f) + D[f][e]]`` for every other edge
    ``f`` — a timestamp outside that envelope violates some closure
    bound against *every* choice from ``T_f`` and can appear in no
    satisfying assignment.  One interval-propagation pass over the run
    endpoints (O(m²) for m query edges) yields the windows V2V slices
    its leaf enumeration with.

    Returns ``None`` when some run is empty or some window collapses —
    the embedding admits no timestamp assignment at all.
    """
    m = len(runs)
    if any(not len(run) for run in runs):
        return None
    windows: list[tuple[float, float]] = []
    for e in range(m):
        lo, hi = NO_WINDOW
        row_e = dist[e]
        for f in range(m):
            if f == e:
                continue
            d_fe = dist[f][e]
            if d_fe < math.inf:
                upper = runs[f][-1] + d_fe
                if upper < hi:
                    hi = upper
            d_ef = row_e[f]
            if d_ef < math.inf:
                lower = runs[f][0] - d_ef
                if lower > lo:
                    lo = lower
        if lo > hi:
            return None
        windows.append((lo, hi))
    return windows
