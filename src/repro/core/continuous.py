"""Continuous TCSM: temporal-constraint-aware incremental matching.

An extension beyond the paper's offline setting, motivated directly by
its experiments: the adapted CSM baselines (Section V) process the data
as an insertion stream but can only *post-filter* complete matches with
the temporal constraints — the paper shows how much that costs.  This
module supplies the missing piece: a continuous matcher that reports each
TCSM match the moment its last edge arrives, while pruning with the
constraint set *during* the per-insertion delta search, exactly as the
offline TCSM algorithms do.

Two prunings are applied on top of the shared stream substrate:

* **incremental constraint checking** — a constraint is validated as soon
  as both of its edges are bound in the partial match (no leaf
  post-filtering);
* **STN window pruning** — the transitive closure of the constraint set
  bounds every edge's timestamp relative to every bound edge
  (``t_e ∈ [t_x - D[e][x], t_x + D[x][e]]``); candidates outside the
  intersection of those windows are skipped before any structural work.

Registered with the engine as ``"tcsm-stream"``; the benchmark
``benchmarks/bench_continuous.py`` quantifies the advantage over the
post-filtering baselines.
"""

from __future__ import annotations

import math
from typing import cast

from ..baselines.csm.stream import CSMMatcherBase
from ..graphs import GraphView, QueryGraph, TemporalConstraints, TemporalEdge

__all__ = ["ContinuousTCSMMatcher"]


class ContinuousTCSMMatcher(CSMMatcherBase):
    """Delta matching with in-search temporal-constraint pruning.

    Parameters
    ----------
    query, constraints, graph:
        The matching problem; ``graph`` supplies the insertion stream
        (its temporal edges in time order).
    use_windows:
        Enable STN window pruning (default).  Turning it off leaves only
        incremental constraint checking (ablation knob).
    """

    name = "tcsm-stream"

    def __init__(
        self,
        query: QueryGraph,
        constraints: TemporalConstraints,
        graph: GraphView,
        use_windows: bool = True,
        compile_graph: bool = True,
    ) -> None:
        super().__init__(query, constraints, graph, compile_graph=compile_graph)
        self.use_windows = use_windows

    def _on_prepare(self) -> None:
        m = self.query.num_edges
        # Constraints checkable at each (pin, position): both edges bound.
        self._check_plans: list[list[list[tuple[int, int, float]]]] = []
        for pin in range(m):
            order = self._pin_orders[pin]
            position = [0] * m
            for pos, e in enumerate(order):
                position[e] = pos
            plan: list[list[tuple[int, int, float]]] = [[] for _ in range(m)]
            for c in self.constraints:
                when = max(position[c.earlier], position[c.later])
                plan[when].append((c.earlier, c.later, c.gap))
            self._check_plans.append(plan)
        # STN closure distances for window pruning.
        self._dist: list[list[float]] | None
        if self.use_windows and len(self.constraints):
            self._dist = self.constraints.distance_matrix()
        else:
            self._dist = None

    def edge_assignment_allowed(
        self,
        pin: int,
        pos: int,
        edge_index: int,
        cand: TemporalEdge,
        edge_map: list[TemporalEdge | None],
    ) -> bool:
        # Window pruning against every already-bound edge.
        dist = self._dist
        if dist is not None:
            t = cand.t
            row = dist[edge_index]
            for other, bound in enumerate(edge_map):
                if bound is None or other == edge_index:
                    continue
                upper = dist[other][edge_index]
                if upper is not math.inf and t - bound.t > upper:
                    return False
                lower = row[other]
                if lower is not math.inf and bound.t - t > lower:
                    return False
        # Exact checks for constraints that just became fully bound.
        # (edge_map does not yet contain `cand` itself.)
        # The plan schedules a constraint at the position where its second
        # edge binds, so both reads below hit bound entries.
        bound_edges = cast("list[TemporalEdge]", edge_map)
        for earlier, later, gap in self._check_plans[pin][pos]:
            t_earlier = (
                cand.t if earlier == edge_index else bound_edges[earlier].t
            )
            t_later = cand.t if later == edge_index else bound_edges[later].t
            if not 0 <= t_later - t_earlier <= gap:
                return False
        return True


def _register() -> None:
    from .engine import register_algorithm

    register_algorithm("tcsm-stream", ContinuousTCSMMatcher)


_register()
