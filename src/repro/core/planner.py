"""Cost-based matching-order planner (``MatchOptions(plan="cost")``).

The paper fixes one matching order per algorithm: the tsup-greedy walks
of Algorithms 1 and 3.  That order is structural — it never looks at the
*data* graph, so a query whose high-tsup edge maps to a huge label
partition pays for it at every enumeration layer.  This module adds the
classical alternative: generate a handful of deterministic candidate
orders (the paper's own walk among them), score each against cheap
snapshot statistics, and keep the cheapest.

The cost model estimates the size of the matching tree an order induces,
layer by layer:

* **branching** — how many candidates the layer generates: the initial
  candidate-set size for seeds, or the expected neighbour count
  ``avg_degree × label-selectivity`` for frontier extensions;
* **structural filters** — every extra already-bound neighbour must also
  be connected in the data graph; each multiplies the surviving width by
  the pair density ``|E| / |V|²``;
* **temporal tightness** — a constraint with gap ``k`` restricts a pair's
  timestamp run to a ``(k+1) / (span+1)`` fraction of the time axis (this
  is exactly the slice the window kernel of :mod:`repro.core.windows`
  reads); constraints checkable at a layer scale its width accordingly.

The total cost is the sum of the per-layer widths — an estimate of nodes
expanded.  Everything is deterministic: candidate generation breaks ties
by id, and :func:`choose_vertex_order`/:func:`choose_edge_order` break
score ties by candidate position (the paper order is listed first, so it
wins all ties).  ``plan="paper"`` therefore remains bit-for-bit
reproduction, and ``plan="cost"`` changes only the *order*, never the
match multiset.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Hashable, Sequence
from dataclasses import dataclass, field

from ..errors import AlgorithmError
from ..graphs import (
    Constraint,
    GraphView,
    QueryGraph,
    TemporalConstraints,
)

__all__ = [
    "PLAN_CHOICES",
    "PlanCosts",
    "candidate_edge_orders",
    "candidate_vertex_orders",
    "choose_edge_order",
    "choose_vertex_order",
    "plan_costs",
    "score_edge_order",
    "score_vertex_order",
    "validate_plan",
]

#: Recognised values for ``MatchOptions.plan`` / the matcher ``plan`` knob.
PLAN_CHOICES: tuple[str, ...] = ("paper", "cost")

#: Width floor keeping per-layer estimates positive (a zero would make
#: every suffix free and all orders tie).
_EPS = 1e-6


def validate_plan(plan: str) -> str:
    """Return *plan* if recognised, raise :class:`AlgorithmError` if not."""
    if plan not in PLAN_CHOICES:
        raise AlgorithmError(
            f"unknown plan {plan!r}; expected one of {PLAN_CHOICES}"
        )
    return plan


@dataclass(frozen=True)
class PlanCosts:
    """Snapshot statistics the cost model scores orders against.

    One instance summarises a data graph: collected once per prepared
    matcher by :func:`plan_costs` (O(|V|) for the label histogram; the
    remaining fields are O(1) accessors on either backend).
    """

    num_vertices: int
    num_static_edges: int
    num_temporal_edges: int
    time_span: int
    label_sizes: dict[Hashable, int] = field(default_factory=dict)

    @property
    def avg_out_degree(self) -> float:
        """Mean distinct out-neighbours per vertex."""
        return self.num_static_edges / max(1, self.num_vertices)

    @property
    def avg_run_length(self) -> float:
        """Mean timestamps per connected pair (``|ℰ| / |E|``)."""
        return self.num_temporal_edges / max(1, self.num_static_edges)

    @property
    def pair_density(self) -> float:
        """Probability a uniformly chosen ordered pair is connected."""
        return min(
            1.0, self.num_static_edges / max(1, self.num_vertices) ** 2
        )

    def label_fraction(self, label: Hashable) -> float:
        """Fraction of data vertices carrying *label* (1.0 if unknown)."""
        if not self.label_sizes:
            return 1.0
        size = self.label_sizes.get(label)
        if size is None:
            return _EPS
        return size / max(1, self.num_vertices)

    def gap_fraction(self, gap: int) -> float:
        """Fraction of the time axis a gap-``k`` window keeps."""
        return min(1.0, (gap + 1) / (self.time_span + 1))


def plan_costs(view: GraphView) -> PlanCosts:
    """Collect :class:`PlanCosts` from either graph backend."""
    return PlanCosts(
        num_vertices=view.num_vertices,
        num_static_edges=view.num_static_edges,
        num_temporal_edges=view.num_temporal_edges,
        time_span=view.time_span,
        label_sizes=dict(Counter(view.labels)),
    )


def _vertex_tightness(
    query: QueryGraph, constraints: TemporalConstraints
) -> list[float]:
    """Per vertex: accumulated ``1 / (1 + gap)`` of incident constraints.

    A vertex touching tight (small-gap) constraints is worth matching
    early — its constraints collapse timestamp windows fastest.
    """
    weight = [0.0] * query.num_vertices
    for c in constraints:
        share = 1.0 / (1.0 + c.gap)
        for edge_index in (c.earlier, c.later):
            u, v = query.edge(edge_index)
            weight[u] += share
            weight[v] += share
    return weight


def _edge_tightness(
    query: QueryGraph, constraints: TemporalConstraints
) -> list[float]:
    """Per edge: accumulated ``1 / (1 + gap)`` of its constraints."""
    weight = [0.0] * query.num_edges
    for c in constraints:
        share = 1.0 / (1.0 + c.gap)
        weight[c.earlier] += share
        weight[c.later] += share
    return weight


def _greedy_vertex_order(
    query: QueryGraph,
    key_of: "list[tuple[float, ...]]",
) -> tuple[int, ...]:
    """Frontier-greedy vertex walk minimising ``key_of`` at each step.

    Connectivity is preserved exactly as in Algorithm 1: while any
    unordered vertex touches the ordered set, only those are eligible.
    """
    n = query.num_vertices
    in_order = [False] * n
    order: list[int] = []
    while len(order) < n:
        remaining = [u for u in range(n) if not in_order[u]]
        frontier = [
            u
            for u in remaining
            if any(in_order[w] for w in query.neighbors(u))
        ]
        pool = frontier if frontier else remaining
        chosen = min(pool, key=lambda u: key_of[u] + (u,))
        order.append(chosen)
        in_order[chosen] = True
    return tuple(order)


def _greedy_edge_order(
    query: QueryGraph,
    key_of: "list[tuple[float, ...]]",
) -> tuple[int, ...]:
    """Frontier-greedy edge walk minimising ``key_of`` at each step."""
    m = query.num_edges
    in_order = [False] * m
    order: list[int] = []
    covered: set[int] = set()
    while len(order) < m:
        remaining = [e for e in range(m) if not in_order[e]]
        frontier = [
            e
            for e in remaining
            if any(w in covered for w in query.edge(e))
        ]
        pool = frontier if frontier else remaining
        chosen = min(pool, key=lambda e: key_of[e] + (e,))
        order.append(chosen)
        in_order[chosen] = True
        covered.update(query.edge(chosen))
    return tuple(order)


def candidate_vertex_orders(
    query: QueryGraph,
    constraints: TemporalConstraints,
    candidate_counts: Sequence[int] | None,
) -> list[tuple[int, ...]]:
    """Deterministic heuristic vertex orders the planner scores.

    Three greedy walks over the query's connectivity structure:
    fewest-initial-candidates first, tightest-constraints first, and
    highest-degree first.
    """
    n = query.num_vertices
    counts = (
        list(candidate_counts) if candidate_counts is not None else [0] * n
    )
    tightness = _vertex_tightness(query, constraints)
    by_candidates: list[tuple[float, ...]] = [
        (float(counts[u]),) for u in range(n)
    ]
    by_tightness: list[tuple[float, ...]] = [
        (-tightness[u], float(counts[u])) for u in range(n)
    ]
    by_degree: list[tuple[float, ...]] = [
        (-float(query.degree(u)), float(counts[u])) for u in range(n)
    ]
    return [
        _greedy_vertex_order(query, by_candidates),
        _greedy_vertex_order(query, by_tightness),
        _greedy_vertex_order(query, by_degree),
    ]


def candidate_edge_orders(
    query: QueryGraph,
    constraints: TemporalConstraints,
    candidate_counts: Sequence[int] | None,
) -> list[tuple[int, ...]]:
    """Deterministic heuristic edge orders the planner scores."""
    m = query.num_edges
    counts = (
        list(candidate_counts) if candidate_counts is not None else [0] * m
    )
    tightness = _edge_tightness(query, constraints)
    by_candidates: list[tuple[float, ...]] = [
        (float(counts[e]),) for e in range(m)
    ]
    by_tightness: list[tuple[float, ...]] = [
        (-tightness[e], float(counts[e])) for e in range(m)
    ]
    return [
        _greedy_edge_order(query, by_candidates),
        _greedy_edge_order(query, by_tightness),
    ]


def score_vertex_order(
    order: Sequence[int],
    query: QueryGraph,
    constraints: TemporalConstraints,
    candidate_counts: Sequence[int] | None,
    costs: PlanCosts,
) -> float:
    """Estimated matching-tree size of a V2V vertex *order*.

    Walks the order tracking which vertices are bound; per layer the
    surviving width is multiplied by the expected branching, the
    structural filters of extra back-edges, and the temporal tightness of
    constraints that become checkable — then added to the running cost.
    """
    position = {u: pos for pos, u in enumerate(order)}
    check_pos = _constraint_vertex_positions(query, constraints, position)
    width = 1.0
    cost = 0.0
    for pos, u in enumerate(order):
        if candidate_counts is not None:
            cand = float(candidate_counts[u])
        else:
            cand = costs.label_fraction(query.label(u)) * max(
                1, costs.num_vertices
            )
        back = [w for w in query.neighbors(u) if position[w] < pos]
        if back:
            branching = min(
                cand, costs.avg_out_degree * cand / max(1, costs.num_vertices)
            )
            branching *= costs.pair_density ** (len(back) - 1)
        else:
            branching = cand
        survival = 1.0
        for c in check_pos.get(pos, ()):
            survival *= min(
                1.0,
                _EPS
                + costs.avg_run_length
                * costs.avg_run_length
                * costs.gap_fraction(c.gap),
            )
        width = max(_EPS, width * branching * survival)
        cost += width
    return cost


def _constraint_vertex_positions(
    query: QueryGraph,
    constraints: TemporalConstraints,
    position: dict[int, int],
) -> "dict[int, list[Constraint]]":
    """Constraints grouped by the vertex layer where they become checkable."""
    grouped: dict[int, list[Constraint]] = {}
    for c in constraints:
        endpoints: set[int] = set()
        for edge_index in (c.earlier, c.later):
            u, v = query.edge(edge_index)
            endpoints.add(u)
            endpoints.add(v)
        last = max(position[u] for u in endpoints)
        grouped.setdefault(last, []).append(c)
    return grouped


def score_edge_order(
    order: Sequence[int],
    query: QueryGraph,
    constraints: TemporalConstraints,
    candidate_counts: Sequence[int] | None,
    costs: PlanCosts,
) -> float:
    """Estimated matching-tree size of an E2E/EVE edge *order*.

    Same layer-width model as :func:`score_vertex_order`, with the edge
    flavours of branching: a layer binds a temporal edge, so its width
    scales with the pair's expected run length — cut down by the window
    fraction of every constraint checkable at that layer, which is
    precisely what the window kernel skips reading.
    """
    position = {e: pos for pos, e in enumerate(order)}
    check_pos: dict[int, list[Constraint]] = {}
    for c in constraints:
        last = max(position[c.earlier], position[c.later])
        check_pos.setdefault(last, []).append(c)
    covered: set[int] = set()
    width = 1.0
    cost = 0.0
    for pos, e in enumerate(order):
        u, v = query.edge(e)
        bound = (u in covered) + (v in covered)
        expected_times = costs.avg_run_length
        for c in check_pos.get(pos, ()):
            expected_times *= costs.gap_fraction(c.gap)
        expected_times = max(_EPS, expected_times)
        if bound == 2:
            branching = costs.pair_density * expected_times
        elif bound == 1:
            other = v if u in covered else u
            branching = (
                costs.avg_out_degree
                * costs.label_fraction(query.label(other))
                * expected_times
            )
        else:
            if candidate_counts is not None:
                pairs = float(candidate_counts[e])
            else:
                pairs = float(max(1, costs.num_static_edges))
            branching = pairs * expected_times
        width = max(_EPS, width * branching)
        cost += width
        covered.update((u, v))
    return cost


def _unique_orders(
    orders: Sequence[tuple[int, ...]],
) -> list[tuple[int, ...]]:
    seen: set[tuple[int, ...]] = set()
    unique: list[tuple[int, ...]] = []
    for order in orders:
        if order not in seen:
            seen.add(order)
            unique.append(order)
    return unique


def choose_vertex_order(
    query: QueryGraph,
    constraints: TemporalConstraints,
    candidate_counts: Sequence[int] | None,
    costs: PlanCosts,
    extra_orders: Sequence[tuple[int, ...]] = (),
) -> tuple[int, ...]:
    """The cheapest vertex order among heuristics and *extra_orders*.

    *extra_orders* are scored first and win all ties — callers pass the
    paper order there, so the planner only deviates when the cost model
    sees a strict improvement.
    """
    candidates = _unique_orders(
        [*extra_orders]
        + candidate_vertex_orders(query, constraints, candidate_counts)
    )
    return min(
        candidates,
        key=lambda order: score_vertex_order(
            order, query, constraints, candidate_counts, costs
        ),
    )


def choose_edge_order(
    query: QueryGraph,
    constraints: TemporalConstraints,
    candidate_counts: Sequence[int] | None,
    costs: PlanCosts,
    extra_orders: Sequence[tuple[int, ...]] = (),
) -> tuple[int, ...]:
    """The cheapest edge order among heuristics and *extra_orders*."""
    candidates = _unique_orders(
        [*extra_orders]
        + candidate_edge_orders(query, constraints, candidate_counts)
    )
    return min(
        candidates,
        key=lambda order: score_edge_order(
            order, query, constraints, candidate_counts, costs
        ),
    )
