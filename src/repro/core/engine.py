"""Unified matcher engine: registry, dispatch, timing.

Every matcher — the paper's three algorithms, the brute-force oracle, and
all baselines — implements the same protocol (``prepare()`` +
``run(limit, stats, deadline)``).  The engine registers them by name and
wraps a run with phase timing (preparation vs matching, the split plotted
in Fig. 14 / Table VI of the paper).

Baselines live in :mod:`repro.baselines` and are imported lazily on first
use of an unknown name, so ``import repro`` stays cheap and the core has
no dependency on the baselines package.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterator
from dataclasses import dataclass, field
from typing import Any, Protocol

from ..errors import UnknownAlgorithmError
from ..graphs import QueryGraph, TemporalConstraints, TemporalGraph

from .bruteforce import BruteForceMatcher
from .e2e import E2EMatcher
from .eve import EVEMatcher
from .match import Match
from .stats import SearchStats
from .v2v import V2VMatcher

__all__ = [
    "Matcher",
    "MatchResult",
    "available_algorithms",
    "count_matches",
    "create_matcher",
    "find_matches",
    "register_algorithm",
]


class Matcher(Protocol):
    """Protocol all matchers implement."""

    name: str

    def prepare(self) -> None:  # pragma: no cover - protocol
        ...

    def run(
        self,
        limit: int | None = None,
        stats: SearchStats | None = None,
        deadline: float | None = None,
    ) -> Iterator[Match]:  # pragma: no cover - protocol
        ...


MatcherFactory = Callable[..., Matcher]

_REGISTRY: dict[str, MatcherFactory] = {}


def register_algorithm(
    name: str, factory: MatcherFactory, overwrite: bool = False
) -> None:
    """Register a matcher factory under *name* (lowercase, stable)."""
    key = name.lower()
    if key in _REGISTRY and not overwrite:
        raise ValueError(f"algorithm {name!r} already registered")
    _REGISTRY[key] = factory


def _ensure_baselines_loaded() -> None:
    """Import deferred modules so their algorithms self-register.

    Covers the baselines package and the continuous-TCSM extension, both
    of which register at import time; deferring keeps ``import repro``
    cheap and breaks the engine <-> baselines import cycle.
    """
    from .. import baselines  # noqa: F401  (import has side effects)
    from . import continuous  # noqa: F401


def available_algorithms(include_baselines: bool = True) -> tuple[str, ...]:
    """Sorted names accepted by :func:`find_matches`."""
    if include_baselines:
        _ensure_baselines_loaded()
    return tuple(sorted(_REGISTRY))


def create_matcher(
    algorithm: str,
    query: QueryGraph,
    constraints: TemporalConstraints,
    graph: TemporalGraph,
    **options: Any,
) -> Matcher:
    """Instantiate the matcher registered under *algorithm*."""
    key = algorithm.lower()
    if key not in _REGISTRY:
        _ensure_baselines_loaded()
    try:
        factory = _REGISTRY[key]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise UnknownAlgorithmError(
            f"unknown algorithm {algorithm!r}; available: {known}"
        ) from None
    return factory(query, constraints, graph, **options)


@dataclass
class MatchResult:
    """Outcome of one engine run."""

    algorithm: str
    matches: list[Match]
    stats: SearchStats = field(default_factory=SearchStats)
    build_seconds: float = 0.0
    match_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        return self.build_seconds + self.match_seconds

    @property
    def num_matches(self) -> int:
        return len(self.matches)


def find_matches(
    query: QueryGraph,
    constraints: TemporalConstraints,
    graph: TemporalGraph,
    algorithm: str = "tcsm-eve",
    limit: int | None = None,
    time_budget: float | None = None,
    tighten: bool = False,
    collect_matches: bool = True,
    **options: Any,
) -> MatchResult:
    """Run a matcher end to end and return matches plus measurements.

    Parameters
    ----------
    algorithm:
        Registered name, e.g. ``"tcsm-eve"``, ``"tcsm-e2e"``,
        ``"tcsm-v2v"``, ``"brute-force"``, or any baseline
        (``"ri-ds"``, ``"graphflow"``, ...).  See
        :func:`available_algorithms`.
    limit:
        Stop after this many matches.
    time_budget:
        Wall-clock seconds for the matching phase; on expiry the run stops
        with ``stats.budget_exhausted`` set.
    tighten:
        Replace the constraint set by its STN closure before matching
        (never changes the result set; ablated in the benchmarks).
    collect_matches:
        When False, matches are counted but not retained — use for
        benchmarks on match-dense instances.
    options:
        Forwarded to the matcher constructor.
    """
    if tighten:
        constraints = constraints.closed()
    matcher = create_matcher(algorithm, query, constraints, graph, **options)
    stats = SearchStats()

    build_start = time.perf_counter()
    matcher.prepare()
    build_seconds = time.perf_counter() - build_start

    deadline = None
    if time_budget is not None:
        deadline = time.monotonic() + time_budget

    matches: list[Match] = []
    match_start = time.perf_counter()
    for match in matcher.run(limit=limit, stats=stats, deadline=deadline):
        if collect_matches:
            matches.append(match)
    match_seconds = time.perf_counter() - match_start

    result = MatchResult(
        algorithm=matcher.name,
        matches=matches,
        stats=stats,
        build_seconds=build_seconds,
        match_seconds=match_seconds,
    )
    return result


def count_matches(
    query: QueryGraph,
    constraints: TemporalConstraints,
    graph: TemporalGraph,
    algorithm: str = "tcsm-eve",
    **kwargs: Any,
) -> int:
    """Number of matches (does not retain match objects)."""
    result = find_matches(
        query,
        constraints,
        graph,
        algorithm=algorithm,
        collect_matches=False,
        **kwargs,
    )
    return result.stats.matches


# The core algorithms and the oracle register eagerly.
register_algorithm("tcsm-v2v", V2VMatcher)
register_algorithm("tcsm-e2e", E2EMatcher)
register_algorithm("tcsm-eve", EVEMatcher)
register_algorithm("brute-force", BruteForceMatcher)
