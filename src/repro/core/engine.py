"""Unified matcher engine: registry, dispatch, timing, tracing.

Every matcher — the paper's three algorithms, the brute-force oracle, and
all baselines — implements the same protocol (``prepare()`` +
``run(ctx)``).  The engine registers them by name and wraps a run with
phase timing (preparation vs matching, the split plotted in Fig. 14 /
Table VI of the paper) and optional per-phase tracing spans
(:mod:`repro.obs`).

Callers choose run behaviour through a frozen :class:`MatchOptions`
(limit, time budget, STN tightening, match collection, partition,
tracing); the individual ``limit=`` / ``time_budget=`` / ... keywords
remain as a back-compat shim that builds one.  Matchers receive run-time
state as a single :class:`RunContext`; whether a matcher supports seed
partitioning is declared by its ``supports_partition`` class attribute
(signature probing remains only as a fallback for unregistered
third-party matchers).

Baselines live in :mod:`repro.baselines` and are imported lazily on first
use of an unknown name, so ``import repro`` stays cheap and the core has
no dependency on the baselines package.
"""

from __future__ import annotations

import inspect
import time
import warnings
from collections.abc import Callable, Iterator
from typing import Any, Protocol, cast

from ..errors import AlgorithmError, UnknownAlgorithmError
from ..graphs import (
    GraphSnapshot,
    GraphView,
    QueryGraph,
    TemporalConstraints,
    snapshot_write_barrier,
)
from ..obs import NULL_TRACER, TraceSink, Tracer, sanitize_enabled

from .bruteforce import BruteForceMatcher
from .e2e import E2EMatcher
from .estimate import estimate_with_ci
from .eve import EVEMatcher
from .match import Match
from .options import MatchOptions, RunContext
from .results import CountEstimate, MatchResult
from .sinks import ResultSink, StopEnumeration, build_sink, drain_into_sink
from .stats import SearchStats
from .v2v import V2VMatcher

__all__ = [
    "CountEstimate",
    "MatchOptions",
    "Matcher",
    "MatchResult",
    "PartitionedMatcher",
    "RunContext",
    "available_algorithms",
    "count_matches",
    "create_matcher",
    "find_matches",
    "invoke_run",
    "invoke_run_sink",
    "prepare_matcher",
    "register_algorithm",
    "supports_codegen",
    "supports_partition",
]


class Matcher(Protocol):
    """Protocol all matchers implement.

    ``supports_partition`` declares whether ``run`` honours
    ``RunContext.partition`` (the engine consults the attribute, not the
    signature).  ``run`` takes one :class:`RunContext`; the legacy
    ``limit``/``stats``/``deadline`` keywords are the back-compat shim.
    """

    name: str
    supports_partition: bool

    def prepare(
        self, tracer: TraceSink | None = None
    ) -> None:  # pragma: no cover - protocol
        ...

    def run(
        self,
        ctx: RunContext | None = None,
        *,
        limit: int | None = None,
        stats: SearchStats | None = None,
        deadline: float | None = None,
    ) -> Iterator[Match]:  # pragma: no cover - protocol
        ...


class PartitionedMatcher(Matcher, Protocol):
    """A matcher that honours ``RunContext.partition``.

    ``partition=(index, count)`` restricts the search to a deterministic
    slice of the root position's candidates (see
    :mod:`repro.core.partition`); the ``count`` slices jointly enumerate
    exactly the unpartitioned match set, pairwise disjointly.  The three
    TCSM algorithms and the brute-force oracle implement this
    (``supports_partition = True``); baselines need not.
    """

    def run(
        self,
        ctx: RunContext | None = None,
        *,
        limit: int | None = None,
        stats: SearchStats | None = None,
        deadline: float | None = None,
        partition: tuple[int, int] | None = None,
    ) -> Iterator[Match]:  # pragma: no cover - protocol
        ...


def supports_partition(matcher: Matcher) -> bool:
    """True when *matcher* declares (or exhibits) partition support.

    Registered matchers declare it with a ``supports_partition`` class
    attribute; for unregistered third-party matchers without the
    attribute, the legacy signature probe (a ``partition`` parameter on
    ``run``) is retained as a fallback.
    """
    flag = getattr(matcher, "supports_partition", None)
    if flag is not None:
        return bool(flag)
    try:
        parameters = inspect.signature(matcher.run).parameters
    except (TypeError, ValueError):  # pragma: no cover - exotic callables
        return False
    return "partition" in parameters


_CTX_SUPPORT: dict[type, bool] = {}  # reprolint: disable=R016 -- idempotent memo; a racy double-probe writes the same value


def _run_accepts_context(matcher: Matcher) -> bool:
    """True when ``matcher.run`` takes a ``ctx`` parameter (cached per type)."""
    cls = type(matcher)
    cached = _CTX_SUPPORT.get(cls)
    if cached is None:
        try:
            parameters = inspect.signature(cls.run).parameters
        except (TypeError, ValueError):  # pragma: no cover - exotic callables
            cached = False
        else:
            cached = "ctx" in parameters
        _CTX_SUPPORT[cls] = cached
    return cached


def invoke_run(matcher: Matcher, ctx: RunContext) -> Iterator[Match]:
    """Call ``matcher.run`` with *ctx*, shimming third-party matchers.

    In-repo matchers take the context directly; an unregistered matcher
    whose ``run`` predates :class:`RunContext` is called with the legacy
    keywords instead (``partition`` only when set, so old three-keyword
    signatures keep working).
    """
    if _run_accepts_context(matcher):
        return matcher.run(ctx)
    # Shim interior: third-party matchers predating RunContext are the
    # one legitimate consumer of the legacy keywords.
    if ctx.partition is not None:
        return cast(PartitionedMatcher, matcher).run(  # reprolint: disable=R018
            limit=ctx.limit,
            stats=ctx.stats,
            deadline=ctx.deadline,
            partition=ctx.partition,
        )
    return matcher.run(  # reprolint: disable=R018
        limit=ctx.limit, stats=ctx.stats, deadline=ctx.deadline
    )


def invoke_run_sink(matcher: Matcher, ctx: RunContext, sink: ResultSink) -> None:
    """Run *matcher* pushing every match into *sink*.

    Sink-native matchers (the three TCSM algorithms and the oracle) get
    the sink handed straight to their DFS, so a satisfied sink's
    :class:`StopEnumeration` unwinds the recursion — a genuine early
    exit.  Pull-based matchers (the CSM baselines, third-party code) are
    bridged by draining their ``run`` generator into the sink; closing
    the generator on early exit unwinds *their* stack the same way.
    """
    run_sink = getattr(matcher, "run_sink", None)
    if callable(run_sink):
        run_sink(ctx, sink)
        return
    drain_into_sink(invoke_run(matcher, ctx), sink, ctx.stats)


def prepare_matcher(matcher: Matcher, tracer: TraceSink) -> None:
    """Run ``matcher.prepare``, forwarding the tracer when accepted.

    Third-party matchers whose ``prepare`` predates the ``tracer``
    parameter are called bare; they simply emit no candidate-filter
    spans.  The probe only runs when tracing is enabled.
    """
    if not tracer.enabled:
        matcher.prepare()
        return
    try:
        parameters = inspect.signature(matcher.prepare).parameters
    except (TypeError, ValueError):  # pragma: no cover - exotic callables
        matcher.prepare()
        return
    if "tracer" in parameters:
        matcher.prepare(tracer=tracer)
    else:
        matcher.prepare()


MatcherFactory = Callable[..., Matcher]

_REGISTRY: dict[str, MatcherFactory] = {}  # reprolint: disable=R016 -- populated only at import time by @register_matcher


def register_algorithm(
    name: str, factory: MatcherFactory, overwrite: bool = False
) -> None:
    """Register a matcher factory under *name* (lowercase, stable)."""
    key = name.lower()
    if key in _REGISTRY and not overwrite:
        raise ValueError(f"algorithm {name!r} already registered")
    _REGISTRY[key] = factory


def _ensure_baselines_loaded() -> None:
    """Import deferred modules so their algorithms self-register.

    Covers the baselines package and the continuous-TCSM extension, both
    of which register at import time; deferring keeps ``import repro``
    cheap and breaks the engine <-> baselines import cycle.
    """
    from .. import baselines  # noqa: F401  (import has side effects)
    from . import continuous  # noqa: F401


def available_algorithms(include_baselines: bool = True) -> tuple[str, ...]:
    """Sorted names accepted by :func:`find_matches`."""
    if include_baselines:
        _ensure_baselines_loaded()
    return tuple(sorted(_REGISTRY))


def supports_codegen(algorithm: str) -> bool:
    """True when *algorithm*'s factory has a specializing generator.

    Registered matcher classes declare it with a ``supports_codegen``
    class attribute (the three TCSM matchers); algorithms without one —
    the oracle, the baselines — silently run interpreted under
    ``MatchOptions(codegen=True)`` rather than choking on an unknown
    constructor keyword.
    """
    key = algorithm.lower()
    if key not in _REGISTRY:
        _ensure_baselines_loaded()
    factory = _REGISTRY.get(key)
    return bool(getattr(factory, "supports_codegen", False))


def create_matcher(
    algorithm: str,
    query: QueryGraph,
    constraints: TemporalConstraints,
    graph: GraphView,
    **options: Any,
) -> Matcher:
    """Instantiate the matcher registered under *algorithm*."""
    key = algorithm.lower()
    if key not in _REGISTRY:
        _ensure_baselines_loaded()
    try:
        factory = _REGISTRY[key]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise UnknownAlgorithmError(
            f"unknown algorithm {algorithm!r}; available: {known}"
        ) from None
    return factory(query, constraints, graph, **options)


def _resolve_options(
    options: MatchOptions | None,
    limit: int | None,
    time_budget: float | None,
    tighten: bool,
    collect_matches: bool,
    partition: tuple[int, int] | None,
    trace: bool,
) -> MatchOptions:
    """Fold an explicit :class:`MatchOptions` or the legacy keywords.

    The legacy keywords alone are a deprecated shim (see docs/API.md):
    they emit a :class:`DeprecationWarning` and will be removed two
    releases after the ``repro.api`` facade stabilises.
    """
    legacy_used = (
        limit is not None
        or time_budget is not None
        or tighten
        or not collect_matches
        or partition is not None
        or trace
    )
    if options is not None:
        if legacy_used:
            raise TypeError(
                "pass either MatchOptions or the legacy limit/time_budget/"
                "tighten/collect_matches/partition/trace keywords, not both"
            )
        return options
    if legacy_used:
        warnings.warn(
            "the limit=/time_budget=/tighten=/collect_matches=/partition=/"
            "trace= keywords on find_matches() are deprecated; pass "
            "options=MatchOptions(...) instead (see docs/API.md)",
            DeprecationWarning,
            stacklevel=3,
        )
    return MatchOptions(
        limit=limit,
        time_budget=time_budget,
        tighten=tighten,
        collect_matches=collect_matches,
        partition=partition,
        trace=trace,
    )


def find_matches(
    query: QueryGraph,
    constraints: TemporalConstraints,
    graph: GraphView,
    algorithm: str = "tcsm-eve",
    *,
    options: MatchOptions | None = None,
    matcher: Matcher | None = None,
    tracer: Tracer | None = None,
    limit: int | None = None,
    time_budget: float | None = None,
    tighten: bool = False,
    collect_matches: bool = True,
    partition: tuple[int, int] | None = None,
    trace: bool = False,
    **matcher_options: Any,
) -> MatchResult:
    """Run a matcher end to end and return matches plus measurements.

    Parameters
    ----------
    algorithm:
        Registered name, e.g. ``"tcsm-eve"``, ``"tcsm-e2e"``,
        ``"tcsm-v2v"``, ``"brute-force"``, or any baseline
        (``"ri-ds"``, ``"graphflow"``, ...).  See
        :func:`available_algorithms`.
    options:
        A :class:`MatchOptions` bundling limit, time budget, tightening,
        match collection, partition and tracing.  The individual keywords
        below are a back-compat shim that builds one; passing both is an
        error.
    matcher:
        A pre-built (possibly already prepared) matcher to reuse instead
        of constructing one from *algorithm*; ``prepare()`` is idempotent,
        so reusing a warm matcher skips the preparation cost.  This is the
        plan-reuse hook the query service's plan cache builds on.
        *algorithm* and *matcher_options* are ignored when given.
    tracer:
        An explicit tracer to record spans into (the service injects its
        sampled tracer here).  ``options.trace`` / ``trace=True`` creates
        a fresh one instead; the tracer used comes back on
        ``result.trace``.
    limit, time_budget, tighten, collect_matches, partition, trace:
        Legacy keywords; see :class:`MatchOptions` for semantics.
    matcher_options:
        Forwarded to the matcher constructor.
    """
    opts = _resolve_options(
        options, limit, time_budget, tighten, collect_matches, partition, trace
    )
    tr: TraceSink
    if tracer is not None:
        tr = tracer
    elif opts.trace:
        tracer = Tracer()
        tr = tracer
    else:
        tr = NULL_TRACER

    if opts.tighten:
        with tr.span("stn-closure", constraints=len(constraints)):
            constraints = constraints.closed()

    if opts.mode == "estimate":
        # Sampled answering never enumerates: the HT estimator probes the
        # EVE search structure directly and returns count + CI.  The
        # requested algorithm/matcher is irrelevant to the estimate.
        probes = int(matcher_options.pop("probes", 200))
        seed = int(matcher_options.pop("seed", 0))
        est_start = time.perf_counter()
        with tr.span("estimate", probes=probes):
            estimate = estimate_with_ci(
                query, constraints, graph, probes=probes, seed=seed
            )
        return MatchResult(
            algorithm="ht-estimate",
            matches=[],
            stats=SearchStats(),
            build_seconds=0.0,
            match_seconds=time.perf_counter() - est_start,
            estimate=estimate,
            trace=tracer,
        )
    if (
        matcher is None
        and (opts.sanitize or sanitize_enabled())
        and isinstance(graph, GraphSnapshot)
    ):
        # Sanitizer mode: the matcher sees a write-barrier wrapped
        # snapshot, so any post-compile mutation raises at the site.
        # Pre-built matchers already hold their graph reference and are
        # left alone (the service wraps at registry.register instead).
        graph = snapshot_write_barrier(graph)
    if matcher is None:
        # Forward the planning mode to matchers that take the knob; the
        # "paper" default is every matcher's default already, and
        # baseline factories without a ``plan`` parameter must keep
        # working.  An explicit ``plan=`` matcher option wins.
        if opts.plan != "paper":
            matcher_options.setdefault("plan", opts.plan)
        # Same contract for plan specialization: forwarded only to
        # matchers that declare a generator, so codegen=True composes
        # with every registered algorithm.
        if opts.codegen and supports_codegen(algorithm):
            matcher_options.setdefault("codegen", True)
        matcher = create_matcher(
            algorithm, query, constraints, graph, **matcher_options
        )
    stats = SearchStats()

    build_start = time.perf_counter()
    with tr.span("prepare", algorithm=matcher.name):
        prepare_matcher(matcher, tr)
    build_seconds = time.perf_counter() - build_start
    prepare_stats = getattr(matcher, "prepare_stats", None)
    if isinstance(prepare_stats, SearchStats):
        stats.merge(prepare_stats)

    deadline = None
    if opts.time_budget is not None:
        deadline = time.monotonic() + opts.time_budget

    if opts.partition is not None and not supports_partition(matcher):
        raise AlgorithmError(
            f"matcher {matcher.name!r} does not support partitioned "
            "execution"
        )
    sink = build_sink(
        mode=opts.mode,
        order_by=opts.order_by,
        limit=opts.limit,
        collect=opts.collect_matches,
    )
    # Exact top-k earliest needs the *full* enumeration (the heap keeps
    # the k best); a context limit would make pull-based matchers stop
    # at the first k found instead.  Every other sink enforces its own
    # limit, so the context limit is only kept for the pull-based shim.
    ctx_limit = opts.limit
    if opts.order_by == "earliest":
        ctx_limit = None
    ctx = RunContext(
        limit=ctx_limit,
        deadline=deadline,
        partition=opts.partition,
        partition_strategy=opts.partition_strategy,
        stats=stats,
        tracer=tr,
    )

    match_start = time.perf_counter()
    with tr.span("enumerate", algorithm=matcher.name) as enum_span:
        invoke_run_sink(matcher, ctx, sink)
        enum_span.annotate(
            matches=stats.matches,
            timestamps_expanded=stats.timestamps_expanded,
            timestamps_skipped=stats.timestamps_skipped,
        )
    match_seconds = time.perf_counter() - match_start

    matches: list[Match] = sink.finish()
    truncated_by_limit = stats.limit_hit or bool(
        getattr(sink, "overflowed", False)
    )
    result = MatchResult(
        algorithm=matcher.name,
        matches=matches,
        stats=stats,
        build_seconds=build_seconds,
        match_seconds=match_seconds,
        timed_out=stats.deadline_hit,
        truncated=truncated_by_limit
        or (stats.budget_exhausted and not stats.deadline_hit),
        truncated_by_limit=truncated_by_limit,
        ordered=opts.order_by == "earliest",
        trace=tracer,
    )
    return result


def count_matches(
    query: QueryGraph,
    constraints: TemporalConstraints,
    graph: GraphView,
    algorithm: str = "tcsm-eve",
    *,
    options: MatchOptions | None = None,
    **kwargs: Any,
) -> int:
    """Number of matches (does not retain match objects).

    A thin sink configuration: the run is forced to ``mode="count"``
    (a :class:`~repro.core.sinks.CountSink`), so match objects are
    never built up regardless of the caller's ``collect_matches``.
    Accepts the same legacy keywords as :func:`find_matches` (same
    deprecation shim: they warn, and both-forms-at-once is an error).
    """
    if options is not None:
        mode = "estimate" if options.mode == "estimate" else "count"
        options = options.replace(collect_matches=False, mode=mode)
    else:
        legacy = {
            key: kwargs.pop(key)
            for key in (
                "limit",
                "time_budget",
                "tighten",
                "partition",
                "partition_strategy",
                "trace",
            )
            if key in kwargs
        }
        kwargs.pop("collect_matches", None)
        if legacy:
            warnings.warn(
                "the limit=/time_budget=/tighten=/partition=/trace= "
                "keywords on count_matches() are deprecated; pass "
                "options=MatchOptions(...) instead (see docs/API.md)",
                DeprecationWarning,
                stacklevel=2,
            )
        options = MatchOptions(collect_matches=False, mode="count", **legacy)
    result = find_matches(
        query,
        constraints,
        graph,
        algorithm=algorithm,
        options=options,
        **kwargs,
    )
    if result.estimate is not None:
        return result.num_matches
    return result.stats.matches


# The core algorithms and the oracle register eagerly.
register_algorithm("tcsm-v2v", V2VMatcher)
register_algorithm("tcsm-e2e", E2EMatcher)
register_algorithm("tcsm-eve", EVEMatcher)
register_algorithm("brute-force", BruteForceMatcher)
