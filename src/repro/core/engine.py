"""Unified matcher engine: registry, dispatch, timing.

Every matcher — the paper's three algorithms, the brute-force oracle, and
all baselines — implements the same protocol (``prepare()`` +
``run(limit, stats, deadline)``).  The engine registers them by name and
wraps a run with phase timing (preparation vs matching, the split plotted
in Fig. 14 / Table VI of the paper).

Baselines live in :mod:`repro.baselines` and are imported lazily on first
use of an unknown name, so ``import repro`` stays cheap and the core has
no dependency on the baselines package.
"""

from __future__ import annotations

import inspect
import time
from collections.abc import Callable, Iterator
from dataclasses import dataclass, field
from typing import Any, Protocol, cast

from ..errors import AlgorithmError, UnknownAlgorithmError
from ..graphs import QueryGraph, TemporalConstraints, TemporalGraph

from .bruteforce import BruteForceMatcher
from .e2e import E2EMatcher
from .eve import EVEMatcher
from .match import Match
from .stats import SearchStats
from .v2v import V2VMatcher

__all__ = [
    "Matcher",
    "MatchResult",
    "PartitionedMatcher",
    "available_algorithms",
    "count_matches",
    "create_matcher",
    "find_matches",
    "register_algorithm",
    "supports_partition",
]


class Matcher(Protocol):
    """Protocol all matchers implement."""

    name: str

    def prepare(self) -> None:  # pragma: no cover - protocol
        ...

    def run(
        self,
        limit: int | None = None,
        stats: SearchStats | None = None,
        deadline: float | None = None,
    ) -> Iterator[Match]:  # pragma: no cover - protocol
        ...


class PartitionedMatcher(Matcher, Protocol):
    """A matcher whose ``run`` additionally accepts a seed partition.

    ``partition=(index, count)`` restricts the search to a deterministic
    slice of the root position's candidates (see
    :mod:`repro.core.partition`); the ``count`` slices jointly enumerate
    exactly the unpartitioned match set, pairwise disjointly.  The three
    TCSM algorithms and the brute-force oracle implement this; baselines
    need not.
    """

    def run(
        self,
        limit: int | None = None,
        stats: SearchStats | None = None,
        deadline: float | None = None,
        partition: tuple[int, int] | None = None,
    ) -> Iterator[Match]:  # pragma: no cover - protocol
        ...


def supports_partition(matcher: Matcher) -> bool:
    """True when *matcher*'s ``run`` accepts a ``partition`` keyword."""
    try:
        parameters = inspect.signature(matcher.run).parameters
    except (TypeError, ValueError):  # pragma: no cover - exotic callables
        return False
    return "partition" in parameters


MatcherFactory = Callable[..., Matcher]

_REGISTRY: dict[str, MatcherFactory] = {}


def register_algorithm(
    name: str, factory: MatcherFactory, overwrite: bool = False
) -> None:
    """Register a matcher factory under *name* (lowercase, stable)."""
    key = name.lower()
    if key in _REGISTRY and not overwrite:
        raise ValueError(f"algorithm {name!r} already registered")
    _REGISTRY[key] = factory


def _ensure_baselines_loaded() -> None:
    """Import deferred modules so their algorithms self-register.

    Covers the baselines package and the continuous-TCSM extension, both
    of which register at import time; deferring keeps ``import repro``
    cheap and breaks the engine <-> baselines import cycle.
    """
    from .. import baselines  # noqa: F401  (import has side effects)
    from . import continuous  # noqa: F401


def available_algorithms(include_baselines: bool = True) -> tuple[str, ...]:
    """Sorted names accepted by :func:`find_matches`."""
    if include_baselines:
        _ensure_baselines_loaded()
    return tuple(sorted(_REGISTRY))


def create_matcher(
    algorithm: str,
    query: QueryGraph,
    constraints: TemporalConstraints,
    graph: TemporalGraph,
    **options: Any,
) -> Matcher:
    """Instantiate the matcher registered under *algorithm*."""
    key = algorithm.lower()
    if key not in _REGISTRY:
        _ensure_baselines_loaded()
    try:
        factory = _REGISTRY[key]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise UnknownAlgorithmError(
            f"unknown algorithm {algorithm!r}; available: {known}"
        ) from None
    return factory(query, constraints, graph, **options)


@dataclass
class MatchResult:
    """Outcome of one engine run.

    ``timed_out`` is set when the wall-clock deadline expired mid-search
    and ``truncated`` when a match limit stopped the run; either way the
    returned matches are a correct *prefix* of the full result set rather
    than a silently-short answer.
    """

    algorithm: str
    matches: list[Match]
    stats: SearchStats = field(default_factory=SearchStats)
    build_seconds: float = 0.0
    match_seconds: float = 0.0
    timed_out: bool = False
    truncated: bool = False

    @property
    def total_seconds(self) -> float:
        return self.build_seconds + self.match_seconds

    @property
    def num_matches(self) -> int:
        return len(self.matches)


def find_matches(
    query: QueryGraph,
    constraints: TemporalConstraints,
    graph: TemporalGraph,
    algorithm: str = "tcsm-eve",
    limit: int | None = None,
    time_budget: float | None = None,
    tighten: bool = False,
    collect_matches: bool = True,
    matcher: Matcher | None = None,
    partition: tuple[int, int] | None = None,
    **options: Any,
) -> MatchResult:
    """Run a matcher end to end and return matches plus measurements.

    Parameters
    ----------
    algorithm:
        Registered name, e.g. ``"tcsm-eve"``, ``"tcsm-e2e"``,
        ``"tcsm-v2v"``, ``"brute-force"``, or any baseline
        (``"ri-ds"``, ``"graphflow"``, ...).  See
        :func:`available_algorithms`.
    limit:
        Stop after this many matches.
    time_budget:
        Wall-clock seconds for the matching phase; on expiry the run stops
        with ``result.timed_out`` (and ``stats.budget_exhausted``) set.
    tighten:
        Replace the constraint set by its STN closure before matching
        (never changes the result set; ablated in the benchmarks).
    collect_matches:
        When False, matches are counted but not retained — use for
        benchmarks on match-dense instances.
    matcher:
        A pre-built (possibly already prepared) matcher to reuse instead
        of constructing one from *algorithm*; ``prepare()`` is idempotent,
        so reusing a warm matcher skips the preparation cost.  This is the
        plan-reuse hook the query service's plan cache builds on.
        *algorithm* and *options* are ignored when given.
    partition:
        ``(index, count)`` seed partition forwarded to the matcher's
        ``run`` (see :class:`PartitionedMatcher`); raises
        :class:`AlgorithmError` for matchers without partition support.
    options:
        Forwarded to the matcher constructor.
    """
    if tighten:
        constraints = constraints.closed()
    if matcher is None:
        matcher = create_matcher(
            algorithm, query, constraints, graph, **options
        )
    stats = SearchStats()

    build_start = time.perf_counter()
    matcher.prepare()
    build_seconds = time.perf_counter() - build_start

    deadline = None
    if time_budget is not None:
        deadline = time.monotonic() + time_budget

    if partition is None:
        run = matcher.run(limit=limit, stats=stats, deadline=deadline)
    else:
        if not supports_partition(matcher):
            raise AlgorithmError(
                f"matcher {matcher.name!r} does not support partitioned "
                "execution"
            )
        run = cast(PartitionedMatcher, matcher).run(
            limit=limit, stats=stats, deadline=deadline, partition=partition
        )

    matches: list[Match] = []
    match_start = time.perf_counter()
    for match in run:
        if collect_matches:
            matches.append(match)
    match_seconds = time.perf_counter() - match_start

    result = MatchResult(
        algorithm=matcher.name,
        matches=matches,
        stats=stats,
        build_seconds=build_seconds,
        match_seconds=match_seconds,
        timed_out=stats.deadline_hit,
        truncated=stats.budget_exhausted and not stats.deadline_hit,
    )
    return result


def count_matches(
    query: QueryGraph,
    constraints: TemporalConstraints,
    graph: TemporalGraph,
    algorithm: str = "tcsm-eve",
    **kwargs: Any,
) -> int:
    """Number of matches (does not retain match objects)."""
    result = find_matches(
        query,
        constraints,
        graph,
        algorithm=algorithm,
        collect_matches=False,
        **kwargs,
    )
    return result.stats.matches


# The core algorithms and the oracle register eagerly.
register_algorithm("tcsm-v2v", V2VMatcher)
register_algorithm("tcsm-e2e", E2EMatcher)
register_algorithm("tcsm-eve", EVEMatcher)
register_algorithm("brute-force", BruteForceMatcher)
