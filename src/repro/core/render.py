"""Text rendering of TCQ / TCQ+ structures (the paper's Figures 3 and 6).

Debugging a matching order is much easier when the four hash tables are
visible in the paper's own notation; :func:`render_tcq` and
:func:`render_tcq_plus` print them exactly like the figures (1-based
``u_i`` / ``e_i`` names to match the paper).
"""

from __future__ import annotations

from ..graphs import QueryGraph

from .tcq import TCQ
from .tcq_plus import TCQPlus

__all__ = ["render_tcq", "render_tcq_plus"]


def _vertex(u: int | None) -> str:
    return "-" if u is None else f"u{u + 1}"


def _edge(e: int | None) -> str:
    return "-" if e is None else f"e{e + 1}"


def render_tcq(tcq: TCQ, query: QueryGraph) -> str:
    """The TCQ's TO / PD / FV / TC tables as text (cf. Figure 3)."""
    lines = ["TCQ"]
    lines.append(
        "  TO = {"
        + ", ".join(
            f"{pos + 1}:{_vertex(u)}" for pos, u in enumerate(tcq.order)
        )
        + "}"
    )
    lines.append(
        "  PD = {"
        + ", ".join(
            f"{_vertex(tcq.order[pos])}:{_vertex(tcq.prec[pos])}"
            for pos in range(1, len(tcq.order))
        )
        + "}"
    )
    lines.append(
        "  FV = {"
        + ", ".join(
            f"{_vertex(tcq.order[pos])}:"
            + "{" + ", ".join(_vertex(w) for w in tcq.forward[pos]) + "}"
            for pos in range(len(tcq.order))
            if tcq.forward[pos]
        )
        + "}"
    )
    checks: list[str] = []
    for pos, constraints in enumerate(tcq.check_at):
        for c in constraints:
            checks.append(
                f"({_edge(c.earlier)}->{_edge(c.later)},{c.gap}):"
                f"{_vertex(tcq.order[pos])}"
            )
    lines.append("  TC = {" + ", ".join(checks) + "}")
    lines.append(
        "  tsup = {"
        + ", ".join(
            f"{_vertex(u)}:{tcq.tsup[u]}" for u in query.vertices()
        )
        + "}"
    )
    return "\n".join(lines)


def render_tcq_plus(tcq: TCQPlus, query: QueryGraph) -> str:
    """The TCQ+'s TO / PD / FE / TC tables as text (cf. Figure 6)."""
    lines = ["TCQ+"]
    lines.append(
        "  TO = {"
        + ", ".join(
            f"{pos + 1}:{_edge(e)}" for pos, e in enumerate(tcq.order)
        )
        + "}"
    )
    lines.append(
        "  PD = {"
        + ", ".join(
            f"{_edge(tcq.order[pos])}:{_edge(tcq.prec[pos])}"
            for pos in range(1, len(tcq.order))
        )
        + "}"
    )
    lines.append(
        "  FE = {"
        + ", ".join(
            f"{_edge(tcq.order[pos])}:"
            + "{" + ", ".join(_edge(e) for e in tcq.forward[pos]) + "}"
            for pos in range(len(tcq.order))
            if tcq.forward[pos]
        )
        + "}"
    )
    checks: list[str] = []
    for pos, constraints in enumerate(tcq.check_at):
        for c in constraints:
            checks.append(
                f"({_edge(c.earlier)}->{_edge(c.later)},{c.gap}):"
                f"{_edge(tcq.order[pos])}"
            )
    lines.append("  TC = {" + ", ".join(checks) + "}")
    news: list[str] = []
    for pos in range(len(tcq.order)):
        if tcq.new_vertices[pos]:
            news.append(
                f"{_edge(tcq.order[pos])}:"
                + "{" + ", ".join(_vertex(u) for u in tcq.new_vertices[pos]) + "}"
            )
    lines.append("  new vertices = {" + ", ".join(news) + "}")
    return "\n".join(lines)
