"""Candidate filters: NLF (Definition 6) and LDF (Definition 7).

Both filters are *necessary* conditions for a data vertex/edge to
participate in any match, so applying them never loses results; they trim
the initial candidate sets fed to the matchers.

Definition 6(3) as printed is *set* containment over neighbour labels.
The classic Neighbourhood Label Frequency filter the paper cites [27] uses
*count* containment, which is also sound under injective matching (distinct
query neighbours must map to distinct data neighbours).  ``count_based``
selects between the two; the default (count-based) prunes more and is the
variant ablated in ``benchmarks/bench_ablation_filters.py``.
"""

from __future__ import annotations

from ..graphs import GraphView, QueryGraph, StaticView

from .stats import SearchStats

__all__ = [
    "nlf",
    "ldf",
    "initial_vertex_candidates",
    "initial_edge_candidate_pairs",
]


def nlf(
    query: QueryGraph,
    data: StaticView,
    u: int,
    v: int,
    count_based: bool = True,
) -> bool:
    """Neighbor Label Filter: can data vertex *v* possibly match query *u*?

    Checks (Definition 6): equal labels; ``in/out`` degree dominance; and
    neighbour-label containment (count- or set-based).
    """
    if data.label(v) != query.label(u):
        return False
    if data.in_degree(v) < query.in_degree(u):
        return False
    if data.out_degree(v) < query.out_degree(u):
        return False
    query_counts = query.neighbor_label_counts(u)
    data_counts = data.neighbor_label_counts(v)
    if count_based:
        return all(
            data_counts.get(label, 0) >= needed
            for label, needed in query_counts.items()
        )
    return all(label in data_counts for label in query_counts)


def ldf(
    query: QueryGraph,
    data: StaticView,
    edge_index: int,
    data_u: int,
    data_v: int,
) -> bool:
    """Label Degree Filter: can data pair ``(data_u, data_v)`` match a query edge?

    Checks (Definition 7): label equality on both endpoints and the four
    degree-dominance conditions.
    """
    qu, qv = query.edge(edge_index)
    if data.label(data_u) != query.label(qu):
        return False
    if data.label(data_v) != query.label(qv):
        return False
    if data.in_degree(data_u) < query.in_degree(qu):
        return False
    if data.out_degree(data_u) < query.out_degree(qu):
        return False
    if data.in_degree(data_v) < query.in_degree(qv):
        return False
    if data.out_degree(data_v) < query.out_degree(qv):
        return False
    return True


def initial_vertex_candidates(
    query: QueryGraph,
    graph: GraphView,
    count_based: bool = True,
    stats: SearchStats | None = None,
) -> list[frozenset[int]]:
    """Per query vertex, the set of NLF-passing data vertices.

    This is lines 1-3 of Algorithm 2.  Only data vertices carrying the
    query label are examined, via the data graph's label index.  When
    *stats* is given, the ``"nlf"`` filter bucket records how many
    label-compatible vertices were considered and how many NLF pruned.
    """
    data = graph.static_view()
    counters = (stats or SearchStats()).filter("nlf")
    candidates: list[frozenset[int]] = []
    for u in query.vertices():
        passing: set[int] = set()
        for v in graph.vertices_with_label(query.label(u)):
            counters.considered += 1
            if nlf(query, data, u, v, count_based=count_based):
                passing.add(v)
            else:
                counters.pruned += 1
        candidates.append(frozenset(passing))
    return candidates


def initial_edge_candidate_pairs(
    query: QueryGraph,
    graph: GraphView,
    stats: SearchStats | None = None,
) -> list[frozenset[tuple[int, int]]]:
    """Per query edge, the set of LDF-passing data vertex *pairs*.

    This is lines 1-3 of Algorithm 4, with one representational twist:
    candidates are stored as static pairs rather than expanded temporal
    edges, because every timestamp of a passing pair passes too (LDF looks
    only at labels and degrees).  Matchers expand timestamps on demand.
    When *stats* is given, the ``"ldf"`` bucket records scanned vs pruned
    pairs.
    """
    data = graph.static_view()
    counters = (stats or SearchStats()).filter("ldf")
    candidates: list[frozenset[tuple[int, int]]] = []
    for edge_index, (qu, qv) in enumerate(query.edges):
        passing: set[tuple[int, int]] = set()
        # Scan only pairs whose source carries the right label.
        for data_u in graph.vertices_with_label(query.label(qu)):
            for data_v in data.out_neighbors(data_u):
                counters.considered += 1
                if ldf(query, data, edge_index, data_u, data_v):
                    passing.add((data_u, data_v))
                else:
                    counters.pruned += 1
        candidates.append(frozenset(passing))
    return candidates
