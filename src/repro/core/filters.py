"""Candidate filters: NLF (Definition 6) and LDF (Definition 7).

Both filters are *necessary* conditions for a data vertex/edge to
participate in any match, so applying them never loses results; they trim
the initial candidate sets fed to the matchers.

Definition 6(3) as printed is *set* containment over neighbour labels.
The classic Neighbourhood Label Frequency filter the paper cites [27] uses
*count* containment, which is also sound under injective matching (distinct
query neighbours must map to distinct data neighbours).  ``count_based``
selects between the two; the default (count-based) prunes more and is the
variant ablated in ``benchmarks/bench_ablation_filters.py``.

Both entry points additionally take a ``prefilter`` knob.  With
``prefilter="bitset"`` a cheap int-mask pass runs ahead of the full
filter: one arbitrary-precision Python int per needed label, bit ``v``
set when data vertex ``v`` has a neighbour carrying that label, built in
one sweep over the snapshot's label index.  A candidate failing the mask
test would necessarily fail the full filter too (a required neighbour
label that is absent entirely certainly cannot be present ``needed``
times), so the resulting candidate *sets* are identical — only the
number of full-filter evaluations drops.  Mask pruning is recorded in
the ``"bitset-nlf"`` / ``"bitset-ldf"`` :class:`FilterStats` buckets;
note the downstream ``"nlf"`` / ``"ldf"`` buckets then see (and count)
only the mask survivors, which is why the knob defaults to ``"none"``
wherever counter streams are pinned.
"""

from __future__ import annotations

from collections.abc import Hashable

from ..errors import AlgorithmError
from ..graphs import GraphView, QueryGraph, StaticView

from .stats import SearchStats

__all__ = [
    "PREFILTERS",
    "check_prefilter",
    "nlf",
    "ldf",
    "initial_vertex_candidates",
    "initial_edge_candidate_pairs",
    "neighbor_label_mask",
    "out_label_mask",
]

#: Recognised values for the ``prefilter`` knob.
PREFILTERS: tuple[str, ...] = ("none", "bitset")


def check_prefilter(prefilter: str) -> str:
    """Validate a ``prefilter`` knob value; returns it unchanged."""
    if prefilter not in PREFILTERS:
        known = ", ".join(repr(p) for p in PREFILTERS)
        raise AlgorithmError(
            f"prefilter must be one of {known}, not {prefilter!r}"
        )
    return prefilter


def neighbor_label_mask(graph: GraphView, label: Hashable) -> int:
    """Int mask: bit ``v`` set iff ``v`` has an *undirected* neighbour
    labelled *label* (the neighbourhood NLF's
    ``neighbor_label_counts`` is defined over).

    Built from the label index side: every in- or out-neighbour of a
    *label*-carrying vertex is, symmetrically, adjacent to one — so one
    sweep over those adjacency lists covers every vertex the mask must
    set, in O(sum degree of the label's vertices).
    """
    mask = 0
    for w in graph.vertices_with_label(label):
        for x in graph.out_neighbor_ids(w):
            mask |= 1 << x
        for x in graph.in_neighbor_ids(w):
            mask |= 1 << x
    return mask


def out_label_mask(graph: GraphView, label: Hashable) -> int:
    """Int mask: bit ``u`` set iff ``u`` has an out-neighbour labelled
    *label* (every in-neighbour of a *label* vertex has one)."""
    mask = 0
    for w in graph.vertices_with_label(label):
        for x in graph.in_neighbor_ids(w):
            mask |= 1 << x
    return mask


def nlf(
    query: QueryGraph,
    data: StaticView,
    u: int,
    v: int,
    count_based: bool = True,
) -> bool:
    """Neighbor Label Filter: can data vertex *v* possibly match query *u*?

    Checks (Definition 6): equal labels; ``in/out`` degree dominance; and
    neighbour-label containment (count- or set-based).
    """
    if data.label(v) != query.label(u):
        return False
    if data.in_degree(v) < query.in_degree(u):
        return False
    if data.out_degree(v) < query.out_degree(u):
        return False
    query_counts = query.neighbor_label_counts(u)
    data_counts = data.neighbor_label_counts(v)
    if count_based:
        return all(
            data_counts.get(label, 0) >= needed
            for label, needed in query_counts.items()
        )
    return all(label in data_counts for label in query_counts)


def ldf(
    query: QueryGraph,
    data: StaticView,
    edge_index: int,
    data_u: int,
    data_v: int,
) -> bool:
    """Label Degree Filter: can data pair ``(data_u, data_v)`` match a query edge?

    Checks (Definition 7): label equality on both endpoints and the four
    degree-dominance conditions.
    """
    qu, qv = query.edge(edge_index)
    if data.label(data_u) != query.label(qu):
        return False
    if data.label(data_v) != query.label(qv):
        return False
    if data.in_degree(data_u) < query.in_degree(qu):
        return False
    if data.out_degree(data_u) < query.out_degree(qu):
        return False
    if data.in_degree(data_v) < query.in_degree(qv):
        return False
    if data.out_degree(data_v) < query.out_degree(qv):
        return False
    return True


def initial_vertex_candidates(
    query: QueryGraph,
    graph: GraphView,
    count_based: bool = True,
    stats: SearchStats | None = None,
    prefilter: str = "none",
) -> list[frozenset[int]]:
    """Per query vertex, the set of NLF-passing data vertices.

    This is lines 1-3 of Algorithm 2.  Only data vertices carrying the
    query label are examined, via the data graph's label index.  When
    *stats* is given, the ``"nlf"`` filter bucket records how many
    label-compatible vertices were considered and how many NLF pruned.

    ``prefilter="bitset"`` screens each vertex against the intersection
    of the :func:`neighbor_label_mask` of every neighbour label the
    query vertex requires before the (dict-walking) NLF check runs; the
    ``"bitset-nlf"`` bucket records that pass.  The returned sets are
    identical either way — a vertex missing a required neighbour label
    fails NLF's containment check too.
    """
    check_prefilter(prefilter)
    data = graph.static_view()
    tallies = stats or SearchStats()
    counters = tallies.filter("nlf")
    bitset = prefilter == "bitset"
    bit_counters = tallies.filter("bitset-nlf") if bitset else None
    label_masks: dict[Hashable, int] = {}
    candidates: list[frozenset[int]] = []
    for u in query.vertices():
        allowed = -1  # all bits set: the empty intersection prunes nothing
        if bitset:
            for label in query.neighbor_label_counts(u):
                mask = label_masks.get(label)
                if mask is None:
                    mask = neighbor_label_mask(graph, label)
                    label_masks[label] = mask
                allowed &= mask
        passing: set[int] = set()
        for v in graph.vertices_with_label(query.label(u)):
            if bit_counters is not None:
                bit_counters.considered += 1
                if not (allowed >> v) & 1:
                    bit_counters.pruned += 1
                    continue
            counters.considered += 1
            if nlf(query, data, u, v, count_based=count_based):
                passing.add(v)
            else:
                counters.pruned += 1
        candidates.append(frozenset(passing))
    return candidates


def initial_edge_candidate_pairs(
    query: QueryGraph,
    graph: GraphView,
    stats: SearchStats | None = None,
    prefilter: str = "none",
) -> list[frozenset[tuple[int, int]]]:
    """Per query edge, the set of LDF-passing data vertex *pairs*.

    This is lines 1-3 of Algorithm 4, with one representational twist:
    candidates are stored as static pairs rather than expanded temporal
    edges, because every timestamp of a passing pair passes too (LDF looks
    only at labels and degrees).  Matchers expand timestamps on demand.
    When *stats* is given, the ``"ldf"`` bucket records scanned vs pruned
    pairs.

    ``prefilter="bitset"`` screens each candidate *source* against the
    :func:`out_label_mask` of the edge's target label before its
    adjacency list is scanned at all; the ``"bitset-ldf"`` bucket
    records sources screened vs skipped.  The returned pair sets are
    identical either way — a source with no correctly-labelled
    out-neighbour contributes no LDF-passing pair.
    """
    check_prefilter(prefilter)
    data = graph.static_view()
    tallies = stats or SearchStats()
    counters = tallies.filter("ldf")
    bitset = prefilter == "bitset"
    bit_counters = tallies.filter("bitset-ldf") if bitset else None
    target_masks: dict[Hashable, int] = {}
    candidates: list[frozenset[tuple[int, int]]] = []
    for edge_index, (qu, qv) in enumerate(query.edges):
        allowed = -1
        if bitset:
            target_label = query.label(qv)
            mask = target_masks.get(target_label)
            if mask is None:
                mask = out_label_mask(graph, target_label)
                target_masks[target_label] = mask
            allowed = mask
        passing: set[tuple[int, int]] = set()
        # Scan only pairs whose source carries the right label.
        for data_u in graph.vertices_with_label(query.label(qu)):
            if bit_counters is not None:
                bit_counters.considered += 1
                if not (allowed >> data_u) & 1:
                    bit_counters.pruned += 1
                    continue
            for data_v in data.out_neighbors(data_u):
                counters.considered += 1
                if ldf(query, data, edge_index, data_u, data_v):
                    passing.add((data_u, data_v))
                else:
                    counters.pruned += 1
        candidates.append(frozenset(passing))
    return candidates
