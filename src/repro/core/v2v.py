"""TCSM-V2V: vertex-to-vertex expansion matching (Algorithm 2).

The basic algorithm of the paper.  Vertices are matched in TCQ order;
candidates for each vertex come from the data neighbourhood of its prec's
match, are filtered by the initial NLF candidate sets, structurally
validated against the forward vertices (FV), and temporally validated by
an *existential* window check as soon as a constraint's last vertex is
matched.  Once all vertices are embedded, the per-edge timestamp choices
that jointly satisfy the constraint set are enumerated — the "edge
permutation" step that makes V2V pay on temporally dense instances.
"""

from __future__ import annotations

import time
from collections.abc import Collection, Iterator, Sequence
from typing import cast

from ..errors import AlgorithmError
from ..graphs import (
    GraphView,
    QueryGraph,
    TemporalConstraints,
    ensure_snapshot,
)
from ..obs import NULL_TRACER, TraceSink

from .codegen import CompiledPlan, compile_enumerator
from .filters import check_prefilter, initial_vertex_candidates
from .match import Match
from .options import RunContext, resolve_run_context
from .partition import partition_slice
from .planner import plan_costs, validate_plan
from .sinks import CollectSink, ResultSink, StopEnumeration
from .stats import SearchStats
from .tcq import TCQ, build_tcq
from .timestamps import iter_timestamp_assignments, windows_compatible
from .windows import (
    constraint_slices,
    propagate_run_windows,
    windowed_times,
)

__all__ = ["V2VMatcher"]


class V2VMatcher:
    """Matcher implementing TCSM-V2V.

    Parameters
    ----------
    query, constraints, graph:
        The matching problem.
    count_based_nlf:
        Use count-based neighbour-label containment in the initial filter
        (default) rather than the set-based reading of Definition 6.
    intersect_candidates:
        When True (default), DFS candidates must also belong to the
        initial NLF candidate set of their query vertex.  Algorithm 2's
        line 15 filters by label only; the intersection is sound and
        strictly stronger (ablation knob, see DESIGN.md decision 3).
    use_windows:
        Forwarded to the joint timestamp solver (STN window pruning).
    use_window_kernel:
        When True (default), the existential temporal checks and the leaf
        timestamp enumeration read only the STN-feasible slice of each
        pair's sorted timestamp run (see :mod:`repro.core.windows`);
        skipped timestamps are counted in ``stats.timestamps_skipped``.
        False restores the expand-then-filter behaviour (ablation knob;
        match multisets are pinned identical either way).
    plan:
        ``"paper"`` (default) uses Algorithm 1's tsup-greedy matching
        order; ``"cost"`` asks :mod:`repro.core.planner` to choose the
        cheapest order under the data graph's statistics.
    compile_graph:
        When True (default), ``prepare`` freezes the data graph into a
        CSR :class:`~repro.graphs.GraphSnapshot` and the hot loops run
        against it; pass False to run against the mutable dict-backed
        graph directly (the equivalence tests pin that both paths
        produce identical match multisets and filter counters).  A
        :class:`GraphSnapshot` input is used as-is either way.
    codegen:
        When True, ``prepare`` compiles a specialized enumeration
        function for the concrete (query shape, matching order, STN
        closure) via :mod:`repro.core.codegen` and ``run_sink``
        dispatches to it; match multisets and every ``SearchStats``
        counter are pinned bit-identical to the interpreted loop.
    prefilter:
        ``"bitset"`` prunes NLF candidates with int-mask neighbour-label
        prefilters before the full NLF check (see
        :func:`repro.core.filters.initial_vertex_candidates`);
        ``"none"`` (default) keeps the plain scan.  Candidate sets are
        identical either way.
    """

    name = "tcsm-v2v"
    supports_partition = True
    #: :mod:`repro.core.codegen` has a specializing generator for this
    #: matcher (the engine consults this before forwarding the
    #: ``codegen`` option to the constructor).
    supports_codegen = True

    def __init__(
        self,
        query: QueryGraph,
        constraints: TemporalConstraints,
        graph: GraphView,
        count_based_nlf: bool = True,
        intersect_candidates: bool = True,
        use_windows: bool = True,
        use_window_kernel: bool = True,
        plan: str = "paper",
        compile_graph: bool = True,
        codegen: bool = False,
        prefilter: str = "none",
    ) -> None:
        if constraints.num_edges != query.num_edges:
            raise AlgorithmError(
                f"constraints expect {constraints.num_edges} query edges, "
                f"query has {query.num_edges}"
            )
        self.query = query
        self.constraints = constraints
        self.graph = graph
        self.compile_graph = compile_graph
        #: Resolved data-plane view; ``prepare`` swaps in the frozen
        #: snapshot when ``compile_graph`` is set.
        self._view: GraphView = graph
        self.count_based_nlf = count_based_nlf
        self.intersect_candidates = intersect_candidates
        self.use_windows = use_windows
        self.use_window_kernel = use_window_kernel
        self.plan = validate_plan(plan)
        self.codegen = codegen
        self.prefilter = check_prefilter(prefilter)
        #: Specialized enumerator compiled by ``prepare`` when
        #: ``codegen`` is set; None means the interpreted loop runs.
        self._compiled: CompiledPlan | None = None
        #: STN distance matrix for the window kernel (set by ``prepare``
        #: when ``use_window_kernel`` is on; None disables the kernel).
        self._dist: list[list[float]] | None = None
        self.candidates: list[frozenset[int]] | None = None
        self.tcq: TCQ | None = None
        #: Filter counters accumulated during ``prepare`` (the engine
        #: merges them into the run stats exactly once per query).
        self.prepare_stats = SearchStats()
        self._prepared = False

    # ------------------------------------------------------------------
    # preparation (Algorithm 2 lines 1-4); timed separately by the engine
    # ------------------------------------------------------------------
    def prepare(self, tracer: TraceSink | None = None) -> None:
        """Compute initial candidates and build the TCQ (idempotent)."""
        if self._prepared:
            return
        tr = tracer if tracer is not None else NULL_TRACER
        if self.compile_graph:
            with tr.span("compile-snapshot"):
                self._view = ensure_snapshot(self.graph)
        with tr.span(
            "candidate-filter:nlf", vertices=self.query.num_vertices
        ) as sp:
            self.candidates = initial_vertex_candidates(
                self.query,
                self._view,
                count_based=self.count_based_nlf,
                stats=self.prepare_stats,
                prefilter=self.prefilter,
            )
            sp.annotate(**self.prepare_stats.filter("nlf").as_dict())
        self.tcq = build_tcq(
            self.query,
            self.constraints,
            candidate_counts=[len(c) for c in self.candidates],
            plan=self.plan,
            costs=plan_costs(self._view) if self.plan == "cost" else None,
        )
        if self.use_window_kernel:
            self._dist = self.constraints.distance_matrix()
        # Per position: the directed query edges linking the vertex to its
        # prec, and the forward-vertex structural checks.
        query = self.query
        tcq = self.tcq
        self._prec_needs: list[tuple[bool, bool]] = []
        self._fv_checks: list[tuple[tuple[int, bool, bool], ...]] = []
        for pos, u in enumerate(tcq.order):
            u_prec = tcq.prec[pos]
            if u_prec is None:
                self._prec_needs.append((False, False))
            else:
                self._prec_needs.append(
                    (query.has_edge(u_prec, u), query.has_edge(u, u_prec))
                )
            checks: list[tuple[int, bool, bool]] = []
            for w in tcq.forward[pos]:
                checks.append(
                    (w, query.has_edge(u, w), query.has_edge(w, u))
                )
            self._fv_checks.append(tuple(checks))
        # Per constraint edge: endpoint pair for quick lookup.
        self._edge_endpoints = self.query.edges
        self._required_edge_labels = self.query.edge_labels
        if self.codegen:
            with tr.span("codegen-compile", algorithm=self.name) as sp:
                self._compiled = compile_enumerator(self)
                sp.annotate(compiled=self._compiled is not None)
        self._prepared = True

    @property
    def compiled_source(self) -> str | None:
        """Generated source of the specialized enumerator, if compiled.

        The debug hook documented in ``docs/CODEGEN.md``; ``None`` when
        ``codegen`` is off, ``prepare`` has not run, or the generator
        bailed on this query shape.
        """
        return None if self._compiled is None else self._compiled.source

    def _edge_times(
        self, edge_index: int, du: int, dv: int
    ) -> Sequence[int]:
        """Timestamps of data pair ``(du, dv)`` admissible for a query edge
        (honours the edge-label generalisation).

        Returns the full sorted run without touching counters; callers
        account expansion via :mod:`repro.core.windows` (kernel on) or
        directly (kernel off).
        """
        required = self._required_edge_labels[edge_index]
        if required is None:
            return self._view.timestamps_list(du, dv)
        return self._view.timestamps_with_label(du, dv, required)

    # ------------------------------------------------------------------
    # matching (Algorithm 2 lines 5-27)
    # ------------------------------------------------------------------
    def run(
        self,
        ctx: RunContext | None = None,
        *,
        limit: int | None = None,
        stats: SearchStats | None = None,
        deadline: float | None = None,
        partition: tuple[int, int] | None = None,
    ) -> Iterator[Match]:
        """Yield all matches (compat facade over :meth:`run_sink`).

        Run-time state arrives as one :class:`RunContext`; the individual
        keywords are the legacy shim.  ``ctx.partition=(index, count)``
        restricts the search to the slice of the *root* vertex's
        candidates owned by that partition (see
        :mod:`repro.core.partition`); the ``count`` partitions jointly
        enumerate exactly the unpartitioned match set, disjointly.
        ``ctx.limit`` and the deadline still stop the search early; the
        returned generator replays the collected prefix.
        """
        context = resolve_run_context(
            ctx, limit=limit, stats=stats, deadline=deadline, partition=partition
        )
        self.prepare()
        return self._run_collected(context)

    def _run_collected(self, ctx: RunContext) -> Iterator[Match]:
        sink = CollectSink(limit=ctx.limit)
        self.run_sink(ctx, sink)
        yield from sink.finish()

    def run_sink(self, ctx: RunContext, sink: ResultSink) -> None:
        """Push every match into *sink* — the primary entry point.

        A satisfied sink raises :class:`StopEnumeration`, which unwinds
        the DFS recursion directly (no further candidates generated, no
        further timestamps expanded); the stop is recorded on
        ``ctx.stats`` as ``budget_exhausted`` + ``limit_hit``.
        """
        self.prepare()
        try:
            if self._compiled is not None:
                self._compiled.entry(ctx, sink)
            else:
                self._run_sink(ctx, sink)
        except StopEnumeration:
            ctx.stats.budget_exhausted = True
            if not ctx.stats.deadline_hit:
                ctx.stats.limit_hit = True

    def _run_sink(self, ctx: RunContext, sink: ResultSink) -> None:
        deadline = ctx.deadline
        partition = ctx.partition
        search_stats = ctx.stats
        # prepare() populated these; the casts rebind them non-Optional
        # because narrowing does not propagate into the closures below.
        tcq = cast(TCQ, self.tcq)
        candidates = cast("list[frozenset[int]]", self.candidates)
        query = self.query
        graph = self._view
        n = query.num_vertices
        vertex_map: list[int | None] = [None] * n
        # Read-only view of vertex_map: every position read below is bound,
        # since the TCQ order matches prec/forward vertices first.
        bound = cast("list[int]", vertex_map)
        used: set[int] = set()
        root_candidates: list[int] | None = None
        if partition is not None:
            root_candidates = partition_slice(
                candidates[tcq.order[0]],
                partition,
                strategy=ctx.partition_strategy,
                label_of=graph.label,
            )
        # Per-filter pruning counters, fetched once so the hot loop only
        # touches ints.  Chained on the same candidate stream, so each
        # filter's ``considered`` equals the previous one's ``survivors``.
        intersect_counters = search_stats.filter("intersect")
        inj_counters = search_stats.filter("injectivity")
        structure_counters = search_stats.filter("structure")
        temporal_counters = search_stats.filter("temporal")

        use_kernel = self._dist is not None

        def temporal_ok(pos: int) -> bool:
            """Existential window check for constraints closing at *pos*.

            With the window kernel on, each run is first bisected to the
            slice the *other* run's endpoints allow — the pair check then
            touches only mutually feasible timestamps.
            """
            for c in tcq.check_at[pos]:
                eu, ev = self._edge_endpoints[c.earlier]
                lu, lv = self._edge_endpoints[c.later]
                earlier_times = self._edge_times(c.earlier, bound[eu], bound[ev])
                later_times = self._edge_times(c.later, bound[lu], bound[lv])
                if use_kernel:
                    earlier_times, later_times = constraint_slices(
                        earlier_times, later_times, c.gap, search_stats
                    )
                else:
                    search_stats.timestamps_expanded += len(
                        earlier_times
                    ) + len(later_times)
                if not windows_compatible(earlier_times, later_times, c.gap):
                    return False
            return True

        def structure_ok(pos: int, v: int) -> bool:
            for w, need_uw, need_wu in self._fv_checks[pos]:
                dw = bound[w]
                if need_uw and not graph.has_pair(v, dw):
                    return False
                if need_wu and not graph.has_pair(dw, v):
                    return False
            return True

        def dfs(pos: int) -> None:
            if deadline is not None and time.monotonic() > deadline:
                search_stats.budget_exhausted = True
                search_stats.deadline_hit = True
                raise StopEnumeration
            if pos == n:
                self._emit_matches(vertex_map, search_stats, pos, sink)
                return
            search_stats.nodes_expanded += 1
            u = tcq.order[pos]
            u_prec = tcq.prec[pos]
            allowed = candidates[u]
            base: Collection[int]
            if u_prec is None:
                # Only the root (pos 0) may be partitioned; later component
                # seeds must stay exhaustive or matches would be lost.
                if pos == 0 and root_candidates is not None:
                    base = root_candidates
                else:
                    base = allowed
            else:
                d_prec = bound[u_prec]
                need_out, need_in = self._prec_needs[pos]
                if need_out and need_in:
                    # Pair probe (dict O(1) / CSR bisect) rather than a
                    # membership test on the neighbour sequence, which
                    # would be linear on the array-backed view.
                    base = [
                        x
                        for x in graph.in_neighbor_ids(d_prec)
                        if graph.has_pair(d_prec, x)
                    ]
                elif need_out:
                    base = graph.out_neighbor_ids(d_prec)
                else:
                    base = graph.in_neighbor_ids(d_prec)
            produced = False
            for v in base:
                if deadline is not None and time.monotonic() > deadline:
                    search_stats.budget_exhausted = True
                    search_stats.deadline_hit = True
                    raise StopEnumeration
                search_stats.candidates_generated += 1
                intersect_counters.considered += 1
                if self.intersect_candidates or u_prec is None:
                    if v not in allowed:
                        intersect_counters.pruned += 1
                        search_stats.record_fail(pos + 1)
                        continue
                elif graph.label(v) != query.label(u):
                    intersect_counters.pruned += 1
                    search_stats.record_fail(pos + 1)
                    continue
                inj_counters.considered += 1
                if v in used:
                    inj_counters.pruned += 1
                    search_stats.record_fail(pos + 1)
                    continue
                search_stats.validations += 1
                structure_counters.considered += 1
                if not structure_ok(pos, v):
                    structure_counters.pruned += 1
                    search_stats.record_fail(pos + 1)
                    continue
                vertex_map[u] = v
                temporal_counters.considered += 1
                if not temporal_ok(pos):
                    temporal_counters.pruned += 1
                    vertex_map[u] = None
                    search_stats.record_fail(pos + 1)
                    continue
                produced = True
                used.add(v)
                dfs(pos + 1)
                used.discard(v)
                vertex_map[u] = None
            if not produced:
                search_stats.record_fail(pos + 1)

        dfs(0)

    def _emit_matches(
        self,
        vertex_map: list[int | None],
        stats: SearchStats,
        pos: int,
        sink: ResultSink,
    ) -> None:
        """Joint timestamp enumeration for a complete vertex embedding.

        With the window kernel on, one interval-propagation pass over the
        run endpoints (:func:`propagate_run_windows`) shrinks every run
        to its STN-feasible slice before the joint solver expands
        anything — or proves no assignment exists without expanding at
        all.
        """
        complete = cast("list[int]", vertex_map)  # all positions bound here
        runs = [
            self._edge_times(index, complete[u], complete[v])
            for index, (u, v) in enumerate(self._edge_endpoints)
        ]
        options: list[Sequence[int]] | None
        if self._dist is not None:
            windows = propagate_run_windows(runs, self._dist)
            if windows is None:
                for run in runs:
                    stats.timestamps_skipped += len(run)
                options = None
            else:
                options = [
                    windowed_times(run, window, stats)
                    for run, window in zip(runs, windows)
                ]
        else:
            for run in runs:
                stats.timestamps_expanded += len(run)
            options = runs
        join_counters = stats.filter("timestamp-join")
        join_counters.considered += 1
        any_assignment = False
        final_map = tuple(complete)
        if options is not None:
            for times in iter_timestamp_assignments(
                options, self.constraints, use_windows=self.use_windows
            ):
                any_assignment = True
                stats.matches += 1
                sink.accept(Match.from_vertex_map(self.query, final_map, times))
        if not any_assignment:
            join_counters.pruned += 1
            stats.record_fail(pos)
