"""repro: temporal-constraint subgraph matching (TCSM).

A from-scratch Python reproduction of *On Temporal-Constraint Subgraph
Matching* (Leng et al., ICDE 2025): the TCSM-V2V / TCSM-E2E / TCSM-EVE
algorithms, the baselines they are compared against, synthetic stand-ins
for the evaluation datasets, and a harness that regenerates every table
and figure of the paper's evaluation.

Quickstart::

    from repro import QueryBuilder, TemporalGraphBuilder, TemporalConstraints
    from repro import find_matches

    qb = QueryBuilder()
    qb.vertex("a", "acct").vertex("b", "acct").vertex("c", "acct")
    qb.edge("a", "b"); qb.edge("b", "c")
    query, _ = qb.build()
    tc = TemporalConstraints([(0, 1, 3)], num_edges=query.num_edges)
    # ... build a TemporalGraph `data` ...
    # matches = list(find_matches(query, tc, data, algorithm="eve"))
"""

from .errors import (
    AlgorithmError,
    BudgetExceededError,
    ConstraintError,
    DatasetError,
    GraphError,
    InfeasibleConstraintsError,
    QueryError,
    ReproError,
    UnknownAlgorithmError,
)
from . import api
from .core import (
    Match,
    MatchOptions,
    MatchResult,
    RunContext,
    SearchStats,
    available_algorithms,
    constraint_slack,
    count_matches,
    count_motif,
    create_matcher,
    estimate_match_count,
    explain_match,
    find_matches,
    is_valid_match,
    ordered_motif_constraints,
    register_algorithm,
)
from .graphs import (
    Constraint,
    QueryBuilder,
    QueryGraph,
    StaticGraph,
    TemporalEdge,
    TemporalGraph,
    TemporalGraphBuilder,
    TemporalConstraints,
    load_snap_temporal,
    save_snap_temporal,
)

__version__ = "0.1.0"

__all__ = [
    "AlgorithmError",
    "BudgetExceededError",
    "Constraint",
    "ConstraintError",
    "DatasetError",
    "GraphError",
    "InfeasibleConstraintsError",
    "Match",
    "MatchOptions",
    "MatchResult",
    "QueryBuilder",
    "QueryError",
    "QueryGraph",
    "ReproError",
    "RunContext",
    "SearchStats",
    "StaticGraph",
    "TemporalEdge",
    "TemporalGraph",
    "TemporalGraphBuilder",
    "TemporalConstraints",
    "UnknownAlgorithmError",
    "api",
    "available_algorithms",
    "constraint_slack",
    "count_matches",
    "count_motif",
    "create_matcher",
    "estimate_match_count",
    "explain_match",
    "find_matches",
    "is_valid_match",
    "load_snap_temporal",
    "ordered_motif_constraints",
    "register_algorithm",
    "save_snap_temporal",
    "__version__",
]
