"""A lightweight nested-span tracer for matcher execution.

Design constraints, in order:

1. **Disabled must be free.**  Every hot path in the engine holds a tracer
   reference unconditionally, so the disabled form (:data:`NULL_TRACER`)
   allocates nothing per span: ``span()`` returns one shared no-op context
   manager.  Span emission sites are phase-granular (prepare, per-filter,
   enumerate, per-partition) — never per-candidate — so even an *enabled*
   tracer costs a handful of span objects per query.
2. **Thread-correct.**  Partitioned execution runs one query across a
   worker pool; parent/child nesting is tracked per thread (spans opened
   on different threads are siblings, never mis-parented), and the
   finished-span list is appended under a lock.
3. **Exportable.**  Finished spans carry everything the Chrome trace-event
   format needs (name, start, duration, thread, parent, attributes); the
   exporters live in :mod:`repro.obs.export`.

Spans follow strict stack discipline per thread (enforced by the
``with tracer.span(...)`` form; reprolint rule R010 flags bypasses), so
within a thread the recorded intervals are always well nested.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable, Iterator
from dataclasses import dataclass, field
from types import TracebackType
from typing import Any, Protocol, runtime_checkable

__all__ = ["NULL_TRACER", "NullTracer", "Span", "TraceSink", "Tracer"]


@dataclass(frozen=True)
class Span:
    """One finished span: a named, attributed wall-clock interval.

    ``start``/``end`` are :func:`time.perf_counter` readings relative to
    the owning tracer's epoch; ``thread`` is a small per-tracer thread
    index (0 for the first thread that emitted a span) so exports stay
    readable regardless of OS thread ids.
    """

    span_id: int
    parent_id: int | None
    name: str
    start: float
    end: float
    thread: int
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


@runtime_checkable
class TraceSink(Protocol):
    """What instrumented code needs from a tracer: ``span()`` + ``enabled``."""

    enabled: bool

    def span(
        self, name: str, **attrs: Any
    ) -> "_ActiveSpan | _NullSpan":  # pragma: no cover - protocol
        ...


class _NullSpan:
    """Shared, reusable no-op context manager (the disabled-span object)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        return None

    def annotate(self, **attrs: Any) -> None:
        """No-op counterpart of :meth:`_ActiveSpan.annotate`."""


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every call is a no-op on shared objects.

    Stateless and safe to share globally; :data:`NULL_TRACER` is the one
    instance the engine wires in by default.
    """

    __slots__ = ()

    enabled = False

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def spans(self) -> tuple[Span, ...]:
        return ()


NULL_TRACER = NullTracer()


class _ActiveSpan:
    """An open span; finishes (and records itself) on ``__exit__``."""

    __slots__ = ("_tracer", "name", "attrs", "_start", "_span_id", "_parent_id")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self._start = 0.0
        self._span_id = -1
        self._parent_id: int | None = None

    def annotate(self, **attrs: Any) -> None:
        """Attach attributes discovered mid-span (e.g. result counts)."""
        self.attrs.update(attrs)

    def __enter__(self) -> "_ActiveSpan":
        tracer = self._tracer
        stack = tracer._stack()
        self._parent_id = stack[-1]._span_id if stack else None
        self._span_id = tracer._next_id()
        stack.append(self)
        self._start = tracer._clock()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        end = self._tracer._clock()
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._finish(self, end)
        return None


class Tracer:
    """Records nested spans; one instance per traced query.

    Use as::

        tracer = Tracer()
        with tracer.span("prepare", algorithm="tcsm-eve"):
            ...
        events = chrome_trace_events(tracer)

    Span nesting is tracked per thread; the finished-span list is
    thread-safe.  The tracer never needs explicit finalisation — spans
    record themselves when their ``with`` block exits.
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self.epoch = clock()
        self._spans: list[Span] = []
        self._lock = threading.Lock()
        self._counter = 0
        self._local = threading.local()
        self._thread_ids: dict[int, int] = {}

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def span(self, name: str, **attrs: Any) -> _ActiveSpan:
        """Open a span; use only as ``with tracer.span(name): ...``."""
        return _ActiveSpan(self, name, attrs)

    def _stack(self) -> list[_ActiveSpan]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _next_id(self) -> int:
        with self._lock:
            span_id = self._counter
            self._counter += 1
            return span_id

    def _finish(self, active: _ActiveSpan, end: float) -> None:
        stack = self._stack()
        # Stack discipline: the closing span is the innermost open one on
        # this thread.  Out-of-order closes (only reachable by bypassing
        # the `with` form) unwind to the matching entry.
        while stack and stack[-1] is not active:
            stack.pop()
        if stack:
            stack.pop()
        native = threading.get_ident()
        with self._lock:
            thread = self._thread_ids.setdefault(native, len(self._thread_ids))
            self._spans.append(
                Span(
                    span_id=active._span_id,
                    parent_id=active._parent_id,
                    name=active.name,
                    start=active._start - self.epoch,
                    end=end - self.epoch,
                    thread=thread,
                    attrs=active.attrs,
                )
            )

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def spans(self) -> tuple[Span, ...]:
        """Finished spans, ordered by start time (stable across threads)."""
        with self._lock:
            return tuple(sorted(self._spans, key=lambda s: (s.start, s.span_id)))

    def iter_spans(self, name: str) -> Iterator[Span]:
        """Finished spans whose name equals or prefixes *name* + ``":"``."""
        prefix = name + ":"
        for span in self.spans():
            if span.name == name or span.name.startswith(prefix):
                yield span

    def total_seconds(self, name: str) -> float:
        """Summed duration of all spans matching *name* (prefix-aware)."""
        return sum(span.duration for span in self.iter_spans(name))

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)
