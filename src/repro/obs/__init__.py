"""Execution tracing and pruning observability (see docs/OBSERVABILITY.md).

The :class:`Tracer` records nested wall-clock spans emitted by the engine,
the matchers and the service executor; :data:`NULL_TRACER` is the always-on
no-op stand-in that keeps the instrumentation wired into every hot path at
near-zero cost.  Exporters turn a finished trace into Chrome trace-event
JSON (loadable in ``chrome://tracing`` / Perfetto) or a plain-text span
tree.
"""

from .export import (
    chrome_trace_events,
    render_span_tree,
    to_chrome_trace,
    write_chrome_trace,
)
from .tracer import NULL_TRACER, NullTracer, Span, TraceSink, Tracer

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "TraceSink",
    "Tracer",
    "chrome_trace_events",
    "render_span_tree",
    "to_chrome_trace",
    "write_chrome_trace",
]
