"""Execution tracing and pruning observability (see docs/OBSERVABILITY.md).

The :class:`Tracer` records nested wall-clock spans emitted by the engine,
the matchers and the service executor; :data:`NULL_TRACER` is the always-on
no-op stand-in that keeps the instrumentation wired into every hot path at
near-zero cost.  Exporters turn a finished trace into Chrome trace-event
JSON (loadable in ``chrome://tracing`` / Perfetto) or a plain-text span
tree.  :mod:`repro.obs.sanitize` is the runtime concurrency sanitizer
(write barriers + lock-held assertions) toggled by ``REPRO_SANITIZE=1``.
"""

from .export import (
    chrome_trace_events,
    render_span_tree,
    to_chrome_trace,
    write_chrome_trace,
)
from .sanitize import SanitizerError, assert_lock_held, sanitize_enabled
from .tracer import NULL_TRACER, NullTracer, Span, TraceSink, Tracer

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "SanitizerError",
    "Span",
    "TraceSink",
    "Tracer",
    "assert_lock_held",
    "chrome_trace_events",
    "render_span_tree",
    "sanitize_enabled",
    "to_chrome_trace",
    "write_chrome_trace",
]
