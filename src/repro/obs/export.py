"""Trace exporters: Chrome trace-event JSON and a plain-text span tree.

The Chrome export emits ``ph: "X"`` (complete) events — one per finished
span — with microsecond timestamps relative to the tracer's epoch, which
``chrome://tracing`` and Perfetto load directly.  The text export renders
the same spans as an indented tree with durations, for terminals and log
files.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from .tracer import NullTracer, Span, Tracer

__all__ = [
    "chrome_trace_events",
    "render_span_tree",
    "to_chrome_trace",
    "write_chrome_trace",
]


def chrome_trace_events(
    tracer: Tracer | NullTracer, pid: int = 1
) -> list[dict[str, Any]]:
    """Finished spans as Chrome trace-event objects (``ph: "X"``).

    Timestamps and durations are microseconds from the tracer's epoch;
    span attributes travel in ``args`` (with the span/parent ids added so
    the hierarchy survives even without visual nesting).
    """
    events: list[dict[str, Any]] = []
    for span in tracer.spans():
        args: dict[str, Any] = {"span_id": span.span_id}
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        for key, value in span.attrs.items():
            args[key] = value if isinstance(value, (int, float, bool)) else str(value)
        events.append(
            {
                "name": span.name,
                "ph": "X",
                "ts": round(span.start * 1e6, 3),
                "dur": round(span.duration * 1e6, 3),
                "pid": pid,
                "tid": span.thread,
                "cat": span.name.split(":", 1)[0],
                "args": args,
            }
        )
    return events


def to_chrome_trace(
    tracer: Tracer | NullTracer, pid: int = 1
) -> dict[str, Any]:
    """The full Chrome trace document: events plus display metadata."""
    return {
        "traceEvents": chrome_trace_events(tracer, pid=pid),
        "displayTimeUnit": "ms",
    }


def write_chrome_trace(
    tracer: Tracer | NullTracer, path: str | Path, pid: int = 1
) -> Path:
    """Write the Chrome trace JSON to *path* and return it."""
    path = Path(path)
    path.write_text(
        json.dumps(to_chrome_trace(tracer, pid=pid), indent=2) + "\n",
        encoding="utf-8",
    )
    return path


def _format_duration(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 0.001:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.0f}us"


def render_span_tree(tracer: Tracer | NullTracer) -> str:
    """The trace as an indented text tree, one line per span.

    Roots (spans with no parent) appear in start order; children indent
    under their parent.  Attributes render as ``key=value`` suffixes.
    """
    spans = tracer.spans()
    if not spans:
        return "(no spans recorded)"
    children: dict[int | None, list[Span]] = {}
    for span in spans:
        children.setdefault(span.parent_id, []).append(span)

    lines: list[str] = []

    def render(span: Span, depth: int) -> None:
        indent = "  " * depth
        suffix = ""
        if span.attrs:
            suffix = "  [" + " ".join(
                f"{key}={value}" for key, value in sorted(span.attrs.items())
            ) + "]"
        lines.append(
            f"{indent}{span.name:<{max(1, 40 - len(indent))}} "
            f"{_format_duration(span.duration):>10}{suffix}"
        )
        for child in children.get(span.span_id, ()):
            render(child, depth + 1)

    for root in children.get(None, ()):
        render(root, 0)
    return "\n".join(lines)
