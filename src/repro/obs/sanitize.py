"""Runtime concurrency sanitizer: the dynamic half of R013/R014.

The static analyzer (``tools/reprolint`` rules R013–R016) proves lock
discipline and frozen-state immutability *syntactically*; this module
enforces the same contracts *at runtime* so the two layers
cross-validate.  It is stdlib-only and dependency-free by design — the
graphs layer imports it, so it must sit at the bottom of the import
graph.

Enable with ``REPRO_SANITIZE=1`` in the environment (CI runs the tier-1
suite once this way) or per-call with ``MatchOptions(sanitize=True)``.
When active:

* the engine wraps input :class:`~repro.graphs.snapshot.GraphSnapshot`
  objects in a write-barrier subclass whose ``__setattr__`` raises
  :class:`SanitizerError` on any post-construction mutation (the lazy
  cache slots certified idempotent by the R014 pragmas stay writable);
* the service layer's ``*_locked()`` helpers call
  :func:`assert_lock_held`, turning a lock-discipline violation — a
  helper reached without its guarding lock — into an immediate error
  at the exact site instead of a silent data race.

Both checks are zero-cost when disabled: the env flag is read per call
site (not cached) so tests can toggle it, and ``assert_lock_held``
returns before touching the lock when the sanitizer is off.
"""

from __future__ import annotations

import os
import threading

__all__ = [
    "SanitizerError",
    "assert_lock_held",
    "sanitize_enabled",
]

_ENV_FLAG = "REPRO_SANITIZE"

#: Values of the env var treated as "off" (anything else enables).
_FALSY = {"", "0", "false", "no", "off"}


class SanitizerError(AssertionError):
    """A runtime concurrency-contract violation.

    Subclasses ``AssertionError`` so existing ``pytest.raises`` habits
    and "assertions are contract checks" intuitions carry over, while
    staying distinct enough to catch precisely.
    """


def sanitize_enabled() -> bool:
    """True when ``REPRO_SANITIZE`` requests sanitizer mode."""
    return os.environ.get(_ENV_FLAG, "").strip().lower() not in _FALSY


def assert_lock_held(
    lock: threading.Lock | threading.RLock, name: str = "lock"
) -> None:
    """Fail fast if *lock* is not held at a site R013 certifies as guarded.

    No-op unless the sanitizer is enabled.  For ``RLock`` the check is
    exact (``_is_owned`` knows the owning thread); for a plain ``Lock``
    Python cannot attribute ownership, so the check degrades to
    "somebody holds it" — still enough to catch the common bug of
    calling a ``*_locked()`` helper from a new code path without the
    ``with self._lock:`` wrapper, since the helper runs unlocked there.
    """
    if not sanitize_enabled():
        return
    owned = getattr(lock, "_is_owned", None)
    held = owned() if callable(owned) else lock.locked()
    if not held:
        raise SanitizerError(
            f"{name} must be held here (lock-discipline contract); "
            "wrap the call in `with {0}:`".format(name)
        )
