"""reprolint rule and framework tests.

Each rule gets at least one positive fixture (violation reported) and one
negative fixture (clean code passes); the framework tests cover pragmas,
rule selection, output formats, exit codes, and — most importantly — that
the live tree lints clean, which is the gate CI enforces.
"""

from __future__ import annotations

import json
import subprocess
import sys
import textwrap
from pathlib import Path

from tools.reprolint import all_rules, lint_paths
from tools.reprolint.pragmas import PragmaIndex

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Fixture path that makes the module count as repro.core (rule scoping).
CORE = "src/repro/core/fixture_mod.py"
BENCH = "benchmarks/bench_fixture.py"


def lint_snippet(
    tmp_path: Path,
    code: str,
    relpath: str = CORE,
    select: list[str] | None = None,
) -> list:
    """Write *code* under a mirrored repo layout and lint it."""
    target = tmp_path / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(code))
    return lint_paths([tmp_path], select=select).findings


def rule_ids(findings: list) -> list[str]:
    return [finding.rule_id for finding in findings]


# ----------------------------------------------------------------------
# R001 unregistered-matcher
# ----------------------------------------------------------------------
class TestR001:
    def test_unregistered_matcher_flagged(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            class OrphanMatcher:
                name = "orphan"
            """,
            select=["R001"],
        )
        assert rule_ids(findings) == ["R001"]
        assert "OrphanMatcher" in findings[0].message

    def test_registered_matcher_passes(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            def register_algorithm(name, factory):
                ...

            class GoodMatcher:
                name = "good"

            register_algorithm("good", GoodMatcher)
            """,
            select=["R001"],
        )
        assert findings == []

    def test_registration_may_live_in_another_module(
        self, tmp_path: Path
    ) -> None:
        lint_snippet(
            tmp_path,
            """
            class RemoteMatcher:
                name = "remote"
            """,
            select=["R001"],
        )
        (tmp_path / "src/repro/core/wiring.py").write_text(
            "register_algorithm('remote', "
            "lambda q, c, g: RemoteMatcher(q, c, g))\n"
        )
        assert lint_paths([tmp_path], select=["R001"]).findings == []

    def test_protocol_class_exempt(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            from typing import Protocol

            class Matcher(Protocol):
                name: str
            """,
            select=["R001"],
        )
        assert findings == []

    def test_outside_matcher_packages_exempt(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            class HelperMatcher:
                name = "helper"
            """,
            relpath="src/repro/experiments/fixture_mod.py",
            select=["R001"],
        )
        assert findings == []


# ----------------------------------------------------------------------
# R002 swallowed-exception
# ----------------------------------------------------------------------
class TestR002:
    def test_bare_except_flagged(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            def search():
                try:
                    work()
                except:
                    recover()
            """,
            select=["R002"],
        )
        assert rule_ids(findings) == ["R002"]

    def test_swallowing_broad_except_flagged(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            try:
                work()
            except Exception:
                pass
            """,
            select=["R002"],
        )
        assert rule_ids(findings) == ["R002"]

    def test_narrow_or_handled_except_passes(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            try:
                work()
            except ValueError:
                pass
            except Exception as exc:
                raise RuntimeError("wrapped") from exc
            """,
            select=["R002"],
        )
        assert findings == []


# ----------------------------------------------------------------------
# R003 frozen-plan-mutation
# ----------------------------------------------------------------------
class TestR003:
    def test_object_setattr_flagged(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            def tweak(tcq, order):
                object.__setattr__(tcq, "order", order)
            """,
            select=["R003"],
        )
        assert rule_ids(findings) == ["R003"]

    def test_attribute_write_through_plan_name_flagged(
        self, tmp_path: Path
    ) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            def tweak(self):
                self.tcq.order = ()
            """,
            select=["R003"],
        )
        assert rule_ids(findings) == ["R003"]

    def test_setattr_call_on_plan_flagged(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            def tweak(tcf):
                setattr(tcf, "edges", frozenset())
            """,
            select=["R003"],
        )
        assert rule_ids(findings) == ["R003"]

    def test_post_init_escape_hatch_allowed(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class TCQ:
                order: tuple

                def __post_init__(self):
                    object.__setattr__(self, "order", tuple(self.order))
            """,
            select=["R003"],
        )
        assert findings == []

    def test_building_a_plan_is_not_mutation(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            def build(order):
                tcq = make_tcq(order)
                local = list(tcq.order)
                local[0] = 1
                return tcq
            """,
            select=["R003"],
        )
        assert findings == []


# ----------------------------------------------------------------------
# R004 unguarded-recursion
# ----------------------------------------------------------------------
class TestR004:
    def test_unguarded_recursive_dfs_flagged(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            def dfs(pos):
                if pos == 0:
                    return
                dfs(pos - 1)
            """,
            select=["R004"],
        )
        assert rule_ids(findings) == ["R004"]

    def test_deadline_guard_passes(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            import time

            def dfs(pos, deadline):
                if deadline is not None and time.monotonic() > deadline:
                    return
                dfs(pos - 1, deadline)
            """,
            select=["R004"],
        )
        assert findings == []

    def test_non_search_recursion_exempt(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            def fold(items):
                if not items:
                    return 0
                return items[0] + fold(items[1:])
            """,
            select=["R004"],
        )
        assert findings == []

    def test_non_recursive_search_exempt(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            def search(items):
                return [item for item in items if item]
            """,
            select=["R004"],
        )
        assert findings == []


# ----------------------------------------------------------------------
# R005 all-mismatch
# ----------------------------------------------------------------------
class TestR005:
    def test_public_def_missing_from_all_flagged(
        self, tmp_path: Path
    ) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            __all__ = ["listed"]

            def listed():
                ...

            def unlisted():
                ...
            """,
            select=["R005"],
        )
        assert rule_ids(findings) == ["R005"]
        assert "unlisted" in findings[0].message

    def test_phantom_all_entry_flagged(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            __all__ = ["ghost"]
            """,
            select=["R005"],
        )
        assert rule_ids(findings) == ["R005"]
        assert "ghost" in findings[0].message

    def test_missing_all_with_public_defs_flagged(
        self, tmp_path: Path
    ) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            def exposed():
                ...
            """,
            select=["R005"],
        )
        assert rule_ids(findings) == ["R005"]

    def test_consistent_all_passes(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            from os import getcwd

            __all__ = ["CONST", "exposed", "getcwd"]

            CONST = 1

            def exposed():
                ...

            def _private():
                ...
            """,
            select=["R005"],
        )
        assert findings == []

    def test_benchmarks_exempt(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            def run_bench():
                ...
            """,
            relpath=BENCH,
            select=["R005"],
        )
        assert findings == []


# ----------------------------------------------------------------------
# R006 missing-annotations
# ----------------------------------------------------------------------
class TestR006:
    def test_unannotated_public_function_flagged(
        self, tmp_path: Path
    ) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            __all__ = ["combine"]

            def combine(a, b: int, **options):
                return a
            """,
            select=["R006"],
        )
        assert rule_ids(findings) == ["R006"]
        message = findings[0].message
        assert "a" in message and "**options" in message and "return" in message

    def test_unannotated_public_method_flagged(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            __all__ = ["Thing"]

            class Thing:
                def value(self):
                    return 1
            """,
            select=["R006"],
        )
        assert rule_ids(findings) == ["R006"]

    def test_fully_annotated_passes(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            from typing import Any

            __all__ = ["Thing", "combine"]

            def combine(a: int, b: int = 0, **options: Any) -> int:
                return a + b

            class Thing:
                def value(self) -> int:
                    return 1

                def _helper(self, raw):
                    return raw
            """,
            select=["R006"],
        )
        assert findings == []

    def test_private_and_nested_functions_exempt(
        self, tmp_path: Path
    ) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            __all__ = ["outer"]

            def outer() -> None:
                def inner(x):
                    return x
                inner(1)

            def _private(x):
                return x
            """,
            select=["R006"],
        )
        assert findings == []


# ----------------------------------------------------------------------
# R007 bench-imports-tests
# ----------------------------------------------------------------------
class TestR007:
    def test_bench_importing_tests_flagged(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            from tests.core.test_match import helper
            import tests.graphs
            """,
            relpath=BENCH,
            select=["R007"],
        )
        assert rule_ids(findings) == ["R007", "R007"]

    def test_bench_importing_repro_passes(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            from repro.datasets import toy
            """,
            relpath=BENCH,
            select=["R007"],
        )
        assert findings == []

    def test_rule_scoped_to_benchmarks(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            import tests.helpers
            """,
            relpath="src/repro/core/fixture_mod.py",
            select=["R007"],
        )
        assert findings == []


# ----------------------------------------------------------------------
# R008 float-timestamp-eq
# ----------------------------------------------------------------------
class TestR008:
    def test_float_literal_equality_flagged(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            def check(t):
                return t == 3.5
            """,
            select=["R008"],
        )
        assert rule_ids(findings) == ["R008"]

    def test_float_coercion_equality_flagged(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            def check(t, other):
                return float(t) != other
            """,
            select=["R008"],
        )
        assert rule_ids(findings) == ["R008"]

    def test_integer_and_window_compares_pass(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            def check(t, lo, hi):
                return t == 3 or lo <= t <= hi or t >= 0.0
            """,
            select=["R008"],
        )
        assert findings == []


# ----------------------------------------------------------------------
# R009 service-unbudgeted-run
# ----------------------------------------------------------------------
SERVICE = "src/repro/service/fixture_mod.py"


class TestR009:
    def test_unbudgeted_run_in_service_flagged(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            def execute(matcher, stats):
                return list(matcher.run(limit=None, stats=stats))
            """,
            relpath=SERVICE,
            select=["R009"],
        )
        assert rule_ids(findings) == ["R009"]
        assert "deadline" in findings[0].message

    def test_unbudgeted_find_matches_flagged(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            from repro.core import find_matches

            def execute(query, tc, graph):
                return find_matches(query, tc, graph)
            """,
            relpath=SERVICE,
            select=["R009"],
        )
        assert rule_ids(findings) == ["R009"]

    def test_deadline_keyword_passes(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            def execute(matcher, stats, deadline):
                return list(matcher.run(stats=stats, deadline=deadline))
            """,
            relpath=SERVICE,
            select=["R009"],
        )
        assert findings == []

    def test_explicit_unbounded_deadline_passes(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            def execute(matcher, stats):
                return list(matcher.run(stats=stats, deadline=None))
            """,
            relpath=SERVICE,
            select=["R009"],
        )
        assert findings == []

    def test_time_budget_keyword_passes(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            from repro.core import find_matches

            def execute(query, tc, graph, budget):
                return find_matches(query, tc, graph, time_budget=budget)
            """,
            relpath=SERVICE,
            select=["R009"],
        )
        assert findings == []

    def test_kwargs_splat_passes(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            from repro.core import find_matches

            def execute(query, tc, graph, **kwargs):
                return find_matches(query, tc, graph, **kwargs)
            """,
            relpath=SERVICE,
            select=["R009"],
        )
        assert findings == []

    def test_rule_scoped_to_service_package(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            def execute(matcher, stats):
                return list(matcher.run(limit=None, stats=stats))
            """,
            relpath=CORE,
            select=["R009"],
        )
        assert findings == []

    def test_pragma_disables(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            def execute(matcher, stats):
                return list(
                    matcher.run(stats=stats)  # reprolint: disable=R009
                )
            """,
            relpath=SERVICE,
            select=["R009"],
        )
        assert findings == []


# ----------------------------------------------------------------------
# R010 span-not-context-managed
# ----------------------------------------------------------------------
class TestR010:
    def test_bare_span_call_flagged(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            def run(tracer):
                tracer.span("enumerate")
            """,
            select=["R010"],
        )
        assert rule_ids(findings) == ["R010"]
        assert "with" in findings[0].message

    def test_assigned_span_flagged(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            def run(tracer):
                sp = tracer.span("prepare", algorithm="x")
                sp.annotate(matches=1)
            """,
            select=["R010"],
        )
        assert rule_ids(findings) == ["R010"]

    def test_with_statement_passes(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            def run(tracer):
                with tracer.span("enumerate") as sp:
                    sp.annotate(matches=1)
            """,
            select=["R010"],
        )
        assert findings == []

    def test_multi_item_with_passes(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            def run(tracer, other):
                with tracer.span("a"), other.span("b"):
                    pass
            """,
            select=["R010"],
        )
        assert findings == []

    def test_exit_stack_enter_context_passes(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            import contextlib

            def run(tracer):
                with contextlib.ExitStack() as stack:
                    stack.enter_context(tracer.span("enumerate"))
            """,
            select=["R010"],
        )
        assert findings == []

    def test_obs_package_exempt(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            def helper(tracer):
                return tracer.span("internal")
            """,
            relpath="src/repro/obs/fixture_mod.py",
            select=["R010"],
        )
        assert findings == []

    def test_pragma_disables(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            def run(tracer):
                sp = tracer.span("x")  # reprolint: disable=R010
                return sp
            """,
            select=["R010"],
        )
        assert findings == []


# ----------------------------------------------------------------------
# R011 graph-private-access
# ----------------------------------------------------------------------
class TestR011:
    def test_dict_adjacency_access_flagged(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            def neighbours(graph, u):
                return list(graph._out[u])
            """,
            select=["R011"],
        )
        assert rule_ids(findings) == ["R011"]
        assert "_out" in findings[0].message

    def test_csr_plane_access_flagged(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            def raw_times(snapshot):
                return snapshot._out_times
            """,
            select=["R011"],
        )
        assert rule_ids(findings) == ["R011"]

    def test_accessor_api_passes(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            def neighbours(graph, u):
                return [(v, list(ts)) for v, ts in graph.out_items(u)]
            """,
            select=["R011"],
        )
        assert findings == []

    def test_graphs_package_exempt(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            def compile_rows(graph):
                return [graph._out[u] for u in graph.vertices()]
            """,
            relpath="src/repro/graphs/fixture_mod.py",
            select=["R011"],
        )
        assert findings == []

    def test_pragma_disables(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            def poke(graph, u):
                return graph._in[u]  # reprolint: disable=R011
            """,
            select=["R011"],
        )
        assert findings == []


# ----------------------------------------------------------------------
# R012 timestamp-expand-then-filter
# ----------------------------------------------------------------------
class TestR012:
    def test_gap_filter_over_full_run_flagged(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            def expand(graph, c, u, v, base):
                out = []
                for t in graph.timestamps(u, v):
                    if 0 <= t - base <= c.gap:
                        out.append(t)
                return out
            """,
            select=["R012"],
        )
        assert rule_ids(findings) == ["R012"]
        assert "timestamps" in findings[0].message

    def test_is_satisfied_filter_flagged(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            def expand(graph, constraint, u, v, other):
                kept = []
                for t in graph.timestamps_with_label(u, v, 3):
                    if constraint.is_satisfied(other, t):
                        kept.append(t)
                return kept
            """,
            select=["R012"],
        )
        assert rule_ids(findings) == ["R012"]

    def test_windowed_accessor_passes(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            def expand(graph, c, u, v, lo, hi, base):
                out = []
                for t in graph.timestamps_in_window(u, v, lo, hi):
                    if 0 <= t - base <= c.gap:
                        out.append(t)
                return out
            """,
            select=["R012"],
        )
        assert findings == []

    def test_unfiltered_full_scan_passes(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            def total(graph, u, v):
                count = 0
                for t in graph.timestamps(u, v):
                    count += t
                return count
            """,
            select=["R012"],
        )
        assert findings == []

    def test_pragma_disables(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            def oracle(graph, c, u, v, base):
                kept = []
                for t in graph.timestamps(u, v):  # reprolint: disable=R012
                    if 0 <= t - base <= c.gap:
                        kept.append(t)
                return kept
            """,
            select=["R012"],
        )
        assert findings == []


# ----------------------------------------------------------------------
# framework: pragmas, selection, output, exit codes, live tree
# ----------------------------------------------------------------------
class TestPragmas:
    def test_line_pragma_suppresses_named_rule(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            def check(t):
                return t == 3.5  # reprolint: disable=R008
            """,
            select=["R008"],
        )
        assert findings == []

    def test_line_pragma_is_rule_specific(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            def check(t):
                return t == 3.5  # reprolint: disable=R002
            """,
            select=["R008"],
        )
        assert rule_ids(findings) == ["R008"]

    def test_file_pragma_suppresses_everywhere(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            # reprolint: disable-file=R008

            def check(t):
                return t == 3.5

            def check2(t):
                return t == 7.25
            """,
            select=["R008"],
        )
        assert findings == []

    def test_pragma_index_parsing(self) -> None:
        index = PragmaIndex.from_source(
            "x = 1  # reprolint: disable=R001, R002\n"
            "# reprolint: disable-file=R009\n"
            "y = 2  # reprolint: disable\n"
        )
        assert index.is_disabled("R001", 1)
        assert index.is_disabled("R002", 1)
        assert not index.is_disabled("R003", 1)
        assert index.is_disabled("R009", 99)  # file-wide
        assert index.is_disabled("R777", 3)  # blanket disable on line 3


class TestFramework:
    def test_every_rule_has_id_name_description(self) -> None:
        rules = all_rules()
        assert len(rules) >= 8
        for rule_id, cls in rules.items():
            assert rule_id == cls.id
            assert cls.name
            assert cls.description

    def test_select_and_ignore(self, tmp_path: Path) -> None:
        code = """
        def check(t):
            return t == 3.5
        """
        assert lint_snippet(tmp_path, code, select=["R002"]) == []
        result = lint_paths([tmp_path], ignore=["R008", "R005", "R006"])
        assert result.findings == []

    def test_unknown_rule_id_raises(self, tmp_path: Path) -> None:
        try:
            lint_paths([tmp_path], select=["R999"])
        except ValueError as exc:
            assert "R999" in str(exc)
        else:
            raise AssertionError("expected ValueError for unknown rule id")

    def test_unparseable_file_is_an_error(self, tmp_path: Path) -> None:
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n")
        result = lint_paths([tmp_path])
        assert result.errors and "broken.py" in result.errors[0]


class TestCli:
    def run_cli(self, *args: str) -> subprocess.CompletedProcess:
        return subprocess.run(
            [sys.executable, "-m", "tools.reprolint", *args],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )

    def test_violation_exits_nonzero_with_json(self, tmp_path: Path) -> None:
        target = tmp_path / "src/repro/core/bad.py"
        target.parent.mkdir(parents=True)
        target.write_text("def check(t):\n    return t == 3.5\n")
        proc = self.run_cli(str(tmp_path), "--select", "R008", "--format",
                            "json")
        assert proc.returncode == 1
        payload = json.loads(proc.stdout)
        assert payload["files_scanned"] == 1
        assert [f["rule_id"] for f in payload["findings"]] == ["R008"]

    def test_clean_tree_exits_zero(self, tmp_path: Path) -> None:
        target = tmp_path / "src/repro/core/good.py"
        target.parent.mkdir(parents=True)
        target.write_text('__all__: list = []\n')
        proc = self.run_cli(str(tmp_path))
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_nonexistent_path_is_usage_error(self, tmp_path: Path) -> None:
        # A typo'd path must not report a vacuous "0 files scanned, clean".
        proc = self.run_cli(str(tmp_path / "no/such/dir"))
        assert proc.returncode == 2
        assert "do not exist" in proc.stderr

    def test_list_rules(self) -> None:
        proc = self.run_cli("--list-rules")
        assert proc.returncode == 0
        for rule_id in all_rules():
            assert rule_id in proc.stdout


# ----------------------------------------------------------------------
# R013 lock-discipline
# ----------------------------------------------------------------------
class TestR013:
    def test_unguarded_read_of_guarded_attr_flagged(
        self, tmp_path: Path
    ) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            import threading

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._entries = {}

                def put(self, k, v):
                    with self._lock:
                        self._entries[k] = v

                def get(self, k):
                    return self._entries.get(k)
            """,
            select=["R013"],
        )
        assert rule_ids(findings) == ["R013"]
        assert "_entries" in findings[0].message
        assert "_lock" in findings[0].message

    def test_unguarded_write_flagged(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            import threading

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._entries = {}

                def put(self, k, v):
                    with self._lock:
                        self._entries[k] = v

                def clear(self):
                    self._entries = {}
            """,
            select=["R013"],
        )
        assert rule_ids(findings) == ["R013"]
        assert "write to" in findings[0].message

    def test_fully_guarded_class_passes(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            import threading

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._entries = {}

                def put(self, k, v):
                    with self._lock:
                        self._entries[k] = v

                def get(self, k):
                    with self._lock:
                        return self._entries.get(k)
            """,
            select=["R013"],
        )
        assert findings == []

    def test_helper_called_only_under_lock_inherits_it(
        self, tmp_path: Path
    ) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            import threading

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._entries = {}
                    self.capacity = 4

                def put(self, k, v):
                    with self._lock:
                        self._entries[k] = v
                        self._trim()

                def get(self, k):
                    with self._lock:
                        return self._entries.get(k)

                def _trim(self):
                    while len(self._entries) > self.capacity:
                        self._entries.popitem()
            """,
            select=["R013"],
        )
        assert findings == []

    def test_helper_also_called_without_lock_is_flagged(
        self, tmp_path: Path
    ) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            import threading

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._entries = {}

                def put(self, k, v):
                    with self._lock:
                        self._entries[k] = v
                        self._trim()

                def reset(self):
                    self._trim()

                def _trim(self):
                    self._entries.popitem()
            """,
            select=["R013"],
        )
        # _trim's bare access no longer inherits the lock: one call site
        # (reset) runs without it.
        assert rule_ids(findings) == ["R013"]

    def test_guarded_by_pragma_waives_site(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            import threading

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._entries = {}

                def put(self, k, v):
                    with self._lock:
                        self._entries[k] = v

                def peek(self, k):
                    return self._entries.get(k)  # reprolint: guarded-by(_lock)
            """,
            select=["R013"],
        )
        assert findings == []

    def test_construction_only_attr_is_free_to_read_bare(
        self, tmp_path: Path
    ) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            import threading

            class Registry:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._started = 1.0
                    self._counters = {}

                def inc(self, name):
                    with self._lock:
                        self._counters[name] = 1
                        if self._started:
                            pass

                def uptime(self):
                    return self._started
            """,
            select=["R013"],
        )
        # _started is never mutated after __init__: immutable-after-publish.
        assert findings == []


# ----------------------------------------------------------------------
# R014 frozen-state-write
# ----------------------------------------------------------------------
class TestR014:
    def test_frozen_dataclass_self_write_flagged(
        self, tmp_path: Path
    ) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class Plan:
                steps: tuple = ()

                def tweak(self):
                    self.steps = (1,)
            """,
            select=["R014"],
        )
        assert rule_ids(findings) == ["R014"]
        assert "Plan" in findings[0].message

    def test_write_through_frozen_local_flagged(
        self, tmp_path: Path
    ) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class Plan:
                steps: tuple = ()

            def build():
                plan = Plan()
                plan.steps = (1,)
                return plan
            """,
            select=["R014"],
        )
        assert rule_ids(findings) == ["R014"]

    def test_inplace_mutation_of_frozen_field_flagged(
        self, tmp_path: Path
    ) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class Plan:
                steps: list = None

            def grow():
                plan = Plan(steps=[])
                plan.steps.append(1)
            """,
            select=["R014"],
        )
        assert rule_ids(findings) == ["R014"]
        assert "in-place" in findings[0].message

    def test_write_through_frozen_typed_attribute_flagged(
        self, tmp_path: Path
    ) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class Plan:
                steps: tuple = ()

            class Service:
                def __init__(self):
                    self.plan_obj = Plan()

                def rewrite(self):
                    self.plan_obj.steps = (2,)
            """,
            select=["R014"],
        )
        assert rule_ids(findings) == ["R014"]

    def test_graph_snapshot_is_frozen_by_contract(
        self, tmp_path: Path
    ) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            class GraphSnapshot:
                def __init__(self):
                    self._labels = ()

                def relabel(self):
                    self._labels = ("A",)
            """,
            relpath="src/repro/graphs/fixture_snap.py",
            select=["R014"],
        )
        assert rule_ids(findings) == ["R014"]

    def test_construction_and_factories_are_exempt(
        self, tmp_path: Path
    ) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            class GraphSnapshot:
                def __init__(self):
                    self._labels = ()
                    self._init_views()

                def _init_views(self):
                    self._views = ()

                def __setstate__(self, state):
                    self._labels = state["labels"]
            """,
            relpath="src/repro/graphs/fixture_snap.py",
            select=["R014"],
        )
        assert findings == []

    def test_frozen_subclass_inherits_frozenness(
        self, tmp_path: Path
    ) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class Plan:
                steps: tuple = ()

            class FancyPlan(Plan):
                def tweak(self):
                    self.steps = (3,)
            """,
            select=["R014"],
        )
        assert rule_ids(findings) == ["R014"]


# ----------------------------------------------------------------------
# R015 lock-ordering
# ----------------------------------------------------------------------
class TestR015:
    def test_abba_nesting_in_one_class_flagged(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            import threading

            class Pool:
                def __init__(self):
                    self._queue_lock = threading.Lock()
                    self._state_lock = threading.Lock()

                def submit(self):
                    with self._queue_lock:
                        with self._state_lock:
                            pass

                def drain(self):
                    with self._state_lock:
                        with self._queue_lock:
                            pass
            """,
            select=["R015"],
        )
        assert rule_ids(findings) == ["R015", "R015"]
        assert "cycle" in findings[0].message

    def test_consistent_order_passes(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            import threading

            class Pool:
                def __init__(self):
                    self._queue_lock = threading.Lock()
                    self._state_lock = threading.Lock()

                def submit(self):
                    with self._queue_lock:
                        with self._state_lock:
                            pass

                def drain(self):
                    with self._queue_lock:
                        with self._state_lock:
                            pass
            """,
            select=["R015"],
        )
        assert findings == []

    def test_cross_class_call_cycle_flagged(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            import threading

            class Front:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.store = Store()

                def handle(self):
                    with self._lock:
                        self.store.flush()

            class Store:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.front = Front()

                def flush(self):
                    with self._lock:
                        pass

                def notify(self):
                    with self._lock:
                        self.front.handle()
            """,
            select=["R015"],
        )
        assert len(findings) >= 2
        assert all(f.rule_id == "R015" for f in findings)

    def test_one_way_cross_class_call_passes(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            import threading

            class Front:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.store = Store()

                def handle(self):
                    with self._lock:
                        self.store.flush()

            class Store:
                def __init__(self):
                    self._lock = threading.Lock()

                def flush(self):
                    with self._lock:
                        pass
            """,
            select=["R015"],
        )
        assert findings == []


# ----------------------------------------------------------------------
# R016 shared-mutable-state
# ----------------------------------------------------------------------
class TestR016:
    def test_module_global_mutated_from_function_flagged(
        self, tmp_path: Path
    ) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            _CACHE: dict = {}

            def remember(key, value):
                _CACHE[key] = value
            """,
            select=["R016"],
        )
        assert rule_ids(findings) == ["R016"]
        assert "_CACHE" in findings[0].message

    def test_mutation_under_module_lock_passes(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            import threading

            _LOCK = threading.Lock()
            _CACHE: dict = {}

            def remember(key, value):
                with _LOCK:
                    _CACHE[key] = value

            def forget(key):
                with _LOCK:
                    _CACHE.pop(key, None)
            """,
            select=["R016"],
        )
        assert findings == []

    def test_import_time_only_registry_passes(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            _REGISTRY: dict = {}

            def lookup(name):
                return _REGISTRY[name]
            """,
            select=["R016"],
        )
        assert findings == []

    def test_mutable_default_argument_flagged(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            def collect(item, acc=[]):
                acc.append(item)
                return acc
            """,
            select=["R016"],
        )
        assert rule_ids(findings) == ["R016"]
        assert "default" in findings[0].message

    def test_mutable_class_attr_written_through_self_flagged(
        self, tmp_path: Path
    ) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            class Queue:
                items = []

                def add(self, x):
                    self.items.append(x)
            """,
            select=["R016"],
        )
        assert rule_ids(findings) == ["R016"]
        assert "every instance shares" in findings[0].message

    def test_pragma_on_binding_line_suppresses(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            _REGISTRY: dict = {}  # reprolint: disable=R016

            def register(name, factory):
                _REGISTRY[name] = factory
            """,
            select=["R016"],
        )
        assert findings == []


# ----------------------------------------------------------------------
# R017 snapshot-recompile-in-loop
# ----------------------------------------------------------------------
class TestR017:
    def test_freeze_in_for_body_flagged(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            def replay(graph, edges):
                for u, v, t in edges:
                    graph.add_edge(u, v, t)
                    graph.freeze()
            """,
            select=["R017"],
        )
        assert rule_ids(findings) == ["R017"]
        assert "freeze()" in findings[0].message

    def test_compile_snapshot_in_while_flagged(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            def poll(graph, queue):
                while queue:
                    queue.pop()
                    snap = compile_snapshot(graph)
            """,
            select=["R017"],
        )
        assert rule_ids(findings) == ["R017"]
        assert "compile_snapshot()" in findings[0].message

    def test_nested_function_in_loop_body_flagged(
        self, tmp_path: Path
    ) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            def build(graphs):
                for graph in graphs:
                    def thunk():
                        return graph.freeze()
                    yield thunk
            """,
            select=["R017"],
        )
        assert rule_ids(findings) == ["R017"]

    def test_hoisted_and_orelse_calls_pass(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            def replay(graph, edges):
                for u, v, t in edges:
                    graph.add_edge(u, v, t)
                else:
                    graph.freeze()
                snap = compile_snapshot(graph)
                return snap
            """,
            select=["R017"],
        )
        assert findings == []

    def test_other_calls_in_loops_pass(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            def replay(graph, edges):
                for u, v, t in edges:
                    graph.add_edge(u, v, t)
                    graph.describe()
            """,
            select=["R017"],
        )
        assert findings == []

    def test_pragma_suppresses(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            def baseline(graph, edges):
                for u, v, t in edges:
                    graph.add_edge(u, v, t)
                    graph.freeze()  # reprolint: disable=R017 -- baseline
            """,
            select=["R017"],
        )
        assert findings == []


# ----------------------------------------------------------------------
# R018 legacy-match-kwargs
# ----------------------------------------------------------------------
class TestR018:
    def test_legacy_find_matches_keywords_flagged(
        self, tmp_path: Path
    ) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            def search(query, tc, graph):
                return find_matches(query, tc, graph, limit=5, trace=True)
            """,
            select=["R018"],
        )
        assert rule_ids(findings) == ["R018"]
        assert "limit, trace" in findings[0].message
        assert "MatchOptions" in findings[0].message

    def test_legacy_count_matches_keyword_flagged(
        self, tmp_path: Path
    ) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            def count(query, tc, graph):
                return count_matches(query, tc, graph, time_budget=1.0)
            """,
            select=["R018"],
        )
        assert rule_ids(findings) == ["R018"]

    def test_legacy_run_keywords_flagged(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            def drive(matcher, stats):
                return matcher.run(limit=3, stats=stats)
            """,
            select=["R018"],
        )
        assert rule_ids(findings) == ["R018"]
        assert "RunContext" in findings[0].message

    def test_options_and_run_context_pass(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            def search(query, tc, graph, matcher):
                res = find_matches(
                    query, tc, graph, options=MatchOptions(limit=5)
                )
                count = count_matches(
                    query, tc, graph, options=MatchOptions(tighten=True)
                )
                run = matcher.run(RunContext(limit=3))
                return res, count, run
            """,
            select=["R018"],
        )
        assert findings == []

    def test_unrelated_run_calls_pass(self, tmp_path: Path) -> None:
        # .run() on arbitrary objects with *other* keywords is not ours.
        findings = lint_snippet(
            tmp_path,
            """
            def launch(proc):
                return proc.run(check=True, capture_output=True)
            """,
            select=["R018"],
        )
        assert findings == []

    def test_pragma_suppresses(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            def shim_probe(query, tc, graph):
                return find_matches(  # reprolint: disable=R018
                    query, tc, graph, limit=2
                )
            """,
            select=["R018"],
        )
        assert findings == []


# ----------------------------------------------------------------------
# R019 sink-protocol-bypass
# ----------------------------------------------------------------------
class TestR019:
    def test_matches_append_in_matcher_flagged(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            def enumerate_all(matcher, ctx):
                matches = []
                for match in matcher.run(ctx):
                    matches.append(match)
                return matches
            """,
            select=["R019"],
        )
        assert rule_ids(findings) == ["R019"]
        assert "sink.accept" in findings[0].message

    def test_self_matches_attribute_flagged(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            class Matcher:
                def _emit(self, match):
                    self._matches.append(match)
            """,
            select=["R019"],
        )
        assert rule_ids(findings) == ["R019"]

    def test_sink_accept_and_other_lists_pass(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            def emit(sink, match, order):
                sink.accept(match)
                order.append(match)
            """,
            select=["R019"],
        )
        assert findings == []

    def test_sinks_module_is_exempt(self, tmp_path: Path) -> None:
        # The sink implementation is the one place allowed to accumulate.
        findings = lint_snippet(
            tmp_path,
            """
            class CollectSink:
                def accept(self, match):
                    self.matches.append(match)
            """,
            relpath="src/repro/core/sinks.py",
            select=["R019"],
        )
        assert findings == []

    def test_out_of_scope_module_passes(self, tmp_path: Path) -> None:
        # Result plumbing outside the matcher packages is not a matcher.
        findings = lint_snippet(
            tmp_path,
            """
            def collect(result):
                matches = []
                matches.append(result)
                return matches
            """,
            relpath="src/repro/service/fixture_mod.py",
            select=["R019"],
        )
        assert findings == []

    def test_pragma_suppresses(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            def oracle(matcher, ctx):
                matches = []
                for match in matcher.run(ctx):
                    matches.append(match)  # reprolint: disable=R019
                return matches
            """,
            select=["R019"],
        )
        assert findings == []


# ----------------------------------------------------------------------
# R020 codegen-confinement
# ----------------------------------------------------------------------
class TestR020:
    def test_exec_outside_codegen_flagged(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            def run_snippet(snippet):
                namespace = {}
                exec(snippet, namespace)
                return namespace
            """,
            select=["R020"],
        )
        assert rule_ids(findings) == ["R020"]
        assert "repro.core.codegen" in findings[0].message

    def test_compile_and_eval_flagged(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            def build(source):
                code = compile(source, "<x>", "exec")
                return eval("1 + 1"), code
            """,
            select=["R020"],
        )
        assert rule_ids(findings) == ["R020", "R020"]

    def test_flagged_everywhere_not_just_core(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            def hot_patch(body):
                exec(body)
            """,
            relpath="src/repro/service/fixture_mod.py",
            select=["R020"],
        )
        assert rule_ids(findings) == ["R020"]

    def test_codegen_module_is_exempt(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            def finish(source, ns):
                code = compile(source, "<repro-codegen>", "exec")
                exec(code, ns)
                return ns["_enumerate"]
            """,
            relpath="src/repro/core/codegen.py",
            select=["R020"],
        )
        assert findings == []

    def test_method_compile_calls_pass(self, tmp_path: Path) -> None:
        # re.compile / snapshot.compile are attribute lookups, not the
        # dynamic-execution builtins.
        findings = lint_snippet(
            tmp_path,
            """
            import re

            def prepare(graph):
                pattern = re.compile("a+")
                graph.compile()
                return pattern
            """,
            select=["R020"],
        )
        assert findings == []

    def test_pragma_suppresses(self, tmp_path: Path) -> None:
        findings = lint_snippet(
            tmp_path,
            """
            def sandbox(snippet):
                exec(snippet)  # reprolint: disable=R020 -- interactive sandbox
            """,
            select=["R020"],
        )
        assert findings == []


# ----------------------------------------------------------------------
# guarded-by pragma parsing + inventory
# ----------------------------------------------------------------------
class TestGuardedByPragma:
    def test_guarded_by_parses_lock_name(self) -> None:
        index = PragmaIndex.from_source(
            "x = self._n  # reprolint: guarded-by(_lock)\n"
        )
        assert index.guarded_by(1) == frozenset({"_lock"})
        assert index.guarded_by(2) == frozenset()

    def test_guarded_by_wildcard(self) -> None:
        index = PragmaIndex.from_source(
            "x = self._n  # reprolint: guarded-by(*)\n"
        )
        assert "*" in index.guarded_by(1)

    def test_guarded_by_does_not_disable_rules(self) -> None:
        index = PragmaIndex.from_source(
            "x = self._n  # reprolint: guarded-by(_lock)\n"
        )
        assert not index.is_disabled("R013", 1)

    def test_entries_inventory_records_every_pragma(self) -> None:
        index = PragmaIndex.from_source(
            "a = 1  # reprolint: disable=R001\n"
            "# reprolint: disable-file=R002\n"
            "b = 2  # reprolint: guarded-by(_lock)\n"
        )
        kinds = [entry.kind for entry in index.entries]
        assert kinds == ["disable", "disable-file", "guarded-by"]
        assert index.entries[2].values == ("_lock",)


# ----------------------------------------------------------------------
# findings-baseline ratchet
# ----------------------------------------------------------------------
class TestBaseline:
    CODE = "def check(t):\n    return t == 3.5\n"

    def write_bad(self, tmp_path: Path) -> Path:
        target = tmp_path / "src/repro/core/bad.py"
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(self.CODE)
        return target

    def run_cli(self, *args: str) -> subprocess.CompletedProcess:
        return subprocess.run(
            [sys.executable, "-m", "tools.reprolint", *args],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )

    def test_update_then_rerun_is_clean(self, tmp_path: Path) -> None:
        self.write_bad(tmp_path)
        baseline = tmp_path / "baseline.json"
        proc = self.run_cli(
            str(tmp_path), "--select", "R008",
            "--baseline", str(baseline), "--update-baseline",
        )
        assert proc.returncode == 0, proc.stderr
        assert baseline.exists()
        proc = self.run_cli(
            str(tmp_path), "--select", "R008", "--baseline", str(baseline)
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "1 baselined" in proc.stderr

    def test_new_finding_fails_despite_baseline(self, tmp_path: Path) -> None:
        target = self.write_bad(tmp_path)
        baseline = tmp_path / "baseline.json"
        self.run_cli(
            str(tmp_path), "--select", "R008",
            "--baseline", str(baseline), "--update-baseline",
        )
        # A *second* instance of the same violation is a new finding.
        target.write_text(self.CODE + "\ndef check2(t):\n    return t == 3.5\n")
        proc = self.run_cli(
            str(tmp_path), "--select", "R008", "--baseline", str(baseline)
        )
        assert proc.returncode == 1
        assert "R008" in proc.stdout

    def test_missing_baseline_file_means_empty(self, tmp_path: Path) -> None:
        self.write_bad(tmp_path)
        proc = self.run_cli(
            str(tmp_path), "--select", "R008",
            "--baseline", str(tmp_path / "nope.json"),
        )
        assert proc.returncode == 1

    def test_json_output_reports_pragma_inventory(
        self, tmp_path: Path
    ) -> None:
        target = tmp_path / "src/repro/core/mod.py"
        target.parent.mkdir(parents=True)
        target.write_text(
            "x = 1  # reprolint: disable=R008\n"
            "__all__: list = []\n"
        )
        proc = self.run_cli(str(tmp_path), "--format", "json")
        payload = json.loads(proc.stdout)
        (path,) = payload["pragmas"]
        assert payload["pragmas"][path][0]["kind"] == "disable"
        assert payload["pragmas"][path][0]["values"] == ["R008"]


class TestLiveTree:
    """The acceptance gate: the real tree (including tools/) lints clean."""

    def test_src_benchmarks_and_tools_are_clean(self) -> None:
        result = lint_paths(
            [
                REPO_ROOT / "src" / "repro",
                REPO_ROOT / "benchmarks",
                REPO_ROOT / "tools",
            ]
        )
        formatted = "\n".join(f.format() for f in result.findings)
        assert result.findings == [], f"live tree has findings:\n{formatted}"
        assert result.errors == []
        assert result.files_scanned > 50
