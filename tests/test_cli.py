"""End-to-end tests for the command-line interface."""

import json

import pytest

from repro.cli import main


@pytest.fixture
def workspace(tmp_path, capsys):
    """Generate a small graph + sample pattern via the CLI itself."""
    graph_path = tmp_path / "graph.txt"
    pattern_path = tmp_path / "pattern.json"
    assert main([
        "generate", "--dataset", "CM", "--scale", "0.05",
        "--seed", "1", "--out", str(graph_path),
    ]) == 0
    assert main(["pattern-example", "--out", str(pattern_path)]) == 0
    capsys.readouterr()  # drop generation chatter
    return graph_path, pattern_path


class TestAlgorithmsCommand:
    def test_lists_all(self, capsys):
        assert main(["algorithms"]) == 0
        out = capsys.readouterr().out.split()
        assert "tcsm-eve" in out
        assert "ri-ds" in out
        assert len(out) >= 12


class TestGenerate:
    def test_writes_snap_and_labels(self, tmp_path, capsys):
        out = tmp_path / "g.txt"
        assert main([
            "generate", "--dataset", "CM", "--scale", "0.03",
            "--out", str(out),
        ]) == 0
        assert out.exists()
        assert (tmp_path / "g.txt.labels").exists()
        err = capsys.readouterr().err
        assert "wrote" in err
        assert "|V|=" in err  # statistics summary printed

    def test_unknown_dataset_is_error(self, tmp_path, capsys):
        rc = main([
            "generate", "--dataset", "XX", "--out", str(tmp_path / "g.txt"),
        ])
        assert rc == 2
        assert "error:" in capsys.readouterr().err


class TestMatch:
    def test_text_output(self, workspace, capsys):
        graph_path, pattern_path = workspace
        rc = main([
            "match", "--graph", str(graph_path),
            "--pattern", str(pattern_path),
        ])
        captured = capsys.readouterr()
        assert rc == 0
        assert "matches in" in captured.err
        assert "vertices=" in captured.out

    def test_count_only(self, workspace, capsys):
        graph_path, pattern_path = workspace
        rc = main([
            "match", "--graph", str(graph_path),
            "--pattern", str(pattern_path), "--count-only",
        ])
        captured = capsys.readouterr()
        assert rc == 0
        assert int(captured.out.strip()) > 0

    def test_json_output(self, workspace, capsys):
        graph_path, pattern_path = workspace
        rc = main([
            "match", "--graph", str(graph_path),
            "--pattern", str(pattern_path), "--json", "--limit", "2",
        ])
        captured = capsys.readouterr()
        assert rc == 0
        lines = [l for l in captured.out.splitlines() if l.strip()]
        assert 1 <= len(lines) <= 2
        record = json.loads(lines[0])
        assert set(record) == {"vertices", "edges"}

    def test_algorithm_selection(self, workspace, capsys):
        graph_path, pattern_path = workspace
        rc = main([
            "match", "--graph", str(graph_path),
            "--pattern", str(pattern_path),
            "--algorithm", "tcsm-v2v", "--count-only",
        ])
        assert rc == 0
        eve_count = capsys.readouterr().out.strip()
        main([
            "match", "--graph", str(graph_path),
            "--pattern", str(pattern_path),
            "--algorithm", "tcsm-eve", "--count-only",
        ])
        assert capsys.readouterr().out.strip() == eve_count

    def test_missing_pattern_file(self, workspace, capsys):
        graph_path, _ = workspace
        rc = main([
            "match", "--graph", str(graph_path),
            "--pattern", "/nonexistent/pattern.json",
        ])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_output_json_file(self, workspace, tmp_path, capsys):
        graph_path, pattern_path = workspace
        out = tmp_path / "matches.json"
        rc = main([
            "match", "--graph", str(graph_path),
            "--pattern", str(pattern_path), "--output", str(out),
        ])
        captured = capsys.readouterr()
        assert rc == 0
        assert "saved:" in captured.err
        data = json.loads(out.read_text())
        assert isinstance(data, list) and data

    def test_output_csv_file(self, workspace, tmp_path):
        graph_path, pattern_path = workspace
        out = tmp_path / "matches.csv"
        assert main([
            "match", "--graph", str(graph_path),
            "--pattern", str(pattern_path), "--output", str(out),
        ]) == 0
        assert out.read_text().startswith("vertices,timestamps")

    def test_lint_blocks_impossible_pattern(self, workspace, tmp_path, capsys):
        import json

        graph_path, _ = workspace
        bad = tmp_path / "bad_pattern.json"
        bad.write_text(json.dumps({
            "vertices": [{"label": "NOPE"}, {"label": "B"}],
            "edges": [{"source": 0, "target": 1}],
        }))
        rc = main([
            "match", "--graph", str(graph_path), "--pattern", str(bad),
        ])
        captured = capsys.readouterr()
        assert rc == 2
        assert "label-missing" in captured.err

    def test_unknown_algorithm(self, workspace, capsys):
        graph_path, pattern_path = workspace
        rc = main([
            "match", "--graph", str(graph_path),
            "--pattern", str(pattern_path), "--algorithm", "bogus",
        ])
        assert rc == 2
        assert "available" in capsys.readouterr().err


class TestPatternExample:
    def test_valid_pattern_written(self, tmp_path, capsys):
        path = tmp_path / "p.json"
        assert main(["pattern-example", "--out", str(path)]) == 0
        from repro.graphs import load_pattern

        query, constraints = load_pattern(path)
        assert query.num_vertices == 6
        assert len(constraints) > 0


class TestSubmit:
    def test_query_request_line(self, workspace, capsys):
        _, pattern_path = workspace
        rc = main([
            "submit", "--graph", "g", "--pattern", str(pattern_path),
            "--limit", "3", "--workers", "2", "--count-only",
            "--id", "req-1",
        ])
        assert rc == 0
        request = json.loads(capsys.readouterr().out)
        assert request["op"] == "query"
        assert request["graph"] == "g"
        assert request["limit"] == 3
        assert request["workers"] == 2
        assert request["count_only"] is True
        assert request["id"] == "req-1"
        assert "edges" in request["pattern"]

    def test_control_op_lines(self, capsys):
        assert main(["submit", "--op", "ping"]) == 0
        assert json.loads(capsys.readouterr().out) == {"op": "ping"}

    def test_query_without_pattern_is_error(self, capsys):
        rc = main(["submit", "--graph", "g"])
        assert rc == 2
        assert "--pattern" in capsys.readouterr().err


class TestServe:
    def _pipe(self, monkeypatch, capsys, argv, requests):
        import io
        import sys as _sys

        stdin = io.StringIO(
            "".join(json.dumps(r) + "\n" for r in requests)
        )
        monkeypatch.setattr(_sys, "stdin", stdin)
        rc = main(argv)
        captured = capsys.readouterr()
        responses = [json.loads(line) for line in captured.out.splitlines()]
        return rc, responses, captured.err

    def test_serves_preloaded_graph(self, workspace, monkeypatch, capsys):
        graph_path, pattern_path = workspace
        from repro.graphs import load_pattern, pattern_to_dict

        query, constraints = load_pattern(pattern_path)
        rc, responses, err = self._pipe(
            monkeypatch, capsys,
            ["serve", "--graph", f"g={graph_path}", "--workers", "2"],
            [
                {"op": "query", "graph": "g",
                 "pattern": pattern_to_dict(query, constraints),
                 "count_only": True, "id": 1},
                {"op": "shutdown"},
            ],
        )
        assert rc == 0
        assert responses[0]["status"] == "ok"
        assert responses[0]["id"] == 1
        assert responses[0]["match_count"] >= 0
        assert responses[1] == {"op": "shutdown", "status": "ok"}
        assert "# loaded" in err
        assert "# served 2 requests" in err

    def test_bad_graph_spec_is_error(self, monkeypatch, capsys):
        rc, _, err = self._pipe(
            monkeypatch, capsys, ["serve", "--graph", "nopath"], []
        )
        assert rc == 2
        assert "NAME=PATH" in err


class TestTrace:
    def test_toy_default_prints_tree_and_filter_table(self, capsys):
        assert main(["trace"]) == 0
        out = capsys.readouterr().out
        assert "# traced tcsm-eve on toy example" in out
        for span in ("stn-closure", "prepare", "candidate-filter:ldf",
                     "enumerate"):
            assert span in out
        assert "filter" in out and "considered" in out
        assert "ldf" in out and "injectivity" in out

    def test_out_writes_loadable_chrome_trace(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        assert main(["trace", "--out", str(trace_path)]) == 0
        document = json.loads(trace_path.read_text())
        categories = {event["cat"] for event in document["traceEvents"]}
        assert {"prepare", "stn-closure", "candidate-filter",
                "enumerate"} <= categories
        assert "wrote Chrome trace" in capsys.readouterr().err

    def test_no_tighten_drops_the_closure_span(self, capsys):
        assert main(["trace", "--no-tighten"]) == 0
        assert "stn-closure" not in capsys.readouterr().out

    def test_explicit_graph_and_pattern(self, workspace, capsys):
        graph_path, pattern_path = workspace
        rc = main([
            "trace", "--graph", str(graph_path),
            "--pattern", str(pattern_path), "--algorithm", "tcsm-e2e",
            "--limit", "3",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "# traced tcsm-e2e" in out
        assert "enumerate" in out

    def test_graph_without_pattern_is_error(self, capsys):
        assert main(["trace", "--graph", "g.txt"]) == 2
        assert "--pattern" in capsys.readouterr().err


class TestSubmitTraceOps:
    def test_query_trace_flag(self, workspace, capsys):
        _, pattern_path = workspace
        assert main([
            "submit", "--graph", "g", "--pattern", str(pattern_path),
            "--trace",
        ]) == 0
        request = json.loads(capsys.readouterr().out)
        assert request["trace"] is True

    def test_trace_op_listing_and_fetch(self, capsys):
        assert main(["submit", "--op", "trace"]) == 0
        assert json.loads(capsys.readouterr().out) == {"op": "trace"}
        assert main(["submit", "--op", "trace", "--trace-id", "trace-1"]) == 0
        request = json.loads(capsys.readouterr().out)
        assert request == {"op": "trace", "trace_id": "trace-1"}

    def test_serve_accepts_trace_sample(self, monkeypatch, capsys):
        import io
        import sys as _sys

        monkeypatch.setattr(
            _sys, "stdin",
            io.StringIO(json.dumps({"op": "shutdown"}) + "\n"),
        )
        assert main(["serve", "--trace-sample", "0.5"]) == 0
        assert main(["serve", "--trace-sample", "1.5"]) == 2  # validated


class TestSubscribeCommand:
    def test_subscribe_request_line(self, workspace, capsys):
        _, pattern_path = workspace
        rc = main([
            "subscribe", "--graph", "g", "--pattern", str(pattern_path),
            "--subscription-id", "alerts", "--queue-capacity", "16",
            "--lateness", "3", "--search-budget", "0.5", "--id", "r1",
        ])
        assert rc == 0
        request = json.loads(capsys.readouterr().out)
        assert request["op"] == "subscribe"
        assert request["graph"] == "g"
        assert request["subscription_id"] == "alerts"
        assert request["queue_capacity"] == 16
        assert request["lateness"] == 3
        assert request["search_budget"] == 0.5
        assert request["id"] == "r1"
        assert "edges" in request["pattern"]

    def test_defaults_omit_optionals(self, workspace, capsys):
        _, pattern_path = workspace
        assert main([
            "subscribe", "--graph", "g", "--pattern", str(pattern_path),
        ]) == 0
        request = json.loads(capsys.readouterr().out)
        assert request["op"] == "subscribe"
        for key in ("subscription_id", "queue_capacity", "lateness",
                    "search_budget", "id"):
            assert key not in request


class TestIngestCommand:
    def test_batched_requests(self, tmp_path, capsys):
        edge_file = tmp_path / "edges.txt"
        edge_file.write_text(
            "# comment and blank lines are skipped\n"
            "\n"
            "0 1 5\n"
            "1 2 8 wire\n"
            "2 3 9\n"
        )
        rc = main([
            "ingest", "--graph", "g", "--file", str(edge_file),
            "--batch", "2", "--id", "b",
        ])
        captured = capsys.readouterr()
        assert rc == 0
        lines = [json.loads(line) for line in captured.out.splitlines()]
        assert [r["id"] for r in lines] == ["b-1", "b-2"]
        assert lines[0]["op"] == "ingest"
        assert lines[0]["edges"] == [[0, 1, 5], [1, 2, 8, "wire"]]
        assert lines[1]["edges"] == [[2, 3, 9]]
        assert "3 edges in 2 ingest requests" in captured.err

    def test_trace_flag_and_stdin(self, monkeypatch, capsys):
        import io
        import sys as _sys

        monkeypatch.setattr(_sys, "stdin", io.StringIO("0 1 5\n"))
        assert main([
            "ingest", "--graph", "g", "--file", "-", "--trace",
        ]) == 0
        request = json.loads(capsys.readouterr().out)
        assert request["trace"] is True
        assert "id" not in request

    def test_malformed_edge_line_is_error(self, tmp_path, capsys):
        edge_file = tmp_path / "edges.txt"
        edge_file.write_text("0 1\n")
        assert main([
            "ingest", "--graph", "g", "--file", str(edge_file),
        ]) == 2
        assert "edge line 1" in capsys.readouterr().err
        edge_file.write_text("a b c\n")
        assert main([
            "ingest", "--graph", "g", "--file", str(edge_file),
        ]) == 2
        assert "non-integer" in capsys.readouterr().err

    def test_bad_batch_size_is_error(self, tmp_path, capsys):
        assert main([
            "ingest", "--graph", "g", "--file", str(tmp_path / "x"),
            "--batch", "0",
        ]) == 2
        assert "--batch" in capsys.readouterr().err


class TestSubmitStreamingOps:
    def test_poll_and_unsubscribe_lines(self, capsys):
        assert main([
            "submit", "--op", "poll", "--subscription-id", "s1",
            "--max", "5",
        ]) == 0
        assert json.loads(capsys.readouterr().out) == {
            "op": "poll", "subscription_id": "s1", "max": 5,
        }
        assert main([
            "submit", "--op", "unsubscribe", "--subscription-id", "s1",
        ]) == 0
        assert json.loads(capsys.readouterr().out) == {
            "op": "unsubscribe", "subscription_id": "s1",
        }

    def test_missing_subscription_id_is_error(self, capsys):
        assert main(["submit", "--op", "poll"]) == 2
        assert "--subscription-id" in capsys.readouterr().err


class TestStreamingPipeline:
    def test_subscribe_ingest_through_serve(
        self, workspace, tmp_path, monkeypatch, capsys
    ):
        import io
        import sys as _sys

        graph_path, pattern_path = workspace
        edge_file = tmp_path / "delta.txt"
        edge_file.write_text("0 1 5\n1 2 8\n")
        # Stage 1+2: the composing verbs write the request lines.
        assert main([
            "subscribe", "--graph", "g", "--pattern", str(pattern_path),
        ]) == 0
        assert main([
            "ingest", "--graph", "g", "--file", str(edge_file),
        ]) == 0
        assert main([
            "submit", "--op", "poll", "--subscription-id", "s1",
        ]) == 0
        requests = capsys.readouterr().out
        # Stage 3: pipe them into serve, exactly as a shell pipeline does.
        monkeypatch.setattr(_sys, "stdin", io.StringIO(requests))
        assert main([
            "serve", "--graph", f"g={graph_path}", "--seed", "1",
            "--workers", "2",
        ]) == 0
        out = capsys.readouterr().out
        responses = [json.loads(line) for line in out.splitlines()]
        assert [r["status"] for r in responses] == ["ok", "ok", "ok"]
        assert responses[0]["subscription"]["id"] == "s1"
        assert responses[1]["report"]["edges"] == 2
        assert responses[2]["count"] == len(responses[2]["emissions"])
