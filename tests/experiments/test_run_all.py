"""Smoke test for the all-experiments driver."""

from repro.experiments.run_all import run_all


class TestRunAll:
    def test_quick_run_produces_all_outputs(self, tmp_path):
        durations = run_all(
            tmp_path, scale=0.004, seed=1, time_budget=3.0, quick=True
        )
        assert len(durations) == 12
        index = (tmp_path / "INDEX.md").read_text()
        for name in durations:
            assert (tmp_path / f"{name}.txt").exists()
            assert (tmp_path / f"{name}.csv").exists()
            assert name in index
        # Spot-check one artifact's content.
        table3 = (tmp_path / "exp1_table3.txt").read_text()
        assert "tcsm-eve" in table3
        assert "Table III" in table3
