"""Smoke + shape tests for every experiment driver at tiny scale.

Each driver runs with a minimal configuration and its output structure is
validated: right experiment ids, right sweep coverage, consistent match
counts where the instance is shared.  These are integration tests for
`repro.experiments` against the rest of the library.
"""

import pytest

from repro.experiments import exp_distribution  # noqa: F401  (import check)
from repro.experiments.exp_distribution import run as run_distribution
from repro.experiments.exp_labels import (
    relabel_query,
    run_data_labels,
    run_query_labels,
)
from repro.experiments.exp_memory import run as run_memory
from repro.experiments.exp_pruning import run as run_pruning
from repro.experiments.exp_runtime import run_table3, run_table5
from repro.experiments.exp_scalability import (
    run_constraint_count,
    run_data_scale,
    run_density,
    run_query_size,
)
from repro.experiments.exp_timegap import run as run_timegap

TINY = dict(scale=0.004, seed=1, time_budget=5.0)
FAST_ALGOS = ("tcsm-v2v", "tcsm-e2e", "tcsm-eve")


class TestExp1Runtime:
    def test_table3_rows(self):
        ms = run_table3(datasets=("CM",), algorithms=FAST_ALGOS, **TINY)
        assert len(ms) == 3
        assert {m.algorithm for m in ms} == set(FAST_ALGOS)
        assert all(m.experiment == "exp1-table3" for m in ms)
        # Same instance: all algorithms agree on the count.
        assert len({m.matches for m in ms}) == 1

    def test_table5_grid(self):
        ms = run_table5(datasets=("CM",), algorithms=("tcsm-eve",), **TINY)
        combos = {(m.query, m.constraint) for m in ms}
        assert len(combos) == 9


class TestExp2Distribution:
    def test_phases_recorded(self):
        ms = run_distribution(
            datasets=("CM",), algorithms=FAST_ALGOS, **TINY
        )
        for m in ms:
            assert m.seconds >= m.build_seconds
            assert m.build_seconds > 0


class TestExp3Scalability:
    def test_query_size_sweep(self):
        ms = run_query_size(
            dataset="CM", sizes=(3, 4), algorithms=FAST_ALGOS,
            scale=0.05, seed=1, time_budget=5.0,
        )
        assert {m.params["size"] for m in ms} == {3, 4}
        # Extracted instances guarantee at least one match.
        for m in ms:
            assert m.matches >= 1 or m.budget_exhausted

    def test_constraint_count_sweep(self):
        ms = run_constraint_count(
            dataset="CM", counts=(2, 3), algorithms=("tcsm-eve",),
            scale=0.05, seed=1, time_budget=5.0,
        )
        assert {m.params["count"] for m in ms} == {2, 3}

    def test_density_sweep_includes_disconnected(self):
        ms = run_density(
            dataset="CM", densities=(0.5, 1.5), algorithms=("tcsm-eve",),
            scale=0.05, seed=1, time_budget=5.0,
        )
        assert {m.params["density"] for m in ms} == {0.5, 1.5}

    def test_data_scale_monotone_edges(self):
        ms = run_data_scale(
            datasets=("CM",), fractions=(0.5, 1.0),
            algorithms=("tcsm-eve",), scale=0.05, seed=1, time_budget=5.0,
        )
        assert {m.params["fraction"] for m in ms} == {0.5, 1.0}


class TestExp6Memory:
    def test_memory_positive(self):
        ms = run_memory(datasets=("CM",), algorithms=FAST_ALGOS, **TINY)
        assert all(m.memory_mb > 0 for m in ms)


class TestExp7And8Labels:
    def test_relabel_query(self):
        from repro.datasets import paper_query

        q = relabel_query(paper_query(1), 2)
        assert q.num_distinct_labels() == 2
        assert q.edges == paper_query(1).edges

    def test_query_label_sweep(self):
        ms = run_query_labels(
            dataset="CM", label_counts=(1, 3), algorithms=("tcsm-eve",),
            scale=0.02, seed=1, time_budget=5.0,
        )
        assert {m.params["labels"] for m in ms} == {1, 3}

    def test_data_label_sweep(self):
        ms = run_data_labels(
            label_counts=(8, 16), algorithms=("tcsm-eve",),
            scale=0.004, seed=1, time_budget=5.0, dataset="CM",
        )
        assert {m.params["labels"] for m in ms} == {8, 16}


class TestExp9Pruning:
    def test_stats_propagate(self):
        ms = run_pruning(dataset="CM", algorithms=FAST_ALGOS, **TINY)
        assert all(m.failed_enumerations >= 0 for m in ms)
        by_algo = {m.algorithm: m for m in ms}
        # The paper's ordering: edge-based fails at most as often as
        # vertex-based on the shared instance.
        assert (
            by_algo["tcsm-eve"].failed_enumerations
            <= by_algo["tcsm-v2v"].failed_enumerations
        )


class TestExp10Timegap:
    def test_matches_monotone_in_gap(self):
        ms = run_timegap(
            datasets=("CM",), gaps=(0, 86_400, 7 * 86_400),
            algorithms=("tcsm-eve",), scale=0.05, seed=1, time_budget=5.0,
        )
        counts = [m.matches for m in ms]
        assert counts == sorted(counts)

    def test_zero_gap_fewest(self):
        ms = run_timegap(
            datasets=("CM",), gaps=(0, 7 * 86_400),
            algorithms=("tcsm-eve",), scale=0.05, seed=1, time_budget=5.0,
        )
        assert ms[0].matches <= ms[-1].matches


class TestDriverCLIs:
    @pytest.mark.parametrize(
        "module, extra, marker",
        [
            ("exp_runtime", ["--datasets", "CM"], "tcsm-eve"),
            ("exp_pruning", ["--dataset", "CM"], "tcsm-eve"),
            ("exp_timegap", ["--datasets", "CM"], "CM"),
        ],
    )
    def test_main_runs_and_prints(self, capsys, module, extra, marker):
        import importlib

        mod = importlib.import_module(f"repro.experiments.{module}")
        mod.main(extra + ["--scale", "0.004", "--time-budget", "3"])
        out = capsys.readouterr().out
        assert marker in out

    def test_csv_option(self, tmp_path):
        from repro.experiments.exp_pruning import main

        path = tmp_path / "out.csv"
        main(
            ["--dataset", "CM", "--scale", "0.004", "--time-budget", "3",
             "--csv", str(path)]
        )
        assert path.exists()
        assert "tcsm-eve" in path.read_text()
