"""Tests for measurement records and text rendering."""

import csv

from repro.experiments import (
    Measurement,
    format_seconds,
    render_series,
    render_table,
    write_csv,
)


class TestMeasurement:
    def test_label(self):
        m = Measurement("e", "UB", "tcsm-eve", query="q1", constraint="tc2")
        assert m.label() == "UB q1,tc2"

    def test_label_without_workload(self):
        assert Measurement("e", "UB", "x").label() == "UB"

    def test_csv_roundtrip(self, tmp_path):
        measurements = [
            Measurement(
                "exp", "CM", "tcsm-eve", seconds=1.5,
                params={"k": 3, "x": "y"},
            ),
            Measurement("exp", "EE", "ri-ds", matches=7),
        ]
        path = tmp_path / "out.csv"
        write_csv(measurements, path)
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 2
        assert rows[0]["dataset"] == "CM"
        assert rows[0]["params"] == "k=3;x=y"
        assert rows[1]["matches"] == "7"


class TestFormatSeconds:
    def test_ranges(self):
        assert format_seconds(4071.4) == "4071"
        assert format_seconds(2.475) == "2.48"
        assert format_seconds(0.0878) == "0.0878"
        assert format_seconds(0.0000005) == "5.00e-07"


class TestRenderTable:
    def test_alignment_and_rule(self):
        text = render_table(
            ["Methods", "CM"], [["tcsm-eve", "0.01"]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("Methods")
        assert set(lines[2]) <= {"-", " "}
        assert "tcsm-eve" in lines[3]

    def test_column_width_from_body(self):
        text = render_table(["a"], [["longer-cell"]])
        assert "longer-cell" in text


class TestRenderSeries:
    def test_series_rows(self):
        text = render_series(
            "k", [1, 2, 3], {"eve": ["a", "b", "c"], "v2v": ["d", "e", "f"]}
        )
        lines = text.splitlines()
        assert lines[0].split() == ["k", "1", "2", "3"]
        assert lines[2].split() == ["eve", "a", "b", "c"]
        assert lines[3].split() == ["v2v", "d", "e", "f"]
