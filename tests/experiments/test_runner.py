"""Tests for the measurement harness."""

from repro.datasets import toy_instance
from repro.experiments import (
    CORE_ALGORITHMS,
    DEFAULT_COMPARISON,
    measure,
)


class TestMeasure:
    def test_basic_fields(self):
        query, tc, graph, _, _ = toy_instance()
        m = measure(
            "unit", "toy", "tcsm-eve", query, tc, graph,
            query_name="q", constraint_name="t", time_budget=10,
        )
        assert m.experiment == "unit"
        assert m.algorithm == "tcsm-eve"
        assert m.matches == 2
        assert m.seconds >= m.build_seconds
        assert not m.budget_exhausted
        assert m.memory_mb == 0.0

    def test_memory_tracking(self):
        query, tc, graph, _, _ = toy_instance()
        m = measure(
            "unit", "toy", "tcsm-eve", query, tc, graph,
            track_memory=True, time_budget=10,
        )
        assert m.memory_mb > 0

    def test_repeat_keeps_minimum(self):
        query, tc, graph, _, _ = toy_instance()
        single = measure(
            "unit", "toy", "tcsm-eve", query, tc, graph, repeat=1,
            time_budget=10,
        )
        repeated = measure(
            "unit", "toy", "tcsm-eve", query, tc, graph, repeat=3,
            time_budget=10,
        )
        # Same workload; repeated measurement records a (not larger,
        # modulo noise) best time and the same match count.
        assert repeated.matches == single.matches

    def test_time_budget_flag(self):
        query, tc, graph, _, _ = toy_instance()
        m = measure(
            "unit", "toy", "tcsm-eve", query, tc, graph, time_budget=0.0,
        )
        assert m.budget_exhausted

    def test_options_forwarded(self):
        query, tc, graph, _, _ = toy_instance()
        m = measure(
            "unit", "toy", "tcsm-v2v", query, tc, graph,
            time_budget=10, use_windows=False,
        )
        assert m.matches == 2

    def test_params_recorded(self):
        query, tc, graph, _, _ = toy_instance()
        m = measure(
            "unit", "toy", "tcsm-eve", query, tc, graph,
            time_budget=10, params={"k": 5},
        )
        assert m.params == {"k": 5}


class TestAlgorithmGroups:
    def test_core_order(self):
        assert CORE_ALGORITHMS == ("tcsm-v2v", "tcsm-e2e", "tcsm-eve")

    def test_default_comparison_ends_with_ours(self):
        assert DEFAULT_COMPARISON[-3:] == CORE_ALGORITHMS
        assert len(set(DEFAULT_COMPARISON)) == len(DEFAULT_COMPARISON)
