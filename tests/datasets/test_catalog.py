"""Tests for the dataset catalog and stand-in loading."""

import pytest

from repro.datasets import DATASETS, dataset_keys, load_dataset
from repro.errors import DatasetError
from repro.graphs import save_snap_temporal


class TestCatalog:
    def test_six_datasets_in_paper_order(self):
        assert dataset_keys() == ("CM", "EE", "MO", "UB", "SU", "WT")

    def test_seventh_dataset_available_on_request(self):
        keys = dataset_keys(include_extra=True)
        assert keys[-1] == "SO"
        assert len(keys) == 7

    def test_so_standin_loads(self):
        g = load_dataset("SO", seed=0, plant_patterns=False)
        assert g.num_temporal_edges > 0

    def test_table_ii_statistics(self):
        wt = DATASETS["WT"]
        assert wt.vertices == 1_140_149
        assert wt.temporal_edges == 7_833_140
        assert wt.static_edges == 3_309_592
        assert wt.time_span_days == 2_320

    def test_scaled_sizes_monotone(self):
        spec = DATASETS["UB"]
        small = spec.scaled_sizes(0.01)
        large = spec.scaled_sizes(0.1)
        assert all(s <= l for s, l in zip(small, large))

    def test_invalid_scale(self):
        with pytest.raises(DatasetError, match="scale"):
            DATASETS["CM"].scaled_sizes(0)
        with pytest.raises(DatasetError, match="scale"):
            DATASETS["CM"].scaled_sizes(1.5)


class TestLoadDataset:
    def test_unknown_key(self):
        with pytest.raises(DatasetError, match="unknown dataset"):
            load_dataset("NOPE")

    def test_key_case_insensitive(self):
        g = load_dataset("cm", scale=0.05, seed=0)
        assert g.num_temporal_edges > 0

    def test_default_scale_sizes(self):
        g = load_dataset("CM", seed=0)
        spec = DATASETS["CM"]
        expected_v, expected_e, _ = spec.scaled_sizes(spec.default_scale)
        assert g.num_vertices == expected_v
        # Planting adds a bounded number of extra edges.
        assert expected_e <= g.num_temporal_edges <= expected_e + 300

    def test_average_degree_tracks_scaled_spec(self):
        # MO has no vertex boost, so its stand-in keeps the Table II
        # average temporal degree.
        g = load_dataset("MO", seed=0, plant_patterns=False)
        avg = g.num_temporal_edges / g.num_vertices
        assert avg == pytest.approx(DATASETS["MO"].avg_degree, rel=0.15)

    def test_vertex_boost_reduces_density(self):
        # CM and EE deliberately keep more vertices than a uniform scale
        # would (see DatasetSpec.vertex_scale_boost).
        spec = DATASETS["CM"]
        v, e, _ = spec.scaled_sizes(spec.default_scale)
        assert v > spec.vertices * spec.default_scale

    def test_time_span_tracks_table(self):
        g = load_dataset("MO", seed=0, plant_patterns=False)
        expected = DATASETS["MO"].time_span_days * 86_400
        assert g.time_span == pytest.approx(expected, rel=0.05)

    def test_deterministic(self):
        a = load_dataset("CM", scale=0.05, seed=3)
        b = load_dataset("CM", scale=0.05, seed=3)
        assert list(a.edges_by_time()) == list(b.edges_by_time())

    def test_num_labels(self):
        g = load_dataset("CM", scale=0.05, num_labels=3, seed=0,
                         plant_patterns=False)
        assert len(set(g.labels)) <= 3

    def test_planted_patterns_have_matches(self):
        from repro.core import count_matches
        from repro.datasets import paper_constraints, paper_query

        g = load_dataset("UB", seed=1)
        query = paper_query(1)
        tc = paper_constraints(1, num_edges=query.num_edges)
        assert count_matches(query, tc, g, algorithm="tcsm-eve") > 0

    def test_snap_path_roundtrip(self, tmp_path):
        original = load_dataset("CM", scale=0.03, seed=5)
        path = tmp_path / "cm.txt"
        save_snap_temporal(original, path)
        reloaded = load_dataset("CM", snap_path=path)
        assert reloaded.num_temporal_edges == original.num_temporal_edges

    def test_snap_path_with_scale_caps_edges(self, tmp_path):
        original = load_dataset("CM", scale=0.03, seed=5)
        path = tmp_path / "cm.txt"
        save_snap_temporal(original, path, save_label_sidecar=False)
        capped = load_dataset("CM", snap_path=path, scale=0.0001)
        assert capped.num_temporal_edges < original.num_temporal_edges
