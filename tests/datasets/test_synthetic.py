"""Tests for the synthetic generators."""

import pytest

from repro.datasets import (
    random_constraints,
    random_instance,
    random_query,
    random_temporal_graph,
    synthetic_dataset,
)
from repro.datasets.synthetic import plant_motifs
from repro.datasets.queries import paper_query
from repro.errors import DatasetError
from repro.graphs import TemporalGraph

LABELS = ("A", "B", "C")


class TestRandomQuery:
    def test_shape(self):
        q = random_query(5, 7, LABELS, seed=1)
        assert q.num_vertices == 5
        assert q.num_edges == 7

    def test_connected_by_default(self):
        for seed in range(10):
            q = random_query(6, 5, LABELS, seed=seed)
            assert q.is_weakly_connected()

    def test_deterministic(self):
        a = random_query(5, 6, LABELS, seed=9)
        b = random_query(5, 6, LABELS, seed=9)
        assert a.edges == b.edges
        assert a.labels == b.labels

    def test_too_many_edges_rejected(self):
        with pytest.raises(DatasetError, match="impossible"):
            random_query(3, 7, LABELS)

    def test_too_few_edges_for_connectivity(self):
        with pytest.raises(DatasetError, match="cannot connect"):
            random_query(5, 2, LABELS)

    def test_disconnected_allowed_when_requested(self):
        q = random_query(5, 2, LABELS, seed=0, connected=False)
        assert q.num_edges == 2

    def test_zero_vertices_rejected(self):
        with pytest.raises(DatasetError):
            random_query(0, 0, LABELS)


class TestRandomConstraints:
    def test_count_and_validity(self):
        q = random_query(5, 7, LABELS, seed=2)
        tc = random_constraints(q, 4, 10, seed=2)
        assert len(tc) == 4
        assert tc.num_edges == q.num_edges

    def test_prefers_adjacent_pairs(self):
        q = random_query(5, 7, LABELS, seed=3)
        tc = random_constraints(q, 4, 10, seed=3)
        for c in tc:
            assert q.edges_share_vertex(c.earlier, c.later)

    def test_caps_at_possible_pairs(self):
        q = random_query(3, 2, LABELS, seed=0)
        tc = random_constraints(q, 50, 5, seed=0)
        assert len(tc) <= 1  # only one unordered pair exists

    def test_single_edge_query_rejected_with_constraints(self):
        q = random_query(2, 1, LABELS, seed=0)
        with pytest.raises(DatasetError):
            random_constraints(q, 2, 5)

    def test_deterministic(self):
        q = random_query(5, 7, LABELS, seed=4)
        assert random_constraints(q, 3, 9, seed=5) == random_constraints(
            q, 3, 9, seed=5
        )


class TestRandomTemporalGraph:
    def test_exact_edge_count(self):
        g = random_temporal_graph(10, 40, LABELS, seed=1)
        assert g.num_temporal_edges == 40
        assert g.num_vertices == 10

    def test_deterministic(self):
        a = random_temporal_graph(8, 20, LABELS, seed=7)
        b = random_temporal_graph(8, 20, LABELS, seed=7)
        assert list(a.edges_by_time()) == list(b.edges_by_time())

    def test_needs_two_vertices(self):
        with pytest.raises(DatasetError):
            random_temporal_graph(1, 5, LABELS)


class TestRandomInstance:
    def test_bundle(self):
        query, tc, graph = random_instance(seed=0)
        assert tc.num_edges == query.num_edges
        assert graph.num_temporal_edges > 0


class TestSyntheticDataset:
    def test_target_sizes(self):
        g = synthetic_dataset(200, 3000, num_labels=5, seed=1)
        assert g.num_vertices == 200
        assert g.num_temporal_edges == 3000

    def test_label_alphabet_respected(self):
        g = synthetic_dataset(100, 500, num_labels=4, seed=2)
        assert len(set(g.labels)) <= 4

    def test_heavy_tail_degrees(self):
        # Preferential attachment: max degree far above the average.
        g = synthetic_dataset(500, 5000, seed=3)
        data = g.de_temporal()
        degrees = sorted(data.degree(v) for v in g.vertices())
        average = sum(degrees) / len(degrees)
        assert degrees[-1] > 4 * average

    def test_multiplicity_skew_controls_reuse(self):
        dense = synthetic_dataset(
            100, 2000, multiplicity_skew=0.9, seed=4
        )
        sparse = synthetic_dataset(
            100, 2000, multiplicity_skew=0.0, seed=4
        )
        assert dense.num_static_edges < sparse.num_static_edges

    def test_time_span_respected(self):
        g = synthetic_dataset(100, 1000, time_span=500, seed=5)
        assert g.max_time <= 500
        assert g.min_time >= 0

    def test_deterministic(self):
        a = synthetic_dataset(100, 800, seed=11)
        b = synthetic_dataset(100, 800, seed=11)
        assert list(a.edges_by_time()) == list(b.edges_by_time())

    def test_too_small_rejected(self):
        with pytest.raises(DatasetError):
            synthetic_dataset(1, 100)


class TestPlantMotifs:
    def test_planted_query_becomes_matchable(self):
        from repro.core import count_matches
        from repro.datasets.queries import paper_constraints

        base = synthetic_dataset(300, 2000, num_labels=8, time_span=10**6, seed=6)
        query = paper_query(1)
        planted = plant_motifs(base, [query], copies=3, window=1000, seed=7)
        tc = paper_constraints(1, num_edges=query.num_edges, gap=1000)
        assert count_matches(query, tc, planted, algorithm="tcsm-eve") >= 3

    def test_original_graph_untouched(self):
        base = synthetic_dataset(100, 500, seed=8)
        before = base.num_temporal_edges
        plant_motifs(base, [paper_query(2)], copies=2, window=100, seed=9)
        assert base.num_temporal_edges == before

    def test_planting_stops_when_pool_exhausted(self):
        base = TemporalGraph(["A"] * 8, [(0, 1, 5)])
        planted = plant_motifs(base, [paper_query(1)], copies=5, seed=0)
        # Only one full copy fits (8 vertices, query needs 6 fresh each).
        assert planted.num_vertices == 8
