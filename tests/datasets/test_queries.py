"""Tests for the Figure-12 workloads and query extraction."""

import pytest

from repro.core import count_matches
from repro.datasets import (
    DEFAULT_GAP,
    extract_instance,
    extract_query,
    load_dataset,
    paper_constraints,
    paper_query,
    paper_workloads,
)
from repro.errors import DatasetError
from repro.graphs import TemporalGraph


class TestPaperQueries:
    @pytest.mark.parametrize("index", (1, 2, 3))
    def test_six_vertices(self, index):
        assert paper_query(index).num_vertices == 6

    @pytest.mark.parametrize("index", (1, 2, 3))
    def test_connected(self, index):
        assert paper_query(index).is_weakly_connected()

    def test_q3_densest(self):
        densities = [paper_query(i).density() for i in (1, 2, 3)]
        assert densities[2] >= densities[0] >= densities[1]

    def test_unknown_index(self):
        with pytest.raises(DatasetError, match="q1..q3"):
            paper_query(4)


class TestPaperConstraints:
    def test_tc1_linear_chain(self):
        tc = paper_constraints(1)
        # A chain: every edge's constraint-degree is at most 2.
        assert all(tc.degree(e) <= 2 for e in range(tc.num_edges))
        assert len(tc) == 3

    def test_tc2_tree_shape(self):
        tc = paper_constraints(2)
        # Tree: |constraints| = |involved edges| - 1.
        assert len(tc) == len(tc.edges_involved()) - 1

    def test_tc3_graph_shape(self):
        tc = paper_constraints(3)
        # Graph-shaped: more constraints than a tree would allow.
        assert len(tc) > len(tc.edges_involved()) - 1

    def test_edge_indices_fit_all_queries(self):
        min_edges = min(paper_query(i).num_edges for i in (1, 2, 3))
        for t in (1, 2, 3):
            tc = paper_constraints(t, num_edges=min_edges)
            for c in tc:
                assert c.earlier < min_edges
                assert c.later < min_edges

    def test_gap_parameter(self):
        tc = paper_constraints(1, gap=42)
        assert all(c.gap == 42 for c in tc)

    def test_unknown_index(self):
        with pytest.raises(DatasetError, match="tc1..tc3"):
            paper_constraints(9)

    def test_workload_grid_is_3x3(self):
        combos = list(paper_workloads())
        assert len(combos) == 9
        names = {(qn, tn) for qn, tn, _, _ in combos}
        assert ("q1", "tc2") in names
        for _, _, query, tc in combos:
            assert tc.num_edges == query.num_edges


class TestExtractQuery:
    @pytest.fixture(scope="class")
    def graph(self):
        return load_dataset("CM", scale=0.08, seed=3)

    def test_shape_and_witness(self, graph):
        query, vertices, edges = extract_query(graph, 4, 5, seed=1)
        assert query.num_vertices == 4
        assert query.num_edges == 5
        assert query.is_weakly_connected()
        # The witness embedding exists in the data graph.
        for (qa, qb), (da, db) in zip(query.edges, edges):
            assert graph.has_pair(da, db)
            assert graph.label(da) == query.label(qa)
            assert graph.label(db) == query.label(qb)

    def test_deterministic(self, graph):
        a = extract_query(graph, 4, 4, seed=7)
        b = extract_query(graph, 4, 4, seed=7)
        assert a[0].edges == b[0].edges

    def test_impossible_shape_rejected(self, graph):
        with pytest.raises(DatasetError, match="connected query"):
            extract_query(graph, 4, 2, seed=0)

    def test_too_large_for_graph(self):
        tiny = TemporalGraph(["A", "B"], [(0, 1, 1)])
        with pytest.raises(DatasetError, match="could not extract"):
            extract_query(tiny, 4, 4, seed=0)

    def test_single_vertex_rejected(self, graph):
        with pytest.raises(DatasetError, match="two vertices"):
            extract_query(graph, 1, 0)


class TestExtractInstance:
    def test_guaranteed_match(self):
        graph = load_dataset("CM", scale=0.08, seed=4)
        for seed in range(5):
            query, tc = extract_instance(graph, 4, 4, 3, seed=seed)
            assert count_matches(query, tc, graph, algorithm="tcsm-eve") >= 1

    def test_constraint_count(self):
        graph = load_dataset("CM", scale=0.08, seed=4)
        query, tc = extract_instance(graph, 4, 5, 3, seed=1)
        assert len(tc) <= 3
        assert tc.num_edges == query.num_edges

    def test_default_gap_exported(self):
        assert DEFAULT_GAP == 7 * 86_400
