"""Tests for the toy-example fixture itself."""

from repro.core import brute_force_matches
from repro.datasets import (
    TOY_EXPECTED_MATCH_COUNT,
    toy_constraints,
    toy_data_graph,
    toy_instance,
    toy_query,
)


class TestToyFixture:
    def test_query_shape(self):
        query, names = toy_query()
        assert query.num_vertices == 5
        assert query.num_edges == 7
        assert set(names) == {"u1", "u2", "u3", "u4", "u5"}

    def test_constraints_shape(self):
        tc = toy_constraints()
        assert len(tc) == 5
        assert tc.is_feasible()

    def test_data_graph_shape(self):
        graph, names = toy_data_graph()
        assert graph.num_vertices == 11
        # (v2, v3) carries two timestamps.
        assert graph.timestamps(names["v2"], names["v3"]) == (4, 5)

    def test_ground_truth_count(self):
        query, tc, graph, _, _ = toy_instance()
        assert (
            len(brute_force_matches(query, tc, graph))
            == TOY_EXPECTED_MATCH_COUNT
        )

    def test_red_match_is_the_unique_embedding(self):
        query, tc, graph, qn, vn = toy_instance()
        matches = brute_force_matches(query, tc, graph)
        expected = tuple(vn[v] for v in ("v1", "v2", "v3", "v7", "v11"))
        assert {m.vertex_map for m in matches} == {expected}

    def test_fixture_instances_independent(self):
        a, _, _, _, _ = toy_instance()
        b, _, _, _, _ = toy_instance()
        assert a is not b
