"""Failure-injection tests: malformed inputs must raise typed errors.

Every entry point should reject inconsistent inputs eagerly with an error
from the :mod:`repro.errors` hierarchy — never a bare KeyError/IndexError
deep inside a search.
"""

import pytest

from repro.core import (
    BruteForceMatcher,
    E2EMatcher,
    EVEMatcher,
    V2VMatcher,
    find_matches,
)
from repro.datasets import toy_instance
from repro.errors import (
    AlgorithmError,
    ConstraintError,
    QueryError,
    ReproError,
    UnknownAlgorithmError,
)
from repro.graphs import QueryGraph, TemporalConstraints, TemporalGraph

MATCHERS = (V2VMatcher, E2EMatcher, EVEMatcher, BruteForceMatcher)


class TestArityMismatches:
    @pytest.mark.parametrize("matcher_cls", MATCHERS)
    def test_constraints_for_wrong_edge_count(self, matcher_cls):
        query = QueryGraph(["A", "B"], [(0, 1)])
        tc = TemporalConstraints([], num_edges=7)
        graph = TemporalGraph(["A", "B"], [(0, 1, 1)])
        with pytest.raises(AlgorithmError):
            matcher_cls(query, tc, graph)

    def test_constraint_referencing_missing_edge(self):
        with pytest.raises(ConstraintError):
            TemporalConstraints([(0, 5, 3)], num_edges=2)


class TestDegenerateInputs:
    def test_edgeless_query_rejected_by_edge_matchers(self):
        query = QueryGraph(["A"], [])
        tc = TemporalConstraints([], num_edges=0)
        graph = TemporalGraph(["A", "A"], [(0, 1, 1)])
        for matcher_cls in (E2EMatcher, EVEMatcher):
            with pytest.raises(AlgorithmError, match="at least one"):
                matcher_cls(query, tc, graph)

    def test_edgeless_query_fine_for_vertex_matchers(self):
        # A single-vertex query is a legal (if odd) vertex-matching task.
        query = QueryGraph(["A"], [])
        tc = TemporalConstraints([], num_edges=0)
        graph = TemporalGraph(["A", "A", "B"], [(0, 1, 1)])
        result = find_matches(query, tc, graph, algorithm="tcsm-v2v")
        assert result.num_matches == 2  # two A-labeled vertices

    def test_vertexless_query_rejected(self):
        with pytest.raises(QueryError):
            QueryGraph([], [])

    def test_empty_data_graph_yields_nothing(self):
        query, tc, _, _, _ = toy_instance()
        empty = TemporalGraph([])
        for algo in ("tcsm-v2v", "tcsm-e2e", "tcsm-eve", "brute-force"):
            assert find_matches(query, tc, empty, algorithm=algo).num_matches == 0


class TestEngineErrors:
    def test_unknown_algorithm(self):
        query, tc, graph, _, _ = toy_instance()
        with pytest.raises(UnknownAlgorithmError):
            find_matches(query, tc, graph, algorithm="nope")

    def test_unknown_matcher_option(self):
        query, tc, graph, _, _ = toy_instance()
        with pytest.raises(TypeError):
            find_matches(query, tc, graph, algorithm="tcsm-eve",
                         bogus_option=1)

    def test_errors_are_repro_errors(self):
        assert issubclass(AlgorithmError, ReproError)
        assert issubclass(UnknownAlgorithmError, AlgorithmError)
        assert issubclass(QueryError, ReproError)
