"""Tests for TCQ+ construction (Algorithm 3, Figures 6-7)."""

import pytest

from repro.core import build_tcq_plus, edge_tsup
from repro.datasets import (
    random_constraints,
    random_query,
    toy_constraints,
    toy_query,
)
from repro.errors import QueryError
from repro.graphs import QueryGraph, TemporalConstraints


@pytest.fixture(scope="module")
def toy():
    query, names = toy_query()
    return query, toy_constraints(), names


class TestToyFigure6:
    """The toy instance must reproduce Figure 6 exactly (0-based)."""

    @pytest.fixture(scope="class")
    def tcq(self, toy):
        query, tc, _ = toy
        return build_tcq_plus(query, tc)

    def test_edge_tsup(self, toy):
        query, tc, _ = toy
        # e1..e7 degrees in the constraint graph: 1, 3, 1, 1, 0, 2, 2.
        assert edge_tsup(query, tc) == [1, 3, 1, 1, 0, 2, 2]

    def test_order_matches_paper(self, tcq):
        # Paper: TO = e2, e1, e3, e6, e7, e4, e5.
        assert list(tcq.order) == [1, 0, 2, 5, 6, 3, 4]

    def test_prec_matches_paper(self, tcq):
        # Paper: PD = {e1:e2, e3:e2, e6:e3, e7:e6, e4:e7, e5:e3}.
        by_edge = {
            tcq.order[pos]: tcq.prec[pos] for pos in range(len(tcq.order))
        }
        assert by_edge[1] is None  # seed
        assert by_edge[0] == 1
        assert by_edge[2] == 1
        assert by_edge[5] == 2
        assert by_edge[6] == 5
        assert by_edge[3] == 6
        assert by_edge[4] == 2

    def test_forward_edges_match_paper(self, tcq):
        # Paper: FE = {e4: {e2}, e5: {e7}}, all others empty.
        by_edge = {
            tcq.order[pos]: tcq.forward[pos] for pos in range(len(tcq.order))
        }
        assert by_edge[3] == (1,)
        assert by_edge[4] == (6,)
        for e in (1, 0, 2, 5, 6):
            assert by_edge[e] == ()

    def test_check_at_matches_paper(self, tcq, toy):
        # Paper: TC = {tc1:e1, tc2:e3, tc3:e4, tc4:e7, tc5:e6}.
        _, tc, _ = toy
        check_edge_by_constraint = {}
        for pos, constraints in enumerate(tcq.check_at):
            for c in constraints:
                check_edge_by_constraint[c] = tcq.order[pos]
        expected = {
            tc[0]: 0,  # tc1 -> e1
            tc[1]: 2,  # tc2 -> e3
            tc[2]: 3,  # tc3 -> e4
            tc[3]: 6,  # tc4 -> e7
            tc[4]: 5,  # tc5 -> e6
        }
        assert check_edge_by_constraint == expected

    def test_new_vertices(self, tcq, toy):
        query, _, names = toy
        by_edge = {
            tcq.order[pos]: tcq.new_vertices[pos]
            for pos in range(len(tcq.order))
        }
        # e2 introduces u2 and u1; e1 introduces nothing; e3 introduces u3;
        # e6 introduces u5; e7 introduces u4; e4, e5 introduce nothing
        # (Example 6).
        assert set(by_edge[1]) == {names["u1"], names["u2"]}
        assert by_edge[0] == ()
        assert by_edge[2] == (names["u3"],)
        assert by_edge[5] == (names["u5"],)
        assert by_edge[6] == (names["u4"],)
        assert by_edge[3] == ()
        assert by_edge[4] == ()


class TestOrderInvariants:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_queries(self, seed):
        labels = ("A", "B", "C")
        query = random_query(5, 7, labels, seed=seed)
        tc = random_constraints(query, 4, 10, seed=seed)
        tcq = build_tcq_plus(query, tc)
        m = query.num_edges
        assert sorted(tcq.order) == list(range(m))
        for pos, e in enumerate(tcq.order):
            assert tcq.position[e] == pos
        # prec ordered earlier and sharing a vertex; FE ordered earlier.
        for pos in range(1, m):
            e = tcq.order[pos]
            p = tcq.prec[pos]
            if p is not None:
                assert tcq.position[p] < pos
                assert query.edges_share_vertex(e, p)
            for f in tcq.forward[pos]:
                assert tcq.position[f] < pos
                assert query.edges_share_vertex(e, f)
        # Every constraint placed exactly once, at a checkable position.
        placed = [c for cs in tcq.check_at for c in cs]
        assert sorted(placed) == sorted(tc.constraints)
        for pos, constraints in enumerate(tcq.check_at):
            for c in constraints:
                assert tcq.position[c.earlier] <= pos
                assert tcq.position[c.later] <= pos

    @pytest.mark.parametrize("seed", range(12))
    def test_endpoint_coverage_invariant(self, seed):
        """Each edge's endpoints are pinned by prec+FE or newly introduced."""
        labels = ("A", "B", "C")
        query = random_query(5, 7, labels, seed=seed + 100)
        tc = random_constraints(query, 3, 10, seed=seed)
        tcq = build_tcq_plus(query, tc)
        covered: set[int] = set()
        for pos, e in enumerate(tcq.order):
            endpoints = set(query.edge(e))
            new = set(tcq.new_vertices[pos])
            assert new == endpoints - covered
            pinned = set()
            if tcq.prec[pos] is not None:
                pinned |= set(
                    query.edges_share_vertex(e, tcq.prec[pos])
                )
            for f in tcq.forward[pos]:
                pinned |= set(query.edges_share_vertex(e, f)) & endpoints
            # covered endpoints must be pinned by prec or FE.
            assert (endpoints & covered) <= pinned
            covered |= endpoints

    def test_tree_contiguity_on_toy(self):
        """Edges of one TCF tree are ordered contiguously (tree walk)."""
        query, _ = toy_query()
        tc = toy_constraints()
        tcq = build_tcq_plus(query, tc)
        seen_trees: list[frozenset] = []
        for e in tcq.order:
            tree = tcq.tcf.tree_of(e)
            if len(tree) == 1:
                continue
            if seen_trees and seen_trees[-1] == tree:
                continue
            assert tree not in seen_trees, "tree interrupted and resumed"
            seen_trees.append(tree)


class TestEdgeCases:
    def test_single_edge_query(self):
        query = QueryGraph(["A", "B"], [(0, 1)])
        tc = TemporalConstraints([], num_edges=1)
        tcq = build_tcq_plus(query, tc)
        assert tcq.order == (0,)
        assert tcq.prec == (None,)
        assert tcq.new_vertices == ((0, 1),)

    def test_no_edges_rejected(self):
        query = QueryGraph(["A"], [])
        tc = TemporalConstraints([], num_edges=0)
        with pytest.raises(QueryError, match="no edges"):
            build_tcq_plus(query, tc)

    def test_mismatched_constraints_rejected(self):
        query = QueryGraph(["A", "B"], [(0, 1)])
        tc = TemporalConstraints([], num_edges=3)
        with pytest.raises(QueryError, match="constraints built for"):
            build_tcq_plus(query, tc)

    def test_disconnected_edge_components(self):
        query = QueryGraph(["A", "B", "C", "D"], [(0, 1), (2, 3)])
        tc = TemporalConstraints([], num_edges=2)
        tcq = build_tcq_plus(query, tc)
        assert sorted(tcq.order) == [0, 1]
        # Second component's seed has no prec.
        assert tcq.prec.count(None) == 2
