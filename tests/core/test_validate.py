"""Tests for pattern linting."""

import pytest

from repro.core.validate import Diagnostic, lint_pattern
from repro.datasets import toy_instance
from repro.graphs import QueryGraph, TemporalConstraints, TemporalGraph


def codes(diagnostics):
    return {d.code for d in diagnostics}


class TestCleanPattern:
    def test_toy_instance_is_mostly_clean(self):
        query, tc, graph, _, _ = toy_instance()
        report = lint_pattern(query, tc, graph)
        assert "infeasible" not in codes(report)
        assert "disconnected-query" not in codes(report)
        assert "label-missing" not in codes(report)
        # e5 (index 4) is in no constraint: expect the info note.
        assert "unconstrained-edges" in codes(report)


class TestStructuralFindings:
    def test_arity_mismatch_short_circuits(self):
        query = QueryGraph(["A", "B"], [(0, 1)])
        tc = TemporalConstraints([], num_edges=5)
        report = lint_pattern(query, tc)
        assert codes(report) == {"arity-mismatch"}
        assert report[0].severity == "error"

    def test_disconnected_query_flagged(self):
        query = QueryGraph(["A", "B", "C", "D"], [(0, 1), (2, 3)])
        tc = TemporalConstraints([], num_edges=2)
        assert "disconnected-query" in codes(lint_pattern(query, tc))

    def test_fully_constrained_query_no_info(self):
        query = QueryGraph(["A", "B", "C"], [(0, 1), (1, 2)])
        tc = TemporalConstraints([(0, 1, 5)], num_edges=2)
        assert "unconstrained-edges" not in codes(lint_pattern(query, tc))

    def test_no_constraints_no_unconstrained_note(self):
        # With zero constraints the note would be noise.
        query = QueryGraph(["A", "B"], [(0, 1)])
        tc = TemporalConstraints([], num_edges=1)
        assert "unconstrained-edges" not in codes(lint_pattern(query, tc))

    def test_forced_equality_detected(self):
        query = QueryGraph(["A", "B"], [(0, 1), (1, 0)])
        tc = TemporalConstraints([(0, 1, 0)], num_edges=2)
        report = lint_pattern(query, tc)
        assert "forced-equality" in codes(report)

    def test_equality_via_cycle_detected(self):
        query = QueryGraph(["A", "B", "C"], [(0, 1), (1, 2), (2, 0)])
        tc = TemporalConstraints(
            [(0, 1, 4), (1, 0, 4)], num_edges=3
        )
        assert "forced-equality" in codes(lint_pattern(query, tc))


class TestGraphAwareFindings:
    def test_missing_vertex_label(self):
        query = QueryGraph(["Z", "B"], [(0, 1)])
        tc = TemporalConstraints([], num_edges=1)
        graph = TemporalGraph(["A", "B"], [(0, 1, 1)])
        report = lint_pattern(query, tc, graph)
        assert "label-missing" in codes(report)

    def test_missing_edge_label(self):
        query = QueryGraph(["A", "B"], [(0, 1)], edge_labels=["sepa"])
        tc = TemporalConstraints([], num_edges=1)
        graph = TemporalGraph(["A", "B"])
        graph.add_edge(0, 1, 1, label="wire")
        assert "edge-label-missing" in codes(lint_pattern(query, tc, graph))

    def test_present_edge_label_clean(self):
        query = QueryGraph(["A", "B"], [(0, 1)], edge_labels=["wire"])
        tc = TemporalConstraints([], num_edges=1)
        graph = TemporalGraph(["A", "B"])
        graph.add_edge(0, 1, 1, label="wire")
        assert "edge-label-missing" not in codes(lint_pattern(query, tc, graph))

    def test_gap_exceeding_span(self):
        query = QueryGraph(["A", "B", "C"], [(0, 1), (1, 2)])
        tc = TemporalConstraints([(0, 1, 10_000)], num_edges=2)
        graph = TemporalGraph(
            ["A", "B", "C"], [(0, 1, 1), (1, 2, 5)]
        )  # span = 4
        assert "gap-vs-span" in codes(lint_pattern(query, tc, graph))

    def test_reasonable_gap_no_note(self):
        query = QueryGraph(["A", "B", "C"], [(0, 1), (1, 2)])
        tc = TemporalConstraints([(0, 1, 2)], num_edges=2)
        graph = TemporalGraph(["A", "B", "C"], [(0, 1, 1), (1, 2, 5)])
        assert "gap-vs-span" not in codes(lint_pattern(query, tc, graph))


class TestDiagnosticType:
    def test_str_rendering(self):
        d = Diagnostic("warning", "some-code", "details")
        assert str(d) == "[warning] some-code: details"
