"""Tests for MatchSet post-processing and export."""

import csv
import json

import pytest

from repro.core import find_matches
from repro.core.results import MatchSet
from repro.datasets import toy_instance


@pytest.fixture(scope="module")
def toy_matches():
    query, tc, graph, qn, vn = toy_instance()
    result = find_matches(query, tc, graph, algorithm="tcsm-eve")
    return query, result.matches, vn


class TestContainer:
    def test_len_iter_contains(self, toy_matches):
        _, matches, _ = toy_matches
        ms = MatchSet(matches)
        assert len(ms) == 2
        assert list(ms) == list(matches)
        assert matches[0] in ms

    def test_deduplication(self, toy_matches):
        _, matches, _ = toy_matches
        ms = MatchSet(list(matches) + list(matches))
        assert len(ms) == 2

    def test_union(self, toy_matches):
        _, matches, _ = toy_matches
        a = MatchSet(matches[:1])
        b = MatchSet(matches[1:])
        assert len(a | b) == 2
        assert len(a | a) == 1

    def test_empty(self):
        ms = MatchSet()
        assert len(ms) == 0
        assert ms.time_range() is None
        assert "0 matches" in ms.summary()


class TestAnalystViews:
    def test_embedding_grouping(self, toy_matches):
        _, matches, _ = toy_matches
        ms = MatchSet(matches)
        groups = ms.embeddings()
        # The toy instance: one embedding, two timestamp variants.
        assert len(groups) == 1
        (variants,) = groups.values()
        assert len(variants) == 2
        counts = ms.embedding_counts()
        assert list(counts.values()) == [2]

    def test_vertices_involved(self, toy_matches):
        _, matches, vn = toy_matches
        ms = MatchSet(matches)
        expected = {vn[v] for v in ("v1", "v2", "v3", "v7", "v11")}
        assert ms.vertices_involved() == frozenset(expected)

    def test_time_range(self, toy_matches):
        _, matches, _ = toy_matches
        ms = MatchSet(matches)
        assert ms.time_range() == (1, 7)

    def test_summary(self, toy_matches):
        _, matches, _ = toy_matches
        text = MatchSet(matches).summary()
        assert "2 matches" in text
        assert "1 embeddings" in text
        assert "5 vertices" in text


class TestExport:
    def test_records_with_names(self, toy_matches):
        query, matches, vn = toy_matches
        inverse = {v: k for k, v in vn.items()}
        records = MatchSet(matches).to_records(
            query=query, vertex_names=inverse
        )
        assert len(records) == 2
        assert records[0]["vertices"][0] == "v1"
        assert records[0]["vertex_labels"] == list(query.labels)
        assert {"source", "target", "time"} <= set(records[0]["edges"][0])

    def test_save_json(self, toy_matches, tmp_path):
        _, matches, _ = toy_matches
        path = tmp_path / "matches.json"
        MatchSet(matches).save_json(path)
        with open(path) as handle:
            data = json.load(handle)
        assert len(data) == 2

    def test_save_csv(self, toy_matches, tmp_path):
        _, matches, _ = toy_matches
        path = tmp_path / "matches.csv"
        MatchSet(matches).save_csv(path)
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["vertices", "timestamps"]
        assert len(rows) == 3

    def test_save_csv_empty(self, tmp_path):
        path = tmp_path / "empty.csv"
        MatchSet().save_csv(path)
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows == [["vertices", "timestamps"]]
