"""Tests for the Temporal-Constraint Forest (Algorithm 3, lines 1-8)."""

import pytest

from repro.core import build_tcf
from repro.datasets import toy_constraints, toy_query
from repro.errors import QueryError
from repro.graphs import QueryGraph, TemporalConstraints


@pytest.fixture(scope="module")
def toy_tcf():
    query, _ = toy_query()
    return query, build_tcf(query, toy_constraints())


class TestToyForest:
    def test_expected_edges(self, toy_tcf):
        # From Example 4: N_e2-N_e1, N_e2-N_e3 (share u2/u1), N_e4-N_e7
        # (share u4), N_e6-N_e7 (share u5).  tc5 links e6 and e2 but they
        # share no vertex, so no forest edge.  0-based: e_i -> i-1.
        _, tcf = toy_tcf
        expected = {
            frozenset({1, 0}),
            frozenset({1, 2}),
            frozenset({3, 6}),
            frozenset({5, 6}),
        }
        assert tcf.edges == expected

    def test_trees(self, toy_tcf):
        _, tcf = toy_tcf
        assert tcf.tree_of(1) == frozenset({0, 1, 2})
        assert tcf.tree_of(6) == frozenset({3, 5, 6})
        assert tcf.tree_of(4) == frozenset({4})  # e5 is isolated

    def test_neighbors_sorted(self, toy_tcf):
        _, tcf = toy_tcf
        assert tcf.neighbors(1) == (0, 2)
        assert tcf.neighbors(6) == (3, 5)
        assert tcf.neighbors(4) == ()


class TestCycleAvoidance:
    def test_triangle_of_constraints_stays_acyclic(self):
        # Three mutually adjacent edges, three pairwise constraints: the
        # third forest edge would close a cycle and must be skipped.
        query = QueryGraph(
            ["A", "B", "C"], [(0, 1), (1, 2), (2, 0)]
        )
        tc = TemporalConstraints(
            [(0, 1, 5), (1, 2, 5), (2, 0, 5)], num_edges=3
        )
        tcf = build_tcf(query, tc)
        assert len(tcf.edges) == 2
        assert tcf.tree_of(0) == frozenset({0, 1, 2})

    def test_antiparallel_edges_single_forest_edge(self):
        # e0=(0,1), e1=(1,0) share both endpoints; the pair must yield one
        # forest edge, not two.
        query = QueryGraph(["A", "B"], [(0, 1), (1, 0)])
        tc = TemporalConstraints([(0, 1, 3)], num_edges=2)
        tcf = build_tcf(query, tc)
        assert tcf.edges == {frozenset({0, 1})}


class TestEdgeCases:
    def test_no_constraints_empty_forest(self):
        query = QueryGraph(["A", "B", "C"], [(0, 1), (1, 2)])
        tc = TemporalConstraints([], num_edges=2)
        tcf = build_tcf(query, tc)
        assert tcf.edges == frozenset()
        assert tcf.tree_of(0) == frozenset({0})

    def test_constraint_between_disjoint_edges_no_forest_edge(self):
        query = QueryGraph(["A", "B", "C", "D"], [(0, 1), (2, 3)])
        tc = TemporalConstraints([(0, 1, 5)], num_edges=2)
        tcf = build_tcf(query, tc)
        assert tcf.edges == frozenset()

    def test_mismatched_sizes_rejected(self):
        query = QueryGraph(["A", "B"], [(0, 1)])
        tc = TemporalConstraints([], num_edges=5)
        with pytest.raises(QueryError):
            build_tcf(query, tc)
