"""Tests for sampling-based cardinality estimation."""

import pytest

from repro.core import count_matches, estimate_match_count
from repro.datasets import random_instance, toy_instance


class TestEstimator:
    def test_exact_on_deterministic_tree(self):
        # When every layer has exactly one valid candidate, the estimator
        # is exact regardless of probe count.
        from repro.graphs import QueryGraph, TemporalConstraints, TemporalGraph

        query = QueryGraph(["A", "B", "C"], [(0, 1), (1, 2)])
        tc = TemporalConstraints([(0, 1, 5)], num_edges=2)
        graph = TemporalGraph(["A", "B", "C"], [(0, 1, 1), (1, 2, 3)])
        assert estimate_match_count(query, tc, graph, probes=5) == 1.0

    def test_zero_when_no_matches(self):
        from repro.graphs import QueryGraph, TemporalConstraints, TemporalGraph

        query = QueryGraph(["A", "B"], [(0, 1)])
        tc = TemporalConstraints([], num_edges=1)
        graph = TemporalGraph(["A", "B"], [(1, 0, 1)])  # wrong direction
        assert estimate_match_count(query, tc, graph, probes=10) == 0.0

    def test_toy_accuracy(self):
        query, tc, graph, _, _ = toy_instance()
        exact = count_matches(query, tc, graph)
        estimate = estimate_match_count(query, tc, graph, probes=400, seed=3)
        assert estimate == pytest.approx(exact, rel=0.5)

    @pytest.mark.parametrize("seed", range(5))
    def test_statistical_accuracy_on_random_instances(self, seed):
        query, tc, graph = random_instance(
            seed=seed, query_vertices=3, query_edges=3,
            num_constraints=2, data_vertices=8, data_edges=40,
        )
        exact = count_matches(query, tc, graph)
        estimate = estimate_match_count(
            query, tc, graph, probes=1500, seed=seed
        )
        if exact == 0:
            assert estimate == 0.0
        else:
            # 1500 probes: generous tolerance, tight enough to catch bias.
            assert estimate == pytest.approx(exact, rel=0.6)

    def test_deterministic_for_seed(self):
        query, tc, graph, _, _ = toy_instance()
        a = estimate_match_count(query, tc, graph, probes=50, seed=9)
        b = estimate_match_count(query, tc, graph, probes=50, seed=9)
        assert a == b

    def test_invalid_probe_count(self):
        query, tc, graph, _, _ = toy_instance()
        with pytest.raises(ValueError, match="probes"):
            estimate_match_count(query, tc, graph, probes=0)

    def test_pinned_seeded_values(self):
        # The window refactor (direct bisected windows replacing the old
        # per-candidate gap checks) must leave every layer's valid list —
        # order included — unchanged, which keeps the rng.choice stream
        # and therefore the seeded estimates *identical*.  These values
        # were captured from the pre-kernel implementation.
        query, tc, graph, _, _ = toy_instance()
        assert estimate_match_count(
            query, tc, graph, probes=50, seed=9
        ) == pytest.approx(1.98, rel=1e-12)
        assert estimate_match_count(
            query, tc, graph, probes=400, seed=3
        ) == pytest.approx(1.9725, rel=1e-12)

    PINNED = {
        1: 3.875,
        2: 4.491666666666666,
        3: 2.1,
        4: 0.9,
        7: 1.05,
        8: 6.65,
        9: 0.9166666666666666,
        10: 5.733333333333333,
        16: 1.1083333333333334,
        17: 2.05,
        20: 3.5,
        23: 9.066666666666666,
        26: 7.425,
        28: 0.8666666666666667,
        29: 2.1333333333333333,
    }

    @pytest.mark.parametrize("seed", sorted(PINNED))
    def test_pinned_values_on_random_instances(self, seed):
        query, tc, graph = random_instance(
            seed=seed, query_vertices=3, query_edges=3,
            num_constraints=1, max_gap=8, data_vertices=10, data_edges=60,
        )
        estimate = estimate_match_count(
            query, tc, graph, probes=120, seed=seed
        )
        assert estimate == pytest.approx(self.PINNED[seed], rel=1e-12)

    def test_unbiasedness_average_over_seeds(self):
        # The mean of many independent estimates should approach the
        # exact count much more tightly than any single estimate.
        query, tc, graph = random_instance(
            seed=77, query_vertices=3, query_edges=3,
            num_constraints=1, data_vertices=8, data_edges=40,
        )
        exact = count_matches(query, tc, graph)
        if exact == 0:
            pytest.skip("instance has no matches; nothing to average")
        estimates = [
            estimate_match_count(query, tc, graph, probes=300, seed=s)
            for s in range(10)
        ]
        mean = sum(estimates) / len(estimates)
        assert mean == pytest.approx(exact, rel=0.3)
