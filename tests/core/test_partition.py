"""Tests for root-seed partitioning and the engine's parallel hooks."""

import pytest

from repro.core import (
    MatchOptions,
    create_matcher,
    find_matches,
    supports_partition,
)
from repro.core.partition import (
    PARTITION_STRATEGIES,
    check_partition,
    check_partition_strategy,
    partition_slice,
)
from repro.datasets import toy_instance
from repro.errors import AlgorithmError

CORE_ALGORITHMS = ("brute-force", "tcsm-v2v", "tcsm-e2e", "tcsm-eve")


@pytest.fixture(scope="module")
def toy():
    return toy_instance()


class TestCheckPartition:
    @pytest.mark.parametrize("partition", [(0, 1), (0, 3), (2, 3)])
    def test_valid(self, partition):
        check_partition(partition)

    @pytest.mark.parametrize("partition", [(0, 0), (-1, 2), (2, 2), (3, 2)])
    def test_invalid(self, partition):
        with pytest.raises(AlgorithmError, match="partition"):
            check_partition(partition)


class TestPartitionSlice:
    def test_full_partition_is_sorted_identity(self):
        assert partition_slice({3, 1, 2}, (0, 1)) == [1, 2, 3]

    def test_slices_are_disjoint_and_exhaustive(self):
        population = set(range(17))
        slices = [partition_slice(population, (i, 4)) for i in range(4)]
        flattened = [item for piece in slices for item in piece]
        assert len(flattened) == len(population)
        assert set(flattened) == population

    def test_malformed_partition_rejected(self):
        with pytest.raises(AlgorithmError, match="pair"):
            partition_slice({2, 1}, None)  # type: ignore[arg-type]


class TestPartitionStrategies:
    @pytest.mark.parametrize("strategy", PARTITION_STRATEGIES)
    @pytest.mark.parametrize("count", (1, 2, 4, 7))
    def test_disjoint_and_exhaustive(self, strategy, count):
        population = set(range(23))
        slices = [
            partition_slice(
                population,
                (i, count),
                strategy=strategy,
                label_of=lambda v: v % 3,
            )
            for i in range(count)
        ]
        flattened = [item for piece in slices for item in piece]
        assert len(flattened) == len(population)
        assert set(flattened) == population

    def test_stride_interleaves(self):
        assert partition_slice(range(6), (0, 2), strategy="stride") == [
            0, 2, 4,
        ]
        assert partition_slice(range(6), (1, 2), strategy="stride") == [
            1, 3, 5,
        ]

    def test_range_is_contiguous(self):
        assert partition_slice(range(6), (0, 2), strategy="range") == [
            0, 1, 2,
        ]
        assert partition_slice(range(6), (1, 2), strategy="range") == [
            3, 4, 5,
        ]

    def test_label_groups_stay_together_when_they_fit(self):
        # Six vertices, two labels, two partitions: each partition is
        # one label's whole candidate group.
        label_of = {0: "a", 3: "a", 5: "a", 1: "b", 2: "b", 4: "b"}.get
        lo = partition_slice(
            range(6), (0, 2), strategy="label", label_of=label_of
        )
        hi = partition_slice(
            range(6), (1, 2), strategy="label", label_of=label_of
        )
        assert {label_of(v) for v in lo} == {"a"}
        assert {label_of(v) for v in hi} == {"b"}

    def test_unknown_strategy_rejected(self):
        with pytest.raises(AlgorithmError, match="strategy"):
            check_partition_strategy("zigzag")
        with pytest.raises(AlgorithmError, match="strategy"):
            MatchOptions(partition_strategy="zigzag")

    def test_strategy_discriminates_cache_hashes(self):
        hashes = {
            MatchOptions(
                partition=(0, 2), partition_strategy=s
            ).canonical_hash()
            for s in PARTITION_STRATEGIES
        }
        assert len(hashes) == len(PARTITION_STRATEGIES)


class TestStrategyEquivalence:
    """Every strategy partitions the *answer* identically: the union of
    the per-partition multisets is exactly the full run, for every TCSM
    algorithm."""

    @pytest.mark.parametrize("algo", CORE_ALGORITHMS)
    @pytest.mark.parametrize("strategy", PARTITION_STRATEGIES)
    @pytest.mark.parametrize("count", (2, 3))
    def test_union_equals_full_run(self, toy, algo, strategy, count):
        query, tc, graph, _, _ = toy
        full = find_matches(query, tc, graph, algorithm=algo)
        combined = []
        for index in range(count):
            part = find_matches(
                query, tc, graph, algorithm=algo,
                options=MatchOptions(
                    partition=(index, count),
                    partition_strategy=strategy,
                ),
            )
            combined.extend(part.matches)
        assert sorted(combined) == sorted(full.matches)


class TestEnginePartitioning:
    @pytest.mark.parametrize("algo", CORE_ALGORITHMS)
    @pytest.mark.parametrize("count", (2, 3))
    def test_partition_union_equals_full_run(self, toy, algo, count):
        query, tc, graph, _, _ = toy
        full = find_matches(query, tc, graph, algorithm=algo)
        combined = []
        for index in range(count):
            part = find_matches(
                query, tc, graph, algorithm=algo,
                options=MatchOptions(partition=(index, count)),
            )
            combined.extend(part.matches)
        assert sorted(combined) == sorted(full.matches)

    @pytest.mark.parametrize("algo", CORE_ALGORITHMS)
    def test_core_matchers_support_partition(self, toy, algo):
        query, tc, graph, _, _ = toy
        assert supports_partition(create_matcher(algo, query, tc, graph))

    def test_baseline_matchers_do_not(self, toy):
        query, tc, graph, _, _ = toy
        assert not supports_partition(
            create_matcher("ri-ds", query, tc, graph)
        )

    def test_partition_with_unsupporting_algorithm_raises(self, toy):
        query, tc, graph, _, _ = toy
        with pytest.raises(AlgorithmError, match="partition"):
            find_matches(
                query, tc, graph, algorithm="ri-ds",
                options=MatchOptions(partition=(0, 2)),
            )

    def test_invalid_partition_rejected_before_search(self, toy):
        query, tc, graph, _, _ = toy
        with pytest.raises(AlgorithmError):
            find_matches(
                query, tc, graph, options=MatchOptions(partition=(5, 2))
            )


class TestMatcherReuse:
    def test_prepared_matcher_reused_across_runs(self, toy):
        query, tc, graph, _, _ = toy
        matcher = create_matcher("tcsm-eve", query, tc, graph)
        first = find_matches(query, tc, graph, matcher=matcher)
        second = find_matches(query, tc, graph, matcher=matcher)
        assert first.matches == second.matches
        assert second.algorithm == "tcsm-eve"

    def test_reuse_ignores_algorithm_argument(self, toy):
        query, tc, graph, _, _ = toy
        matcher = create_matcher("tcsm-v2v", query, tc, graph)
        result = find_matches(
            query, tc, graph, algorithm="tcsm-eve", matcher=matcher
        )
        assert result.algorithm == "tcsm-v2v"


class TestOutcomeFlags:
    def test_zero_budget_sets_timed_out(self, toy):
        query, tc, graph, _, _ = toy
        result = find_matches(
            query, tc, graph, options=MatchOptions(time_budget=0.0)
        )
        assert result.timed_out
        assert not result.truncated
        assert result.stats.deadline_hit
        assert result.stats.budget_exhausted

    def test_limit_sets_truncated_not_timed_out(self, toy):
        query, tc, graph, _, _ = toy
        result = find_matches(
            query, tc, graph, options=MatchOptions(limit=1)
        )
        assert result.truncated
        assert not result.timed_out
        assert not result.stats.deadline_hit

    def test_unbounded_run_sets_neither(self, toy):
        query, tc, graph, _, _ = toy
        result = find_matches(query, tc, graph)
        assert not result.timed_out
        assert not result.truncated

    @pytest.mark.parametrize("algo", ("tcsm-v2v", "tcsm-e2e", "tcsm-eve"))
    def test_timed_out_across_algorithms(self, toy, algo):
        query, tc, graph, _, _ = toy
        result = find_matches(
            query, tc, graph, algorithm=algo,
            options=MatchOptions(time_budget=0.0),
        )
        assert result.timed_out

    def test_deadline_hit_merges_across_stats(self):
        from repro.core import SearchStats

        expired = SearchStats()
        expired.deadline_hit = True
        merged = SearchStats()
        merged.merge(expired)
        assert merged.deadline_hit
