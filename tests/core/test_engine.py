"""Tests for the matcher engine: registry, dispatch, budgets."""

import pytest

from repro.core import (
    MatchOptions,
    available_algorithms,
    count_matches,
    create_matcher,
    find_matches,
    register_algorithm,
)
from repro.core.engine import _REGISTRY
from repro.datasets import TOY_EXPECTED_MATCH_COUNT, toy_instance
from repro.errors import UnknownAlgorithmError


@pytest.fixture(scope="module")
def toy():
    return toy_instance()


class TestRegistry:
    def test_core_algorithms_available(self):
        algos = available_algorithms(include_baselines=False)
        for name in ("tcsm-v2v", "tcsm-e2e", "tcsm-eve", "brute-force"):
            assert name in algos

    def test_unknown_algorithm_raises_with_listing(self, toy):
        query, tc, graph, _, _ = toy
        with pytest.raises(UnknownAlgorithmError, match="available"):
            create_matcher("definitely-not-an-algo", query, tc, graph)

    def test_names_case_insensitive(self, toy):
        query, tc, graph, _, _ = toy
        matcher = create_matcher("TCSM-EVE", query, tc, graph)
        assert matcher.name == "tcsm-eve"

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_algorithm("tcsm-eve", lambda *a, **k: None)

    def test_overwrite_registration(self):
        original = _REGISTRY["tcsm-eve"]
        try:
            register_algorithm("tcsm-eve", original, overwrite=True)
        finally:
            _REGISTRY["tcsm-eve"] = original

    def test_overwrite_replaces_the_factory(self, toy):
        query, tc, graph, _, _ = toy
        sentinel = object()
        try:
            register_algorithm("temp-algo", lambda *a, **k: None)
            register_algorithm(
                "temp-algo", lambda *a, **k: sentinel, overwrite=True
            )
            assert create_matcher("temp-algo", query, tc, graph) is sentinel
        finally:
            _REGISTRY.pop("temp-algo", None)

    def test_unknown_algorithm_after_lazy_load_lists_everything(self, toy):
        """Once the baselines are loaded, a retried lookup must still fail
        cleanly — with the full (core + baseline) name listing."""
        query, tc, graph, _, _ = toy
        available_algorithms()  # force the lazy baseline import
        with pytest.raises(UnknownAlgorithmError) as excinfo:
            create_matcher("definitely-not-an-algo", query, tc, graph)
        message = str(excinfo.value)
        assert "tcsm-eve" in message
        assert "ri-ds" in message

    def test_available_without_baselines_stays_lazy(self):
        """include_baselines=False must not import the baselines package."""
        import subprocess
        import sys

        probe = (
            "import sys\n"
            "from repro.core import available_algorithms\n"
            "available_algorithms(include_baselines=False)\n"
            "assert not any(m.startswith('repro.baselines')"
            " for m in sys.modules), 'baselines imported eagerly'\n"
            "available_algorithms()\n"
            "assert 'repro.baselines' in sys.modules\n"
        )
        subprocess.run(
            [sys.executable, "-c", probe], check=True, timeout=60
        )


class TestFindMatches:
    def test_default_algorithm_is_eve(self, toy):
        query, tc, graph, _, _ = toy
        result = find_matches(query, tc, graph)
        assert result.algorithm == "tcsm-eve"
        assert result.num_matches == TOY_EXPECTED_MATCH_COUNT

    def test_count_matches(self, toy):
        query, tc, graph, _, _ = toy
        assert count_matches(query, tc, graph) == TOY_EXPECTED_MATCH_COUNT

    def test_options_forwarded(self, toy):
        query, tc, graph, _, _ = toy
        matcher = create_matcher(
            "tcsm-v2v", query, tc, graph, count_based_nlf=False
        )
        assert matcher.count_based_nlf is False

    def test_time_budget_zero_stops_early(self, toy):
        query, tc, graph, _, _ = toy
        result = find_matches(
            query, tc, graph, algorithm="tcsm-eve",
            options=MatchOptions(time_budget=0.0),
        )
        assert result.stats.budget_exhausted
        assert result.num_matches == 0

    def test_result_bookkeeping(self, toy):
        query, tc, graph, _, _ = toy
        result = find_matches(query, tc, graph, algorithm="tcsm-e2e")
        assert result.num_matches == len(result.matches)
        assert result.total_seconds == pytest.approx(
            result.build_seconds + result.match_seconds
        )
