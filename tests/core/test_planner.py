"""Cost-based planner tests (repro.core.planner).

The planner's hard guarantee is *conservatism*: ``plan="cost"`` may pick
a different matching order but never a different match multiset, and the
paper order — listed first among the scored candidates — wins every cost
tie, so ``plan="paper"`` stays bit-for-bit reproduction.  These tests
pin the knob validation, the statistics collection, determinism of the
candidate generators, the order→tables reconstruction against the
paper's own walks, and end-to-end result equality across plans.
"""

import pytest

from repro.core import (
    PLAN_CHOICES,
    MatchOptions,
    build_tcq,
    build_tcq_plus,
    candidate_edge_orders,
    candidate_vertex_orders,
    choose_edge_order,
    choose_vertex_order,
    find_matches,
    plan_costs,
    score_edge_order,
    score_vertex_order,
    tcq_from_order,
    tcq_plus_from_order,
    validate_plan,
)
from repro.core.planner import PlanCosts
from repro.datasets import random_instance, toy_instance
from repro.errors import AlgorithmError, QueryError
from repro.graphs import ensure_snapshot

ALGORITHMS = ("tcsm-v2v", "tcsm-e2e", "tcsm-eve")

#: Stand-in statistics for tests that only exercise order machinery.
NULL_COSTS = PlanCosts(0, 0, 0, 0)


class TestPlanKnob:
    def test_choices(self):
        assert PLAN_CHOICES == ("paper", "cost")
        for plan in PLAN_CHOICES:
            assert validate_plan(plan) == plan

    def test_unknown_plan_rejected(self):
        with pytest.raises(AlgorithmError, match="unknown plan"):
            validate_plan("greedy")

    def test_match_options_validate_plan(self):
        assert MatchOptions(plan="cost").plan == "cost"
        with pytest.raises(AlgorithmError, match="unknown plan"):
            MatchOptions(plan="bogus")

    def test_canonical_hash_discriminates_plan(self):
        paper = MatchOptions()
        cost = MatchOptions(plan="cost")
        assert paper.canonical_hash() != cost.canonical_hash()
        assert cost.canonical_hash() == MatchOptions(plan="cost").canonical_hash()

    def test_matchers_reject_unknown_plan(self):
        query, tc, graph = random_instance(seed=0)
        with pytest.raises(AlgorithmError, match="unknown plan"):
            find_matches(query, tc, graph, algorithm="tcsm-eve", plan="bogus")


class TestPlanCosts:
    def test_collected_from_snapshot(self):
        query, tc, graph, _, _ = toy_instance()
        view = ensure_snapshot(graph)
        costs = plan_costs(view)
        assert costs.num_vertices == view.num_vertices
        assert costs.num_static_edges == view.num_static_edges
        assert costs.num_temporal_edges == view.num_temporal_edges
        assert costs.time_span == view.time_span
        assert sum(costs.label_sizes.values()) == view.num_vertices

    def test_backends_collect_identical_costs(self):
        _, _, graph, _, _ = toy_instance()
        assert plan_costs(graph) == plan_costs(ensure_snapshot(graph))

    def test_derived_fractions(self):
        costs = PlanCosts(
            num_vertices=10,
            num_static_edges=20,
            num_temporal_edges=60,
            time_span=9,
            label_sizes={"A": 4, "B": 6},
        )
        assert costs.avg_out_degree == 2.0
        assert costs.avg_run_length == 3.0
        assert costs.pair_density == 0.2
        assert costs.label_fraction("A") == 0.4
        assert costs.label_fraction("Z") == pytest.approx(1e-6)
        assert costs.gap_fraction(4) == 0.5
        assert costs.gap_fraction(1000) == 1.0

    def test_no_label_histogram_means_no_selectivity(self):
        assert NULL_COSTS.label_fraction("anything") == 1.0


class TestCandidateOrders:
    @pytest.mark.parametrize("seed", range(5))
    def test_vertex_orders_are_permutations(self, seed):
        query, tc, _ = random_instance(seed=seed)
        for order in candidate_vertex_orders(query, tc, None):
            assert sorted(order) == list(range(query.num_vertices))

    @pytest.mark.parametrize("seed", range(5))
    def test_edge_orders_are_permutations(self, seed):
        query, tc, _ = random_instance(seed=seed)
        for order in candidate_edge_orders(query, tc, None):
            assert sorted(order) == list(range(query.num_edges))

    def test_generation_is_deterministic(self):
        query, tc, _ = random_instance(seed=3)
        first = candidate_vertex_orders(query, tc, None)
        assert first == candidate_vertex_orders(query, tc, None)
        assert candidate_edge_orders(query, tc, None) == candidate_edge_orders(
            query, tc, None
        )

    def test_scores_are_positive_and_deterministic(self):
        query, tc, graph = random_instance(seed=4)
        costs = plan_costs(ensure_snapshot(graph))
        for order in candidate_vertex_orders(query, tc, None):
            score = score_vertex_order(order, query, tc, None, costs)
            assert score > 0
            assert score == score_vertex_order(order, query, tc, None, costs)
        for order in candidate_edge_orders(query, tc, None):
            score = score_edge_order(order, query, tc, None, costs)
            assert score > 0
            assert score == score_edge_order(order, query, tc, None, costs)

    def test_extra_order_wins_ties(self):
        # With degenerate costs every order scores the same; the extra
        # (paper) order is listed first and min() is stable.
        query, tc, _ = random_instance(seed=5)
        paper_v = build_tcq(query, tc).order
        assert (
            choose_vertex_order(query, tc, None, NULL_COSTS, (paper_v,))
            == paper_v
        )
        paper_e = build_tcq_plus(query, tc).order
        assert (
            choose_edge_order(query, tc, None, NULL_COSTS, (paper_e,))
            == paper_e
        )


class TestOrderReconstruction:
    @pytest.mark.parametrize("seed", range(10))
    def test_tcq_from_paper_order_reproduces_tables(self, seed):
        query, tc, _ = random_instance(seed=seed)
        paper = build_tcq(query, tc)
        rebuilt = tcq_from_order(query, tc, paper.order)
        assert rebuilt == paper

    @pytest.mark.parametrize("seed", range(10))
    def test_tcq_plus_from_paper_order_reproduces_tables(self, seed):
        query, tc, _ = random_instance(seed=seed)
        paper = build_tcq_plus(query, tc)
        rebuilt = tcq_plus_from_order(query, tc, paper.order)
        assert rebuilt.order == paper.order
        assert rebuilt.position == paper.position
        assert rebuilt.prec == paper.prec
        assert rebuilt.forward == paper.forward
        assert rebuilt.check_at == paper.check_at
        assert rebuilt.new_vertices == paper.new_vertices
        assert rebuilt.tsup == paper.tsup

    def test_non_permutation_rejected(self):
        query, tc, _ = random_instance(seed=0)
        with pytest.raises(QueryError):
            tcq_from_order(query, tc, (0,) * query.num_vertices)
        with pytest.raises(QueryError):
            tcq_plus_from_order(query, tc, (0,) * query.num_edges)

    @pytest.mark.parametrize("seed", range(5))
    def test_cost_plan_builds_consistent_tables(self, seed):
        query, tc, graph = random_instance(seed=seed)
        costs = plan_costs(ensure_snapshot(graph))
        tcq = build_tcq(query, tc, plan="cost", costs=costs)
        assert sorted(tcq.order) == list(range(query.num_vertices))
        assert tcq == tcq_from_order(query, tc, tcq.order)
        tcq_plus = build_tcq_plus(query, tc, plan="cost", costs=costs)
        assert sorted(tcq_plus.order) == list(range(query.num_edges))
        # Every checkable constraint must be attributed exactly once.
        checked = [c for per_pos in tcq_plus.check_at for c in per_pos]
        assert sorted(checked) == sorted(tc)


class TestPlanEquivalence:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_cost_plan_preserves_match_multiset(self, algorithm, seed):
        query, tc, graph = random_instance(seed=seed)
        paper = find_matches(query, tc, graph, algorithm=algorithm)
        cost = find_matches(
            query, tc, graph, algorithm=algorithm,
            options=MatchOptions(plan="cost"),
        )
        assert sorted(paper.matches) == sorted(cost.matches)
        assert paper.stats.matches == cost.stats.matches

    def test_plan_knob_reaches_matcher_via_options(self):
        query, tc, graph = random_instance(
            seed=7, query_vertices=3, query_edges=4, num_constraints=2
        )
        direct = find_matches(
            query, tc, graph, algorithm="tcsm-e2e", plan="cost"
        )
        via_options = find_matches(
            query, tc, graph, algorithm="tcsm-e2e",
            options=MatchOptions(plan="cost"),
        )
        assert direct.matches == via_options.matches
        assert direct.stats == via_options.stats
