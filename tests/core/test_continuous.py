"""Tests for the continuous TCSM matcher (tcsm-stream)."""

import pytest

from repro.core import brute_force_matches, find_matches, is_valid_match
from repro.core.continuous import ContinuousTCSMMatcher
from repro.datasets import (
    TOY_EXPECTED_MATCH_COUNT,
    random_instance,
    toy_instance,
)


@pytest.fixture(scope="module")
def toy():
    return toy_instance()


class TestCorrectness:
    def test_toy_agrees(self, toy):
        query, tc, graph, _, _ = toy
        result = find_matches(query, tc, graph, algorithm="tcsm-stream")
        assert result.num_matches == TOY_EXPECTED_MATCH_COUNT
        for match in result.matches:
            assert is_valid_match(query, tc, graph, match)

    @pytest.mark.parametrize("seed", range(12))
    def test_differential_vs_oracle(self, seed):
        query, tc, graph = random_instance(seed=seed)
        oracle = set(brute_force_matches(query, tc, graph))
        got = set(
            find_matches(query, tc, graph, algorithm="tcsm-stream").matches
        )
        assert got == oracle

    @pytest.mark.parametrize("seed", range(6))
    def test_windows_off_agrees(self, seed):
        query, tc, graph = random_instance(seed=seed + 50)
        with_windows = set(
            find_matches(query, tc, graph, algorithm="tcsm-stream").matches
        )
        without = set(
            find_matches(
                query, tc, graph, algorithm="tcsm-stream", use_windows=False
            ).matches
        )
        assert with_windows == without

    def test_dense_timestamps(self):
        query, tc, graph = random_instance(
            seed=321, query_vertices=3, query_edges=3,
            num_constraints=2, data_vertices=6, data_edges=50, max_time=6,
        )
        oracle = set(brute_force_matches(query, tc, graph))
        got = set(
            find_matches(query, tc, graph, algorithm="tcsm-stream").matches
        )
        assert got == oracle


class TestPruningAdvantage:
    def test_fails_less_than_postfiltering_baseline(self, toy):
        # On the same stream, in-search TC pruning must reject candidates
        # earlier (fewer completed-but-invalid leaves) than graphflow's
        # leaf post-filter.
        query, tc, graph, _, _ = toy
        stream_result = find_matches(query, tc, graph, algorithm="tcsm-stream")
        graphflow_result = find_matches(query, tc, graph, algorithm="graphflow")
        assert stream_result.num_matches == graphflow_result.num_matches
        assert (
            stream_result.stats.nodes_expanded
            <= graphflow_result.stats.nodes_expanded
        )

    def test_windows_prune_at_scale(self):
        from repro.datasets import load_dataset, paper_constraints, paper_query

        graph = load_dataset("CM", scale=0.02, seed=1)
        query = paper_query(1)
        tc = paper_constraints(2, num_edges=query.num_edges, gap=3600)
        with_windows = find_matches(query, tc, graph, algorithm="tcsm-stream")
        without = find_matches(
            query, tc, graph, algorithm="tcsm-stream", use_windows=False
        )
        assert with_windows.stats.matches == without.stats.matches
        assert (
            with_windows.stats.nodes_expanded <= without.stats.nodes_expanded
        )


class TestRegistration:
    def test_registered_name(self, toy):
        query, tc, graph, _, _ = toy
        matcher = ContinuousTCSMMatcher(query, tc, graph)
        assert matcher.name == "tcsm-stream"

    def test_available_via_engine(self):
        from repro.core import available_algorithms

        assert "tcsm-stream" in available_algorithms()
