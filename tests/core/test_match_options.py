"""The consolidated options API: MatchOptions, RunContext, the legacy shim."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core import (
    MatchOptions,
    RunContext,
    SearchStats,
    count_matches,
    find_matches,
    resolve_run_context,
)
from repro.datasets import toy_instance
from repro.errors import AlgorithmError
from repro.obs import NULL_TRACER, Tracer

TCSM = ("tcsm-v2v", "tcsm-e2e", "tcsm-eve")


@pytest.fixture(scope="module")
def toy():
    return toy_instance()


class TestMatchOptions:
    def test_defaults(self):
        opts = MatchOptions()
        assert opts.limit is None
        assert opts.time_budget is None
        assert opts.tighten is False
        assert opts.collect_matches is True
        assert opts.partition is None
        assert opts.trace is False

    def test_frozen_and_hashable(self):
        opts = MatchOptions(limit=5)
        with pytest.raises(dataclasses.FrozenInstanceError):
            opts.limit = 6  # type: ignore[misc]
        assert opts in {MatchOptions(limit=5)}

    def test_negative_limit_rejected(self):
        with pytest.raises(AlgorithmError, match="limit"):
            MatchOptions(limit=-1)

    @pytest.mark.parametrize("partition", [(5, 2), (-1, 4), (0, 0), (2, 2)])
    def test_bad_partition_rejected(self, partition):
        with pytest.raises(AlgorithmError, match="partition"):
            MatchOptions(partition=partition)

    def test_replace_returns_modified_copy(self):
        opts = MatchOptions(limit=5, tighten=True)
        changed = opts.replace(collect_matches=False)
        assert changed.collect_matches is False
        assert changed.limit == 5 and changed.tighten is True
        assert opts.collect_matches is True  # original untouched

    def test_canonical_hash_is_stable_and_discriminating(self):
        base = MatchOptions(limit=5, tighten=True)
        assert base.canonical_hash() == MatchOptions(
            limit=5, tighten=True
        ).canonical_hash()
        distinct = {
            MatchOptions().canonical_hash(),
            MatchOptions(limit=5).canonical_hash(),
            MatchOptions(limit=5, tighten=True).canonical_hash(),
            MatchOptions(collect_matches=False).canonical_hash(),
            MatchOptions(partition=(0, 2)).canonical_hash(),
            MatchOptions(partition=(1, 2)).canonical_hash(),
        }
        assert len(distinct) == 6

    def test_canonical_hash_ignores_budget_and_trace(self):
        # The hash identifies the *answer*; wall clocks and observability
        # don't change it, so cached complete results stay shareable.
        assert (
            MatchOptions().canonical_hash()
            == MatchOptions(time_budget=1.5).canonical_hash()
            == MatchOptions(trace=True).canonical_hash()
        )


class TestRunContext:
    def test_defaults(self):
        ctx = RunContext()
        assert ctx.limit is None and ctx.deadline is None
        assert ctx.partition is None
        assert isinstance(ctx.stats, SearchStats)
        assert ctx.tracer is NULL_TRACER

    def test_with_partition_gets_fresh_stats(self):
        ctx = RunContext(limit=3, deadline=12.5)
        ctx.stats.matches = 9
        sliced = ctx.with_partition(1, 4)
        assert sliced.partition == (1, 4)
        assert sliced.limit == 3 and sliced.deadline == 12.5
        assert sliced.stats is not ctx.stats
        assert sliced.stats.matches == 0

    def test_resolve_passes_context_through(self):
        ctx = RunContext(limit=2)
        assert resolve_run_context(ctx) is ctx

    def test_resolve_folds_legacy_keywords(self):
        stats = SearchStats()
        with pytest.warns(DeprecationWarning, match="RunContext"):
            ctx = resolve_run_context(  # reprolint: disable=R018
                None, limit=4, stats=stats, deadline=1.0, partition=(0, 2)
            )
        assert ctx.limit == 4 and ctx.deadline == 1.0
        assert ctx.partition == (0, 2)
        assert ctx.stats is stats

    def test_resolve_rejects_context_plus_keywords(self):
        with pytest.raises(TypeError, match="not both"):
            resolve_run_context(RunContext(), limit=4)
        with pytest.raises(TypeError, match="not both"):
            resolve_run_context(RunContext(), stats=SearchStats())


class TestFindMatchesShim:
    """options= and the legacy keywords must be interchangeable."""

    @pytest.mark.parametrize("algo", TCSM)
    def test_equivalent_results(self, toy, algo):
        query, tc, graph, _, _ = toy
        via_options = find_matches(
            query, tc, graph, algorithm=algo,
            options=MatchOptions(limit=2, tighten=True),
        )
        with pytest.warns(DeprecationWarning, match="deprecated"):
            via_keywords = find_matches(  # reprolint: disable=R018
                query, tc, graph, algorithm=algo, limit=2, tighten=True
            )
        assert set(via_options.matches) == set(via_keywords.matches)
        assert via_options.stats.matches == via_keywords.stats.matches
        assert via_options.truncated == via_keywords.truncated

    def test_options_plus_legacy_keyword_is_an_error(self, toy):
        query, tc, graph, _, _ = toy
        with pytest.raises(TypeError, match="not both"):
            find_matches(  # reprolint: disable=R018
                query, tc, graph, options=MatchOptions(limit=2), limit=2
            )
        with pytest.raises(TypeError, match="not both"):
            find_matches(  # reprolint: disable=R018
                query, tc, graph, options=MatchOptions(), trace=True
            )

    @pytest.mark.parametrize("algo", TCSM)
    def test_num_matches_without_collection(self, toy, algo):
        # Regression: num_matches used to read len(matches) == 0 when
        # collect_matches=False even though the search found matches.
        query, tc, graph, _, _ = toy
        collected = find_matches(query, tc, graph, algorithm=algo)
        counted = find_matches(
            query, tc, graph, algorithm=algo,
            options=MatchOptions(collect_matches=False),
        )
        assert counted.matches == []
        assert counted.num_matches == collected.num_matches > 0

    def test_count_matches_accepts_options(self, toy):
        query, tc, graph, _, _ = toy
        baseline = count_matches(query, tc, graph)
        # collect_matches=True is overridden: counting never retains.
        assert count_matches(
            query, tc, graph, options=MatchOptions(collect_matches=True)
        ) == baseline
        with pytest.warns(DeprecationWarning, match="deprecated"):
            count = count_matches(  # reprolint: disable=R018
                query, tc, graph, limit=1
            )
        assert count == 1


class TestTraceOption:
    def test_untraced_run_has_no_trace(self, toy):
        query, tc, graph, _, _ = toy
        assert find_matches(query, tc, graph).trace is None

    def test_trace_option_returns_populated_tracer(self, toy):
        query, tc, graph, _, _ = toy
        result = find_matches(
            query, tc, graph, options=MatchOptions(tighten=True, trace=True)
        )
        tracer = result.trace
        assert isinstance(tracer, Tracer)
        names = {span.name for span in tracer.spans()}
        assert {"stn-closure", "prepare", "enumerate"} <= names
        assert any(name.startswith("candidate-filter:") for name in names)

    def test_explicit_tracer_is_used_and_returned(self, toy):
        query, tc, graph, _, _ = toy
        tracer = Tracer()
        result = find_matches(query, tc, graph, tracer=tracer)
        assert result.trace is tracer
        assert len(tracer) > 0
