"""Tests for temporal-motif counting as a TCSM special case."""

import pytest

from repro.core import count_motif, ordered_motif_constraints
from repro.errors import ConstraintError
from repro.graphs import QueryGraph, TemporalGraph


class TestOrderedMotifConstraints:
    def test_chain_structure(self):
        tc = ordered_motif_constraints(3, delta=10)
        pairs = {(c.earlier, c.later) for c in tc}
        assert pairs == {(0, 1), (1, 2), (0, 2)}
        assert all(c.gap == 10 for c in tc)

    def test_two_edges_no_duplicate(self):
        tc = ordered_motif_constraints(2, delta=5)
        assert len(tc) == 1
        assert tc[0] == (0, 1, 5)

    def test_custom_order(self):
        tc = ordered_motif_constraints(3, delta=7, order=[2, 0, 1])
        pairs = {(c.earlier, c.later) for c in tc}
        assert (2, 0) in pairs
        assert (0, 1) in pairs
        assert (2, 1) in pairs

    def test_invalid_order(self):
        with pytest.raises(ConstraintError, match="permutation"):
            ordered_motif_constraints(3, delta=5, order=[0, 0, 1])

    def test_negative_delta(self):
        with pytest.raises(ConstraintError, match="delta"):
            ordered_motif_constraints(2, delta=-1)

    def test_single_edge(self):
        tc = ordered_motif_constraints(1, delta=5)
        assert len(tc) == 0


class TestCountMotif:
    @pytest.fixture
    def triangle_graph(self):
        """Directed triangle with timestamps 1, 2, 3 plus a late edge."""
        return TemporalGraph(
            ["X", "X", "X"],
            [(0, 1, 1), (1, 2, 2), (2, 0, 3), (1, 2, 100)],
        )

    def test_ordered_triangle(self, triangle_graph):
        query = QueryGraph(["X", "X", "X"], [(0, 1), (1, 2), (2, 0)])
        # delta = 10: only the 1-2-3 combination fits; the rotations give
        # three automorphic embeddings, but the edge order constraint pins
        # the time sequence — count embeddings whose times rise in edge
        # order within 10.
        count = count_motif(query, triangle_graph, delta=10)
        assert count == 1

    def test_window_excludes_late_edge(self, triangle_graph):
        query = QueryGraph(["X", "X", "X"], [(0, 1), (1, 2), (2, 0)])
        assert count_motif(query, triangle_graph, delta=200) >= 1
        assert count_motif(query, triangle_graph, delta=0) == 0

    def test_matches_explicit_tcsm_formulation(self, triangle_graph):
        from repro.core import count_matches

        query = QueryGraph(["X", "X", "X"], [(0, 1), (1, 2), (2, 0)])
        tc = ordered_motif_constraints(3, delta=10)
        assert count_motif(query, triangle_graph, delta=10) == count_matches(
            query, tc, triangle_graph
        )

    def test_algorithm_selectable(self, triangle_graph):
        query = QueryGraph(["X", "X", "X"], [(0, 1), (1, 2), (2, 0)])
        for algo in ("tcsm-v2v", "tcsm-e2e", "brute-force"):
            assert count_motif(
                query, triangle_graph, delta=10, algorithm=algo
            ) == 1

    def test_m_shaped_motif(self):
        # The classic 2-node ping-pong motif: a->b then b->a within delta.
        graph = TemporalGraph(
            ["X", "X"],
            [(0, 1, 1), (1, 0, 2), (0, 1, 50), (1, 0, 51)],
        )
        query = QueryGraph(["X", "X"], [(0, 1), (1, 0)])
        # Within delta=5 the valid ordered pairs are (1, 2) and (50, 51);
        # the role-swapped embeddings fail the ordering (reply precedes
        # the ping), so exactly two occurrences remain.
        count = count_motif(query, graph, delta=5)
        assert count == 2
