"""Differential tests: every matcher vs the brute-force oracle.

A seeded corpus of random instances spanning query shapes (paths, dense
queries, antiparallel edges, multi-timestamp pairs, zero-gap constraints)
is run through TCSM-V2V/E2E/EVE and compared against the oracle match set
exactly (not just counts).
"""

import pytest

from repro.core import brute_force_matches, find_matches, is_valid_match
from repro.datasets import (
    random_constraints,
    random_instance,
    random_query,
    random_temporal_graph,
)
from repro.graphs import QueryGraph, TemporalConstraints, TemporalGraph

ALGORITHMS = ("tcsm-v2v", "tcsm-e2e", "tcsm-eve")


def assert_agreement(query, tc, graph):
    oracle = set(brute_force_matches(query, tc, graph))
    for algo in ALGORITHMS:
        result = find_matches(query, tc, graph, algorithm=algo)
        got = set(result.matches)
        assert got == oracle, (
            f"{algo}: {len(got)} matches vs oracle {len(oracle)}"
        )
        for match in result.matches:
            assert is_valid_match(query, tc, graph, match)


class TestRandomCorpus:
    @pytest.mark.parametrize("seed", range(20))
    def test_default_shape(self, seed):
        query, tc, graph = random_instance(seed=seed)
        assert_agreement(query, tc, graph)

    @pytest.mark.parametrize("seed", range(10))
    def test_dense_queries(self, seed):
        query, tc, graph = random_instance(
            seed=seed + 1000,
            query_vertices=4,
            query_edges=8,
            num_constraints=5,
            data_vertices=10,
            data_edges=70,
        )
        assert_agreement(query, tc, graph)

    @pytest.mark.parametrize("seed", range(10))
    def test_path_queries(self, seed):
        query, tc, graph = random_instance(
            seed=seed + 2000,
            query_vertices=5,
            query_edges=4,
            num_constraints=3,
            data_vertices=14,
            data_edges=50,
        )
        assert_agreement(query, tc, graph)

    @pytest.mark.parametrize("seed", range(10))
    def test_many_timestamps(self, seed):
        # Few vertices, many temporal edges -> heavy multiplicities, which
        # stresses V2V's joint timestamp enumeration.
        query, tc, graph = random_instance(
            seed=seed + 3000,
            query_vertices=3,
            query_edges=3,
            num_constraints=2,
            data_vertices=6,
            data_edges=60,
            max_time=8,
        )
        assert_agreement(query, tc, graph)

    @pytest.mark.parametrize("seed", range(10))
    def test_zero_gap_constraints(self, seed):
        labels = ("A", "B")
        query = random_query(4, 5, labels, seed=seed)
        tc = random_constraints(query, 3, max_gap=0, seed=seed)
        graph = random_temporal_graph(10, 60, labels, max_time=5, seed=seed)
        assert_agreement(query, tc, graph)

    @pytest.mark.parametrize("seed", range(6))
    def test_single_label(self, seed):
        # One label maximises symmetry / automorphisms.
        query, tc, graph = random_instance(
            seed=seed + 4000,
            query_vertices=3,
            query_edges=3,
            num_constraints=2,
            data_vertices=8,
            data_edges=30,
            num_labels=1,
        )
        assert_agreement(query, tc, graph)

    @pytest.mark.parametrize("seed", range(6))
    def test_no_constraints(self, seed):
        labels = ("A", "B", "C")
        query = random_query(4, 5, labels, seed=seed)
        tc = TemporalConstraints([], num_edges=query.num_edges)
        graph = random_temporal_graph(10, 50, labels, seed=seed)
        assert_agreement(query, tc, graph)


class TestHandCraftedShapes:
    def test_antiparallel_query_edges(self):
        query = QueryGraph(["A", "B"], [(0, 1), (1, 0)])
        tc = TemporalConstraints([(0, 1, 2)], num_edges=2)
        graph = TemporalGraph(
            ["A", "B", "A"],
            [(0, 1, 1), (1, 0, 2), (1, 0, 9), (2, 1, 4), (1, 2, 5)],
        )
        assert_agreement(query, tc, graph)

    def test_triangle_query(self):
        query = QueryGraph(["A", "B", "C"], [(0, 1), (1, 2), (2, 0)])
        tc = TemporalConstraints([(0, 1, 3), (1, 2, 3)], num_edges=3)
        graph = TemporalGraph(
            ["A", "B", "C", "B"],
            [
                (0, 1, 1), (1, 2, 3), (2, 0, 5),
                (0, 3, 2), (3, 2, 4),
            ],
        )
        assert_agreement(query, tc, graph)

    def test_star_query(self):
        # Hub with three out-spokes, constraints chain the spokes.
        query = QueryGraph(
            ["H", "S", "S", "S"], [(0, 1), (0, 2), (0, 3)]
        )
        tc = TemporalConstraints([(0, 1, 5), (1, 2, 5)], num_edges=3)
        graph = TemporalGraph(
            ["H", "S", "S", "S", "S"],
            [
                (0, 1, 1), (0, 2, 3), (0, 3, 6), (0, 4, 20),
                (0, 1, 9),
            ],
        )
        assert_agreement(query, tc, graph)

    def test_no_matches_label_absent(self):
        query = QueryGraph(["Z", "B"], [(0, 1)])
        tc = TemporalConstraints([], num_edges=1)
        graph = TemporalGraph(["A", "B"], [(0, 1, 1)])
        assert_agreement(query, tc, graph)

    def test_structure_present_but_constraints_kill_everything(self):
        query = QueryGraph(["A", "B", "C"], [(0, 1), (1, 2)])
        tc = TemporalConstraints([(0, 1, 1)], num_edges=2)
        # Edge times 10 and 100: gap 90 > 1.
        graph = TemporalGraph(["A", "B", "C"], [(0, 1, 10), (1, 2, 100)])
        assert_agreement(query, tc, graph)

    def test_query_larger_than_data(self):
        query = QueryGraph(["A"] * 5, [(i, i + 1) for i in range(4)])
        tc = TemporalConstraints([], num_edges=4)
        graph = TemporalGraph(["A", "A"], [(0, 1, 1)])
        assert_agreement(query, tc, graph)

    def test_disconnected_query(self):
        query = QueryGraph(
            ["A", "B", "C", "D"], [(0, 1), (2, 3)]
        )
        tc = TemporalConstraints([(0, 1, 4)], num_edges=2)
        graph = TemporalGraph(
            ["A", "B", "C", "D", "C"],
            [(0, 1, 3), (2, 3, 5), (4, 3, 9), (0, 1, 8)],
        )
        assert_agreement(query, tc, graph)
