"""Per-filter pruning counters: sum-consistency and filter chaining.

These are the live counters Exp-9's pruning tables regenerate from, so
two invariants are pinned here:

* **sum-consistency** — for every bucket,
  ``survivors == considered - pruned`` and all three are non-negative;
* **chaining** — consecutive filters on the same candidate stream hand
  survivors downstream, so the later filter's ``considered`` equals the
  earlier one's ``survivors``.
"""

from __future__ import annotations

import pytest

from repro.core import FilterStats, MatchOptions, SearchStats, find_matches
from repro.datasets import toy_instance

TCSM = ("tcsm-v2v", "tcsm-e2e", "tcsm-eve")


@pytest.fixture(scope="module")
def toy():
    return toy_instance()


def _stats(toy, algo):
    query, tc, graph, _, _ = toy
    return find_matches(query, tc, graph, algorithm=algo).stats


class TestFilterStats:
    def test_survivors_is_derived(self):
        bucket = FilterStats(considered=10, pruned=3)
        assert bucket.survivors == 7
        assert bucket.as_dict() == {
            "considered": 10, "pruned": 3, "survivors": 7
        }

    def test_merge_adds_counts(self):
        left = FilterStats(considered=10, pruned=3)
        left.merge(FilterStats(considered=5, pruned=5))
        assert left.as_dict() == {
            "considered": 15, "pruned": 8, "survivors": 7
        }

    def test_search_stats_filter_is_get_or_create(self):
        stats = SearchStats()
        bucket = stats.filter("ldf")
        assert stats.filter("ldf") is bucket
        bucket.considered += 1
        assert stats.filter_summary() == {
            "ldf": {"considered": 1, "pruned": 0, "survivors": 1}
        }

    def test_search_stats_merge_merges_buckets(self):
        left, right = SearchStats(), SearchStats()
        left.filter("temporal").considered = 4
        right.filter("temporal").pruned = 2
        right.filter("temporal").considered = 4
        right.filter("vmatch").considered = 1
        right.timestamps_expanded = 9
        left.merge(right)
        assert left.filter("temporal").as_dict() == {
            "considered": 8, "pruned": 2, "survivors": 6
        }
        assert left.filter("vmatch").considered == 1
        assert left.timestamps_expanded == 9


class TestLiveCounters:
    """The counters the matchers actually emit on the toy instance."""

    EXPECTED_FILTERS = {
        "tcsm-v2v": {"nlf", "intersect", "injectivity", "structure",
                     "temporal", "timestamp-join"},
        "tcsm-e2e": {"ldf", "injectivity", "temporal"},
        "tcsm-eve": {"ldf", "injectivity", "temporal", "vmatch"},
        "ri": {"domains", "injectivity", "structure", "temporal-postfilter"},
    }

    @pytest.mark.parametrize("algo", sorted(EXPECTED_FILTERS))
    def test_expected_buckets_present_and_active(self, toy, algo):
        stats = _stats(toy, algo)
        assert set(stats.filters) == self.EXPECTED_FILTERS[algo]
        for name, row in stats.filter_summary().items():
            assert row["considered"] > 0, name
            assert row["survivors"] == row["considered"] - row["pruned"]
            assert 0 <= row["pruned"] <= row["considered"]

    @pytest.mark.parametrize("algo", sorted(EXPECTED_FILTERS))
    def test_timestamps_expanded_counted(self, toy, algo):
        assert _stats(toy, algo).timestamps_expanded > 0

    @pytest.mark.parametrize("algo", ("tcsm-e2e", "tcsm-eve"))
    def test_edge_based_filter_chain(self, toy, algo):
        stats = _stats(toy, algo)
        filters = stats.filters
        # injectivity -> temporal (-> vmatch for EVE) examine one stream.
        assert (
            filters["temporal"].considered == filters["injectivity"].survivors
        )
        if algo == "tcsm-eve":
            assert (
                filters["vmatch"].considered == filters["temporal"].survivors
            )

    def test_v2v_filter_chain(self, toy):
        filters = _stats(toy, "tcsm-v2v").filters
        chain = ("intersect", "injectivity", "structure", "temporal")
        for earlier, later in zip(chain, chain[1:]):
            assert filters[later].considered == filters[earlier].survivors, (
                f"{later}.considered != {earlier}.survivors"
            )

    def test_ri_filter_chain(self, toy):
        filters = _stats(toy, "ri").filters
        assert (
            filters["structure"].considered
            == filters["injectivity"].survivors
        )

    def test_csm_baseline_counts_temporal_postfilter(self, toy):
        stats = _stats(toy, "graphflow")
        post = stats.filters["temporal-postfilter"]
        assert post.considered > 0
        assert post.survivors == stats.matches

    def test_brute_force_oracle_stays_plain(self, toy):
        # The oracle is the ground truth; it deliberately runs no filters.
        assert _stats(toy, "brute-force").filters == {}

    @pytest.mark.parametrize("algo", TCSM)
    def test_partitioned_counters_cover_the_full_run(self, toy, algo):
        query, tc, graph, _, _ = toy
        full = _stats(toy, algo)
        merged = SearchStats()
        for index in range(3):
            part = find_matches(
                query, tc, graph, algorithm=algo,
                options=MatchOptions(partition=(index, 3)),
            )
            merged.merge(part.stats)
        # Run-time filters see every candidate exactly once across slices.
        for name in ("injectivity", "temporal"):
            if name in full.filters:
                assert (
                    merged.filters[name].considered
                    == full.filters[name].considered
                ), name
        assert merged.matches == full.matches
