"""Tests for the TCQ/TCQ+ text renderers."""

import pytest

from repro.core import build_tcq, build_tcq_plus
from repro.core.render import render_tcq, render_tcq_plus
from repro.datasets import toy_constraints, toy_query


@pytest.fixture(scope="module")
def toy():
    query, _ = toy_query()
    return query, toy_constraints()


class TestRenderTCQ:
    def test_sections_present(self, toy):
        query, tc = toy
        text = render_tcq(build_tcq(query, tc), query)
        for section in ("TO =", "PD =", "FV =", "TC =", "tsup ="):
            assert section in text

    def test_paper_notation(self, toy):
        query, tc = toy
        text = render_tcq(build_tcq(query, tc), query)
        # 1-based names as in the paper.
        assert "u2" in text
        assert "u0" not in text
        # Seed vertex leads TO.
        assert "1:u2" in text


class TestRenderTCQPlus:
    def test_sections_present(self, toy):
        query, tc = toy
        text = render_tcq_plus(build_tcq_plus(query, tc), query)
        for section in ("TO =", "PD =", "FE =", "TC =", "new vertices ="):
            assert section in text

    def test_matches_figure_6(self, toy):
        query, tc = toy
        text = render_tcq_plus(build_tcq_plus(query, tc), query)
        # The paper's order e2, e1, e3, e6, e7, e4, e5.
        assert "1:e2, 2:e1, 3:e3, 4:e6, 5:e7, 6:e4, 7:e5" in text
        # FE of Figure 6: e4:{e2}, e5:{e7}.
        assert "e4:{e2}" in text
        assert "e5:{e7}" in text
