"""Tests for TCQ construction (Algorithm 1)."""

import pytest

from repro.core import build_tcq, vertex_tsup
from repro.datasets import random_constraints, random_query, toy_constraints, toy_query
from repro.errors import QueryError
from repro.graphs import QueryGraph, TemporalConstraints


@pytest.fixture(scope="module")
def toy():
    query, names = toy_query()
    return query, toy_constraints(), names


class TestTsup:
    def test_toy_values(self, toy):
        query, tc, names = toy
        tsup = vertex_tsup(query, tc)
        # Derived by hand from the five constraints (see DESIGN.md note on
        # the paper's off-by-one example arithmetic).
        assert tsup[names["u1"]] == 4
        assert tsup[names["u2"]] == 6
        assert tsup[names["u3"]] == 3
        assert tsup[names["u4"]] == 3
        assert tsup[names["u5"]] == 4

    def test_no_constraints_all_zero(self):
        query = QueryGraph(["A", "B"], [(0, 1)])
        tc = TemporalConstraints([], num_edges=1)
        assert vertex_tsup(query, tc) == [0, 0]


class TestToyOrder:
    def test_seed_is_u2(self, toy):
        query, tc, names = toy
        tcq = build_tcq(query, tc)
        assert tcq.order[0] == names["u2"]

    def test_paper_order_with_candidate_tiebreak(self, toy):
        # Example 2's order u2, u1, u4, u5, u3 requires the fewest-candidates
        # tie-break to favour u4 over u3.
        query, tc, names = toy
        counts = [0] * query.num_vertices
        counts[names["u3"]] = 5
        counts[names["u4"]] = 2
        tcq = build_tcq(query, tc, candidate_counts=counts)
        expected = [names[n] for n in ("u2", "u1", "u4", "u5", "u3")]
        assert list(tcq.order) == expected

    def test_prec_matches_paper(self, toy):
        query, tc, names = toy
        counts = [0] * query.num_vertices
        counts[names["u3"]] = 5
        counts[names["u4"]] = 2
        tcq = build_tcq(query, tc, candidate_counts=counts)
        # Figure 4: u1's prec is u2; u4's prec is u2; u5's prec is u4 (the
        # earliest ordered neighbour); u3's prec is u2.
        by_vertex = {
            tcq.order[pos]: tcq.prec[pos] for pos in range(len(tcq.order))
        }
        assert by_vertex[names["u1"]] == names["u2"]
        assert by_vertex[names["u4"]] == names["u2"]
        assert by_vertex[names["u5"]] == names["u4"]
        assert by_vertex[names["u3"]] == names["u2"]

    def test_forward_vertices_complete_coverage(self, toy):
        # Every query edge must be covered by prec or FV at the later
        # endpoint's position — this is what makes V2V structurally sound.
        query, tc, names = toy
        tcq = build_tcq(query, tc)
        covered = set()
        for pos, u in enumerate(tcq.order):
            links = set(tcq.forward[pos])
            if tcq.prec[pos] is not None:
                links.add(tcq.prec[pos])
            for w in links:
                for pair in ((u, w), (w, u)):
                    if query.has_edge(*pair):
                        covered.add(pair)
        assert covered == set(query.edges)


class TestOrderInvariants:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_queries(self, seed):
        labels = ("A", "B", "C")
        query = random_query(5, 7, labels, seed=seed)
        tc = random_constraints(query, 4, 10, seed=seed)
        tcq = build_tcq(query, tc)
        # Order is a permutation.
        assert sorted(tcq.order) == list(range(query.num_vertices))
        # position is the inverse of order.
        for pos, u in enumerate(tcq.order):
            assert tcq.position[u] == pos
        # prec of each non-seed vertex is ordered earlier and adjacent.
        for pos in range(1, len(tcq.order)):
            u = tcq.order[pos]
            p = tcq.prec[pos]
            if p is not None:
                assert tcq.position[p] < pos
                assert p in query.neighbors(u)
            for w in tcq.forward[pos]:
                assert tcq.position[w] < pos
                assert w in query.neighbors(u)
                assert w != p

    def test_connected_query_has_precs_everywhere(self):
        query = random_query(6, 8, ("A", "B"), seed=3)
        tc = random_constraints(query, 3, 5, seed=3)
        tcq = build_tcq(query, tc)
        assert tcq.prec[0] is None
        assert all(p is not None for p in tcq.prec[1:])

    def test_disconnected_query_gets_none_precs(self):
        query = QueryGraph(["A", "B", "C", "D"], [(0, 1), (2, 3)])
        tc = TemporalConstraints([(0, 1, 5)], num_edges=2)
        tcq = build_tcq(query, tc)
        none_count = sum(1 for p in tcq.prec if p is None)
        assert none_count == 2  # one per component


class TestCheckAt:
    def test_every_constraint_assigned_exactly_once(self, toy):
        query, tc, _ = toy
        tcq = build_tcq(query, tc)
        placed = [c for cs in tcq.check_at for c in cs]
        assert sorted(placed) == sorted(tc.constraints)

    def test_constraint_checkable_at_position(self, toy):
        # At its check position, all four endpoint vertices are ordered
        # at or before that position.
        query, tc, _ = toy
        tcq = build_tcq(query, tc)
        for pos, constraints in enumerate(tcq.check_at):
            for c in constraints:
                for edge_index in (c.earlier, c.later):
                    for u in query.edge(edge_index):
                        assert tcq.position[u] <= pos


class TestValidation:
    def test_mismatched_constraints_rejected(self):
        query = QueryGraph(["A", "B"], [(0, 1)])
        tc = TemporalConstraints([(0, 1, 3)], num_edges=2)
        with pytest.raises(QueryError, match="constraints built for"):
            build_tcq(query, tc)
