"""Tests for Match objects and first-principles validation."""

import pytest

from repro.core import Match, brute_force_matches, is_valid_match
from repro.datasets import toy_instance
from repro.graphs import TemporalEdge


@pytest.fixture(scope="module")
def toy():
    return toy_instance()


@pytest.fixture(scope="module")
def valid_match(toy):
    query, tc, graph, _, _ = toy
    matches = brute_force_matches(query, tc, graph)
    assert matches
    return matches[0]


class TestMatchType:
    def test_from_vertex_map(self, toy):
        query, _, _, qn, vn = toy
        vertex_map = [0] * query.num_vertices
        vertex_map[qn["u1"]] = vn["v1"]
        vertex_map[qn["u2"]] = vn["v2"]
        vertex_map[qn["u3"]] = vn["v3"]
        vertex_map[qn["u4"]] = vn["v7"]
        vertex_map[qn["u5"]] = vn["v11"]
        times = [6, 3, 5, 6, 3, 1, 7]
        match = Match.from_vertex_map(query, vertex_map, times)
        assert match.timestamp_vector() == tuple(times)
        # Edge 0 is u1 -> u2.
        assert match.edge_map[0] == TemporalEdge(vn["v1"], vn["v2"], 6)

    def test_hashable_and_comparable(self, valid_match):
        assert hash(valid_match) == hash(
            Match(valid_match.edge_map, valid_match.vertex_map)
        )
        assert valid_match == Match(valid_match.edge_map, valid_match.vertex_map)


class TestIsValidMatch:
    def test_oracle_matches_are_valid(self, toy):
        query, tc, graph, _, _ = toy
        for match in brute_force_matches(query, tc, graph):
            assert is_valid_match(query, tc, graph, match)

    def test_wrong_arity_edge_map(self, toy, valid_match):
        query, tc, graph, _, _ = toy
        broken = Match(valid_match.edge_map[:-1], valid_match.vertex_map)
        assert not is_valid_match(query, tc, graph, broken)

    def test_wrong_arity_vertex_map(self, toy, valid_match):
        query, tc, graph, _, _ = toy
        broken = Match(valid_match.edge_map, valid_match.vertex_map[:-1])
        assert not is_valid_match(query, tc, graph, broken)

    def test_non_injective_vertex_map(self, toy, valid_match):
        query, tc, graph, _, _ = toy
        vm = list(valid_match.vertex_map)
        vm[0] = vm[1]
        broken = Match(valid_match.edge_map, tuple(vm))
        assert not is_valid_match(query, tc, graph, broken)

    def test_label_mismatch(self, toy, valid_match):
        query, tc, graph, _, vn = toy
        vm = list(valid_match.vertex_map)
        vm[0] = vn["v2"]  # u1 has label A; v2 has label B
        broken = Match(valid_match.edge_map, tuple(vm))
        assert not is_valid_match(query, tc, graph, broken)

    def test_vertex_out_of_range(self, toy, valid_match):
        query, tc, graph, _, _ = toy
        vm = list(valid_match.vertex_map)
        vm[0] = graph.num_vertices + 5
        broken = Match(valid_match.edge_map, tuple(vm))
        assert not is_valid_match(query, tc, graph, broken)

    def test_edge_endpoint_inconsistent_with_vertex_map(self, toy, valid_match):
        query, tc, graph, _, vn = toy
        em = list(valid_match.edge_map)
        em[0] = TemporalEdge(vn["v3"], em[0].v, em[0].t)
        broken = Match(tuple(em), valid_match.vertex_map)
        assert not is_valid_match(query, tc, graph, broken)

    def test_nonexistent_timestamp(self, toy, valid_match):
        query, tc, graph, _, _ = toy
        em = list(valid_match.edge_map)
        em[0] = TemporalEdge(em[0].u, em[0].v, 99999)
        broken = Match(tuple(em), valid_match.vertex_map)
        assert not is_valid_match(query, tc, graph, broken)

    def test_constraint_violation(self):
        # Fresh instance (we mutate the graph): give edge e6 an extra
        # timestamp 9 so the structural match exists but violates tc5
        # (t_e2 - t_e6 = 3 - 9 < 0).
        from repro.datasets import toy_instance as fresh_toy

        query, tc, graph, _, _ = fresh_toy()
        match = brute_force_matches(query, tc, graph)[0]
        em = list(match.edge_map)
        graph.add_edge(em[5].u, em[5].v, 9)
        em[5] = TemporalEdge(em[5].u, em[5].v, 9)
        broken = Match(tuple(em), match.vertex_map)
        assert not is_valid_match(query, tc, graph, broken)
