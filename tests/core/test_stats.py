"""Tests for SearchStats bookkeeping."""

from repro.core import SearchStats


class TestRecordFail:
    def test_counts_and_layers(self):
        stats = SearchStats()
        stats.record_fail(3)
        stats.record_fail(3)
        stats.record_fail(1)
        assert stats.failed_enumerations == 3
        assert stats.fail_layers == {3: 2, 1: 1}

    def test_first_fail_layer_tracks_minimum(self):
        stats = SearchStats()
        assert stats.first_fail_layer is None
        stats.record_fail(5)
        assert stats.first_fail_layer == 5
        stats.record_fail(2)
        assert stats.first_fail_layer == 2
        stats.record_fail(9)
        assert stats.first_fail_layer == 2


class TestMerge:
    def test_counters_accumulate(self):
        a = SearchStats(candidates_generated=5, validations=3, matches=1)
        b = SearchStats(candidates_generated=2, validations=4, matches=2)
        b.record_fail(2)
        a.merge(b)
        assert a.candidates_generated == 7
        assert a.validations == 7
        assert a.matches == 3
        assert a.failed_enumerations == 1
        assert a.fail_layers == {2: 1}

    def test_first_fail_layer_minimum_wins(self):
        a = SearchStats()
        a.record_fail(4)
        b = SearchStats()
        b.record_fail(2)
        a.merge(b)
        assert a.first_fail_layer == 2
        c = SearchStats()
        c.record_fail(9)
        a.merge(c)
        assert a.first_fail_layer == 2

    def test_merge_into_empty(self):
        a = SearchStats()
        b = SearchStats()
        b.record_fail(3)
        a.merge(b)
        assert a.first_fail_layer == 3

    def test_budget_flag_sticky(self):
        a = SearchStats(budget_exhausted=True)
        a.merge(SearchStats())
        assert a.budget_exhausted
        b = SearchStats()
        b.merge(SearchStats(budget_exhausted=True))
        assert b.budget_exhausted
