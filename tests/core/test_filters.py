"""Tests for the NLF and LDF candidate filters."""

import pytest

from repro.core import (
    initial_edge_candidate_pairs,
    initial_vertex_candidates,
    ldf,
    nlf,
)
from repro.core.bruteforce import brute_force_matches
from repro.datasets import toy_instance
from repro.graphs import QueryGraph, TemporalGraph


@pytest.fixture(scope="module")
def toy():
    return toy_instance()


class TestNLF:
    @pytest.fixture
    def setup(self):
        # Query: A -> B with B having an A-neighbour requirement.
        query = QueryGraph(["A", "B"], [(0, 1)])
        graph = TemporalGraph(
            ["A", "B", "B", "A"],
            [(0, 1, 1), (3, 2, 1), (0, 2, 2)],
        )
        return query, graph, graph.de_temporal()

    def test_label_mismatch(self, setup):
        query, _, data = setup
        assert not nlf(query, data, 0, 1)  # query A vs data B

    def test_degree_dominance(self, setup):
        query, _, data = setup
        # Query vertex 0 has out-degree 1; data vertex 3 has out-degree 1.
        assert nlf(query, data, 0, 3)

    def test_out_degree_too_small(self):
        query = QueryGraph(["A", "B", "B"], [(0, 1), (0, 2)])
        graph = TemporalGraph(["A", "B", "B"], [(0, 1, 1)])
        data = graph.de_temporal()
        # Data vertex 0 has out-degree 1 < query out-degree 2.
        assert not nlf(query, data, 0, 0)

    def test_in_degree_too_small(self):
        query = QueryGraph(["A", "B"], [(1, 0)])
        graph = TemporalGraph(["A", "B"], [(0, 1, 1)])
        data = graph.de_temporal()
        assert not nlf(query, data, 0, 0)  # needs in-degree >= 1

    def test_neighbor_label_containment(self):
        query = QueryGraph(["A", "B", "C"], [(0, 1), (0, 2)])
        # Data vertex 0: neighbours labeled B only -> C requirement fails.
        graph = TemporalGraph(["A", "B", "B"], [(0, 1, 1), (0, 2, 1)])
        assert not nlf(query, graph.de_temporal(), 0, 0)

    def test_count_based_passes_when_counts_suffice(self):
        # Query vertex 0 needs two distinct B-neighbours.
        query = QueryGraph(["A", "B", "B"], [(0, 1), (0, 2)])
        graph = TemporalGraph(
            ["A", "B", "B"], [(0, 1, 1), (1, 0, 2), (0, 2, 3)]
        )
        data = graph.de_temporal()
        assert nlf(query, data, 0, 0, count_based=True)

    def test_set_vs_count_divergence_explicit(self):
        query = QueryGraph(["A", "B", "B"], [(0, 1), (0, 2)])
        # Data vertex 0 with out-neighbours: one B, one C (degree ok).
        graph = TemporalGraph(["A", "B", "C"], [(0, 1, 1), (0, 2, 2)])
        data = graph.de_temporal()
        assert nlf(query, data, 0, 0, count_based=False)
        assert not nlf(query, data, 0, 0, count_based=True)


class TestInitialVertexCandidates:
    def test_toy_candidates_cover_red_match(self, toy):
        query, tc, graph, qn, vn = toy
        candidates = initial_vertex_candidates(query, graph)
        red = {
            "u1": "v1", "u2": "v2", "u3": "v3", "u4": "v7", "u5": "v11",
        }
        for qname, vname in red.items():
            assert vn[vname] in candidates[qn[qname]]

    def test_candidates_never_prune_oracle_matches(self):
        from repro.datasets import random_instance

        for seed in range(8):
            query, tc, graph = random_instance(seed=seed)
            candidates = initial_vertex_candidates(query, graph)
            for match in brute_force_matches(query, tc, graph, limit=50):
                for u in query.vertices():
                    assert match.vertex_map[u] in candidates[u]

    def test_label_restriction(self, toy):
        query, tc, graph, qn, vn = toy
        candidates = initial_vertex_candidates(query, graph)
        for u in query.vertices():
            for v in candidates[u]:
                assert graph.label(v) == query.label(u)


class TestLDF:
    def test_label_checks(self, toy):
        query, tc, graph, qn, vn = toy
        data = graph.de_temporal()
        # Query edge 0 is u1(A) -> u2(B); pair (v1, v2) is (A, B).
        assert ldf(query, data, 0, vn["v1"], vn["v2"])
        # Pair with wrong source label.
        assert not ldf(query, data, 0, vn["v2"], vn["v1"])

    def test_degree_conditions(self):
        query = QueryGraph(["A", "B"], [(0, 1)])
        # Query: source needs out>=1; target needs in>=1.
        graph = TemporalGraph(["A", "B", "A"], [(0, 1, 1), (2, 1, 2)])
        data = graph.de_temporal()
        assert ldf(query, data, 0, 0, 1)
        assert ldf(query, data, 0, 2, 1)

    def test_pairs_never_prune_oracle_matches(self):
        from repro.datasets import random_instance

        for seed in range(8):
            query, tc, graph = random_instance(seed=seed)
            pair_sets = initial_edge_candidate_pairs(query, graph)
            for match in brute_force_matches(query, tc, graph, limit=50):
                for i, edge in enumerate(match.edge_map):
                    assert (edge.u, edge.v) in pair_sets[i]

    def test_toy_pairs_cover_red_match(self, toy):
        query, tc, graph, qn, vn = toy
        pair_sets = initial_edge_candidate_pairs(query, graph)
        red_edges = {
            0: ("v1", "v2"), 1: ("v2", "v1"), 2: ("v2", "v3"),
            3: ("v2", "v7"), 4: ("v7", "v3"), 5: ("v3", "v11"),
            6: ("v11", "v7"),
        }
        for index, (a, b) in red_edges.items():
            assert (vn[a], vn[b]) in pair_sets[index]
