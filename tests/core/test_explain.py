"""Tests for match explanations and constraint slack."""

import pytest

from repro.core import (
    Match,
    constraint_slack,
    explain_match,
    find_matches,
)
from repro.datasets import toy_instance


@pytest.fixture(scope="module")
def toy():
    query, tc, graph, qn, vn = toy_instance()
    match = find_matches(query, tc, graph, algorithm="tcsm-eve").matches[0]
    return query, tc, graph, qn, vn, match


class TestConstraintSlack:
    def test_values(self, toy):
        query, tc, graph, _, _, match = toy
        report = constraint_slack(tc, match)
        assert len(report) == len(tc)
        times = match.timestamp_vector()
        for index, delta, slack in report:
            c = tc[index]
            assert delta == times[c.later] - times[c.earlier]
            assert slack == c.gap - delta
            assert 0 <= delta <= c.gap  # the match is valid

    def test_tight_constraint_zero_slack(self, toy):
        query, tc, graph, _, _, match = toy
        # tc1 = (1, 0, 3): the red match realises delta = 3 -> slack 0.
        report = {index: slack for index, _, slack in constraint_slack(tc, match)}
        assert report[0] == 0.0


class TestExplainMatch:
    def test_contains_all_sections(self, toy):
        query, tc, graph, _, _, match = toy
        text = explain_match(query, tc, graph, match)
        assert "vertices:" in text
        assert "edges:" in text
        assert "temporal constraints:" in text
        # All query vertices, edges and constraints appear.
        for u in query.vertices():
            assert f"q{u} " in text
        for index in range(query.num_edges):
            assert f"e{index}" in text
        assert text.count("slack") == len(tc)

    def test_vertex_name_mapping(self, toy):
        query, tc, graph, _, vn, match = toy
        inverse = {v: k for k, v in vn.items()}
        text = explain_match(query, tc, graph, match, vertex_names=inverse)
        assert "v1" in text and "v11" in text
        # Raw fallback names like 'v0' should not leak for mapped ids.
        assert "-> 0 " not in text

    def test_callable_names_and_time_format(self, toy):
        query, tc, graph, _, _, match = toy
        text = explain_match(
            query, tc, graph, match,
            vertex_names=lambda v: f"acct-{v}",
            time_format=lambda t: f"{t}h",
        )
        assert "acct-" in text
        assert "h (" in text or "@ " in text

    def test_invalid_match_rejected(self, toy):
        query, tc, graph, _, _, match = toy
        broken = Match(match.edge_map, tuple(reversed(match.vertex_map)))
        with pytest.raises(ValueError, match="invalid match"):
            explain_match(query, tc, graph, broken)

    def test_no_constraints(self, toy):
        from repro.graphs import TemporalConstraints

        query, _, graph, _, _, _ = toy
        empty = TemporalConstraints([], num_edges=query.num_edges)
        match = find_matches(query, empty, graph, algorithm="tcsm-eve").matches[0]
        text = explain_match(query, empty, graph, match)
        assert "temporal constraints: none" in text
