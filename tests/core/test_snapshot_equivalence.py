"""Snapshot-vs-dict backend equivalence, pinned per algorithm.

Every matcher's hot loop is written against the :data:`GraphView` union;
``compile_graph=False`` runs the *identical* code against the mutable
dict-backed builder instead of the compiled CSR snapshot.  Full
enumeration is deterministic, so the two paths must agree byte for byte:
same match multiset, same order, and the same per-filter
:class:`SearchStats` counters — any divergence means an accessor lies on
one backend.
"""

import pytest

from repro.core import MatchOptions, find_matches
from repro.datasets import random_instance
from repro.graphs import (
    QueryBuilder,
    TemporalConstraints,
    TemporalGraphBuilder,
)

#: The paper's three TCSM algorithms, the RI static baseline, one CSM
#: stream baseline, and the oracle — the spread required by the issue.
ALGORITHMS = (
    "tcsm-v2v",
    "tcsm-e2e",
    "tcsm-eve",
    "ri-ds",
    "graphflow",
    "brute-force",
)


def _run_both(algorithm, query, constraints, graph):
    compiled = find_matches(query, constraints, graph, algorithm=algorithm)
    plain = find_matches(
        query, constraints, graph, algorithm=algorithm, compile_graph=False
    )
    return compiled, plain


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_backends_agree_on_random_instances(algorithm, seed):
    query, constraints, graph = random_instance(seed=seed)
    compiled, plain = _run_both(algorithm, query, constraints, graph)
    assert compiled.matches == plain.matches  # same multiset, same order
    assert compiled.stats == plain.stats  # every counter, every filter
    assert compiled.stats.matches == len(compiled.matches)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_backends_agree_with_edge_labels(algorithm):
    qb = QueryBuilder()
    qb.vertex("a", "acct").vertex("b", "acct").vertex("c", "acct")
    qb.edge("a", "b", label="wire")
    qb.edge("b", "c", label="cash")
    query, _ = qb.build()
    constraints = TemporalConstraints([(0, 1, 10)], num_edges=2)

    gb = TemporalGraphBuilder()
    for name in ("w", "x", "y", "z"):
        gb.vertex(name, "acct")
    gb.edge("w", "x", 1, label="wire")
    gb.edge("x", "y", 2, label="cash")
    gb.edge("x", "y", 3, label="wire")  # right pair, wrong edge label
    gb.edge("y", "z", 4, label="wire")
    gb.edge("z", "w", 5, label="cash")
    gb.edge("x", "z", 6)  # unlabeled data edge
    graph, _ = gb.build()

    compiled, plain = _run_both("tcsm-eve", query, constraints, graph)
    assert compiled.matches == plain.matches
    assert compiled.stats == plain.stats
    assert len(compiled.matches) >= 1  # the planted wire→cash chain


@pytest.mark.parametrize("algorithm", ("tcsm-eve", "ri-ds"))
def test_backends_agree_under_match_limit(algorithm):
    query, constraints, graph = random_instance(seed=3)
    compiled = find_matches(
        query, constraints, graph, algorithm=algorithm,
        options=MatchOptions(limit=2),
    )
    plain = find_matches(
        query,
        constraints,
        graph,
        algorithm=algorithm,
        options=MatchOptions(limit=2),
        compile_graph=False,
    )
    # Deterministic order means truncation cuts at the same prefix.
    assert compiled.matches == plain.matches
    assert compiled.stats == plain.stats


def test_precompiled_snapshot_input_matches_builder_input():
    query, constraints, graph = random_instance(seed=4)
    snap = graph.freeze()
    from_builder = find_matches(query, constraints, graph)
    from_snapshot = find_matches(query, constraints, snap)
    assert from_builder.matches == from_snapshot.matches
    assert from_builder.stats == from_snapshot.stats
