"""Extended property-based tests: semantic invariants of TCSM itself.

Beyond matcher/oracle agreement (test_properties.py), these check
mathematical properties of the *problem*, which any correct matcher must
respect:

* gap monotonicity — loosening every constraint gap never loses matches;
* data monotonicity — adding temporal edges never loses matches;
* id-permutation equivariance — renaming data vertices permutes the match
  set accordingly (no hidden dependence on vertex ids);
* estimator soundness — zero estimates iff zero matches on exhaustive
  probing of tiny instances.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core import (
    brute_force_matches,
    count_matches,
    estimate_match_count,
    find_matches,
)
from repro.graphs import QueryGraph, TemporalConstraints, TemporalGraph

LABELS = ("A", "B")


@st.composite
def instances(draw, max_query=3, max_data=6):
    n = draw(st.integers(min_value=2, max_value=max_query))
    labels = [draw(st.sampled_from(LABELS)) for _ in range(n)]
    edges = [(i, i + 1) for i in range(n - 1)]
    possible = [(a, b) for a in range(n) for b in range(n) if a != b]
    for pair in draw(st.lists(st.sampled_from(possible), max_size=2,
                              unique=True)):
        if pair not in edges:
            edges.append(pair)
    query = QueryGraph(labels, edges)

    m = query.num_edges
    triples = []
    seen = set()
    if m >= 2:
        for i, j in draw(
            st.lists(
                st.tuples(st.integers(0, m - 1), st.integers(0, m - 1)).filter(
                    lambda p: p[0] != p[1]
                ),
                max_size=2,
            )
        ):
            if (i, j) not in seen:
                seen.add((i, j))
                triples.append((i, j, draw(st.integers(0, 5))))
    constraints = TemporalConstraints(triples, num_edges=m)

    dn = draw(st.integers(min_value=2, max_value=max_data))
    dlabels = [draw(st.sampled_from(LABELS)) for _ in range(dn)]
    dpossible = [(a, b) for a in range(dn) for b in range(dn) if a != b]
    dedges = draw(
        st.lists(
            st.tuples(st.sampled_from(dpossible), st.integers(0, 8)),
            min_size=1,
            max_size=10,
        )
    )
    graph = TemporalGraph(dlabels, [(u, v, t) for (u, v), t in dedges])
    return query, constraints, graph


@settings(max_examples=60, deadline=None)
@given(instances(), st.integers(1, 5))
def test_gap_monotonicity(instance, extra):
    """Loosening every gap can only add matches."""
    query, tc, graph = instance
    loose = TemporalConstraints(
        [(c.earlier, c.later, c.gap + extra) for c in tc],
        num_edges=tc.num_edges,
    )
    tight_matches = set(find_matches(query, tc, graph).matches)
    loose_matches = set(find_matches(query, loose, graph).matches)
    assert tight_matches <= loose_matches


@settings(max_examples=60, deadline=None)
@given(instances(), st.integers(0, 8))
def test_data_monotonicity(instance, t_new):
    """Adding a temporal edge never removes existing matches."""
    query, tc, graph = instance
    before = set(find_matches(query, tc, graph).matches)
    bigger = TemporalGraph(graph.labels, list(graph.edges()))
    # Add one new edge between the two lowest-id vertices.
    bigger.add_edge(0, 1, t_new + 100)  # timestamp outside existing range
    after = set(find_matches(query, tc, bigger).matches)
    assert before <= after


@settings(max_examples=40, deadline=None)
@given(instances())
def test_vertex_relabeling_equivariance(instance):
    """Reversing data-vertex ids permutes matches correspondingly."""
    query, tc, graph = instance
    n = graph.num_vertices
    perm = {v: n - 1 - v for v in range(n)}
    relabeled = TemporalGraph(
        [graph.label(perm_inv) for perm_inv in reversed(range(n))]
    )
    for edge in graph.edges():
        relabeled.add_edge(perm[edge.u], perm[edge.v], edge.t)
    original = set(find_matches(query, tc, graph).matches)
    mapped = {
        (
            tuple(
                type(e)(perm[e.u], perm[e.v], e.t) for e in match.edge_map
            ),
            tuple(perm[v] for v in match.vertex_map),
        )
        for match in original
    }
    got = {
        (match.edge_map, match.vertex_map)
        for match in find_matches(query, tc, relabeled).matches
    }
    assert got == mapped


@settings(max_examples=30, deadline=None)
@given(instances(max_query=2, max_data=4))
def test_estimator_zero_iff_no_matches(instance):
    query, tc, graph = instance
    exact = count_matches(query, tc, graph)
    estimate = estimate_match_count(query, tc, graph, probes=64, seed=0)
    if exact == 0:
        assert estimate == 0.0
    else:
        assert estimate >= 0.0


@settings(max_examples=50, deadline=None)
@given(instances())
def test_continuous_matcher_agrees_with_oracle(instance):
    query, tc, graph = instance
    oracle = set(brute_force_matches(query, tc, graph))
    got = set(find_matches(query, tc, graph, algorithm="tcsm-stream").matches)
    assert got == oracle
