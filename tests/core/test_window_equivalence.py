"""Property suite: the window kernel and the cost planner change nothing.

Random instances are swept across the full configuration grid — three
TCSM algorithms × plan ``paper``/``cost`` × window kernel on/off × both
graph backends — and every cell must produce the brute-force oracle's
match multiset.  Backend pairs must additionally agree counter-for-
counter on :class:`SearchStats` (the kernel is pure bisect arithmetic on
sorted runs, identical over memoryviews and lists), and the kernel may
only ever *reduce* ``timestamps_expanded``, never change what is found.
"""

import pytest

from repro.core import MatchOptions, brute_force_matches, find_matches
from repro.datasets import random_instance

ALGORITHMS = ("tcsm-v2v", "tcsm-e2e", "tcsm-eve")

#: Instance shapes stressing different kernel paths: the default mix,
#: timestamp-heavy pairs (long runs -> big windows), and tight zero-ish
#: gaps (narrow windows -> most of each run skipped).
SHAPES = {
    "default": {},
    "many_timestamps": {
        "query_vertices": 3,
        "query_edges": 3,
        "num_constraints": 2,
        "data_vertices": 6,
        "data_edges": 60,
        "max_time": 8,
    },
    "tight_gaps": {
        "query_vertices": 4,
        "query_edges": 4,
        "num_constraints": 3,
        "max_gap": 1,
        "data_vertices": 10,
        "data_edges": 50,
    },
}


def _run(query, tc, graph, algorithm, plan, use_kernel, compile_graph):
    return find_matches(
        query,
        tc,
        graph,
        algorithm=algorithm,
        options=MatchOptions(plan=plan),
        use_window_kernel=use_kernel,
        compile_graph=compile_graph,
    )


@pytest.mark.parametrize("shape", sorted(SHAPES))
@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("seed", range(4))
def test_full_configuration_grid(shape, algorithm, seed):
    query, tc, graph = random_instance(seed=seed + 100, **SHAPES[shape])
    oracle = sorted(brute_force_matches(query, tc, graph))
    expanded = {}
    for plan in ("paper", "cost"):
        for use_kernel in (True, False):
            compiled = _run(
                query, tc, graph, algorithm, plan, use_kernel, True
            )
            plain = _run(
                query, tc, graph, algorithm, plan, use_kernel, False
            )
            label = f"{algorithm}/{plan}/kernel={use_kernel}"
            assert sorted(compiled.matches) == oracle, label
            # Backends must agree on the multiset and on every
            # SearchStats counter (enumeration *order* may differ on
            # multigraph-heavy instances — a pre-existing property of
            # the backends' neighbour iteration, not of the kernel).
            assert sorted(plain.matches) == oracle, label
            assert compiled.stats == plain.stats, label
            if not use_kernel:
                assert compiled.stats.timestamps_skipped == 0, label
            expanded[(plan, use_kernel)] = compiled.stats.timestamps_expanded
    for plan in ("paper", "cost"):
        # The kernel never materialises more than the unwindowed paths.
        assert expanded[(plan, True)] <= expanded[(plan, False)], plan


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("seed", range(4))
def test_kernel_is_on_by_default(algorithm, seed):
    query, tc, graph = random_instance(seed=seed + 200)
    default = find_matches(query, tc, graph, algorithm=algorithm)
    explicit = _run(query, tc, graph, algorithm, "paper", True, True)
    assert default.matches == explicit.matches
    assert default.stats == explicit.stats


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("seed", [300, 304, 306])
def test_kernel_actually_skips_on_run_heavy_instances(algorithm, seed):
    # On a run-heavy instance with matches the kernel must actually skip
    # something, otherwise this suite proves nothing about the windowed
    # paths (seeds chosen so every algorithm both matches and skips).
    query, tc, graph = random_instance(
        seed=seed, **SHAPES["many_timestamps"]
    )
    on = _run(query, tc, graph, algorithm, "paper", True, True)
    off = _run(query, tc, graph, algorithm, "paper", False, True)
    assert on.stats.matches == off.stats.matches > 0
    assert on.stats.timestamps_skipped > 0
    assert on.stats.timestamps_expanded < off.stats.timestamps_expanded
