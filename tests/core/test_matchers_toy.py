"""All matchers on the paper's toy example (Figure 2, Examples 1-8)."""

import pytest

from repro.core import MatchOptions, find_matches, is_valid_match
from repro.datasets import TOY_EXPECTED_MATCH_COUNT, toy_instance

ALGORITHMS = ("brute-force", "tcsm-v2v", "tcsm-e2e", "tcsm-eve")


@pytest.fixture(scope="module")
def toy():
    return toy_instance()


@pytest.fixture(scope="module")
def results(toy):
    query, tc, graph, _, _ = toy
    return {
        algo: find_matches(query, tc, graph, algorithm=algo)
        for algo in ALGORITHMS
    }


class TestCorrectness:
    @pytest.mark.parametrize("algo", ALGORITHMS)
    def test_match_count(self, results, algo):
        assert results[algo].num_matches == TOY_EXPECTED_MATCH_COUNT

    @pytest.mark.parametrize("algo", ALGORITHMS)
    def test_matches_are_valid(self, toy, results, algo):
        query, tc, graph, _, _ = toy
        for match in results[algo].matches:
            assert is_valid_match(query, tc, graph, match)

    def test_all_algorithms_agree_exactly(self, results):
        reference = set(results["brute-force"].matches)
        for algo in ALGORITHMS[1:]:
            assert set(results[algo].matches) == reference

    def test_red_match_found(self, toy, results):
        query, tc, graph, qn, vn = toy
        red_vertex_map = tuple(
            vn[v] for v in ("v1", "v2", "v3", "v7", "v11")
        )
        vertex_maps = {m.vertex_map for m in results["tcsm-eve"].matches}
        assert vertex_maps == {red_vertex_map}

    def test_blue_distractor_rejected(self, toy, results):
        # The embedding u3,u4,u5 -> v6,v10,v12 is structurally valid but
        # violates tc5; no match may use v6.
        query, tc, graph, qn, vn = toy
        for match in results["tcsm-eve"].matches:
            assert vn["v6"] not in match.vertex_map


class TestStats:
    def test_edge_based_fails_less_than_vertex_based(self, results):
        # The qualitative claim of Exp-9: edge-based matching fails less.
        v2v = results["tcsm-v2v"].stats
        e2e = results["tcsm-e2e"].stats
        eve = results["tcsm-eve"].stats
        assert e2e.failed_enumerations < v2v.failed_enumerations
        assert eve.failed_enumerations <= e2e.failed_enumerations

    def test_first_fail_layer_recorded(self, results):
        for algo in ("tcsm-v2v", "tcsm-e2e", "tcsm-eve"):
            stats = results[algo].stats
            assert stats.first_fail_layer is not None
            assert stats.first_fail_layer >= 1
            assert sum(stats.fail_layers.values()) == stats.failed_enumerations

    def test_match_counter(self, results):
        for algo in ALGORITHMS:
            assert results[algo].stats.matches == TOY_EXPECTED_MATCH_COUNT

    def test_phase_timings_nonnegative(self, results):
        for algo in ALGORITHMS:
            assert results[algo].build_seconds >= 0
            assert results[algo].match_seconds >= 0
            assert results[algo].total_seconds >= results[algo].build_seconds


class TestLimits:
    @pytest.mark.parametrize("algo", ALGORITHMS)
    def test_limit_one(self, toy, algo):
        query, tc, graph, _, _ = toy
        result = find_matches(query, tc, graph, algorithm=algo,
                              options=MatchOptions(limit=1))
        assert result.num_matches == 1
        assert result.stats.budget_exhausted

    @pytest.mark.parametrize("algo", ALGORITHMS)
    def test_limit_larger_than_result(self, toy, algo):
        query, tc, graph, _, _ = toy
        result = find_matches(query, tc, graph, algorithm=algo,
                              options=MatchOptions(limit=100))
        assert result.num_matches == TOY_EXPECTED_MATCH_COUNT
        assert not result.stats.budget_exhausted

    def test_collect_matches_false_still_counts(self, toy):
        query, tc, graph, _, _ = toy
        result = find_matches(
            query, tc, graph, algorithm="tcsm-eve",
            options=MatchOptions(collect_matches=False),
        )
        assert result.matches == []
        assert result.stats.matches == TOY_EXPECTED_MATCH_COUNT


class TestOptions:
    def test_tighten_preserves_matches(self, toy):
        query, tc, graph, _, _ = toy
        for algo in ALGORITHMS[1:]:
            plain = find_matches(query, tc, graph, algorithm=algo)
            tightened = find_matches(
                query, tc, graph, algorithm=algo,
                options=MatchOptions(tighten=True),
            )
            assert set(plain.matches) == set(tightened.matches)

    def test_v2v_without_candidate_intersection(self, toy):
        query, tc, graph, _, _ = toy
        result = find_matches(
            query, tc, graph, algorithm="tcsm-v2v", intersect_candidates=False
        )
        assert result.num_matches == TOY_EXPECTED_MATCH_COUNT

    def test_e2e_without_candidate_intersection(self, toy):
        query, tc, graph, _, _ = toy
        result = find_matches(
            query, tc, graph, algorithm="tcsm-e2e", intersect_candidates=False
        )
        assert result.num_matches == TOY_EXPECTED_MATCH_COUNT

    def test_v2v_set_based_nlf(self, toy):
        query, tc, graph, _, _ = toy
        result = find_matches(
            query, tc, graph, algorithm="tcsm-v2v", count_based_nlf=False
        )
        assert result.num_matches == TOY_EXPECTED_MATCH_COUNT

    def test_v2v_without_stn_windows(self, toy):
        query, tc, graph, _, _ = toy
        result = find_matches(
            query, tc, graph, algorithm="tcsm-v2v", use_windows=False
        )
        assert result.num_matches == TOY_EXPECTED_MATCH_COUNT
