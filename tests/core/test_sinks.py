"""Unit tests for the pluggable result sinks (`repro.core.sinks`)."""

import random

import pytest

from repro.core.sinks import (
    BoundedQueueSink,
    CollectSink,
    CountSink,
    StopEnumeration,
    TopKEarliestSink,
    build_sink,
    drain_into_sink,
    match_sort_key,
)
from repro.core.match import Match
from repro.core.stats import SearchStats
from repro.errors import AlgorithmError
from repro.graphs import TemporalEdge


def make_match(times, vertices=None):
    """A two-edge match with the given per-edge timestamps."""
    if vertices is None:
        vertices = (0, 1, 2)
    edges = (
        TemporalEdge(vertices[0], vertices[1], times[0]),
        TemporalEdge(vertices[1], vertices[2], times[1]),
    )
    return Match(edge_map=edges, vertex_map=tuple(vertices))


class TestMatchSortKey:
    def test_primary_key_is_latest_edge_time(self):
        late_first_edge = make_match((9, 10))
        early_everywhere = make_match((1, 2))
        assert match_sort_key(early_everywhere) < match_sort_key(
            late_first_edge
        )

    def test_ties_break_on_timestamp_vector_then_vertices(self):
        a = make_match((1, 5))
        b = make_match((2, 5))
        assert match_sort_key(a) < match_sort_key(b)
        same_times_other_vertices = make_match((1, 5), vertices=(3, 4, 5))
        assert match_sort_key(a) < match_sort_key(same_times_other_vertices)

    def test_total_order_is_deterministic(self):
        rng = random.Random(5)
        matches = [
            make_match(
                (rng.randrange(10), rng.randrange(10)),
                vertices=(i, i + 1, i + 2),
            )
            for i in range(30)
        ]
        once = sorted(matches, key=match_sort_key)
        again = sorted(list(reversed(matches)), key=match_sort_key)
        assert once == again


class TestCollectSink:
    def test_collects_in_emission_order(self):
        sink = CollectSink()
        emitted = [make_match((3, 4)), make_match((1, 2))]
        for m in emitted:
            sink.accept(m)
        assert sink.finish() == emitted

    def test_limit_raises_stop_on_kth_match(self):
        sink = CollectSink(limit=2)
        sink.accept(make_match((1, 2)))
        with pytest.raises(StopEnumeration):
            sink.accept(make_match((3, 4)))
        assert len(sink.finish()) == 2

    def test_limit_zero_is_satisfied_immediately(self):
        sink = CollectSink(limit=0)
        with pytest.raises(StopEnumeration):
            sink.accept(make_match((1, 2)))
        assert sink.finish() == []

    def test_ordered_finish_sorts_by_sort_key(self):
        sink = CollectSink(ordered=True)
        sink.accept(make_match((9, 10)))
        sink.accept(make_match((1, 2)))
        out = sink.finish()
        assert [match_sort_key(m) for m in out] == sorted(
            match_sort_key(m) for m in out
        )

    def test_negative_limit_rejected(self):
        with pytest.raises(AlgorithmError):
            CollectSink(limit=-1)


class TestCountSink:
    def test_counts_without_retaining(self):
        sink = CountSink()
        for i in range(5):
            sink.accept(make_match((i, i + 1)))
        assert sink.count == 5
        assert sink.finish() == []

    def test_limit_stops_counting(self):
        sink = CountSink(limit=3)
        sink.accept(make_match((1, 2)))
        sink.accept(make_match((1, 2)))
        with pytest.raises(StopEnumeration):
            sink.accept(make_match((1, 2)))
        assert sink.count == 3


class TestTopKEarliestSink:
    def test_keeps_k_earliest_of_any_emission_order(self):
        rng = random.Random(17)
        matches = [
            make_match(
                (rng.randrange(100), rng.randrange(100)),
                vertices=(i, i + 1, i + 2),
            )
            for i in range(50)
        ]
        sink = TopKEarliestSink(7)
        for m in matches:
            sink.accept(m)  # never raises: must see everything
        expected = sorted(matches, key=match_sort_key)[:7]
        assert sink.finish() == expected
        assert sink.overflowed

    def test_underfull_heap_returns_everything_sorted(self):
        sink = TopKEarliestSink(10)
        sink.accept(make_match((5, 6)))
        sink.accept(make_match((1, 2)))
        out = sink.finish()
        assert len(out) == 2
        assert match_sort_key(out[0]) < match_sort_key(out[1])
        assert not sink.overflowed

    def test_k_zero_counts_but_keeps_nothing(self):
        sink = TopKEarliestSink(0)
        sink.accept(make_match((1, 2)))
        assert sink.finish() == []
        assert sink.seen == 1
        assert sink.overflowed


class TestBoundedQueueSink:
    def test_drop_oldest_counts_drops(self):
        sink = BoundedQueueSink(2)
        for item in ("a", "b", "c", "d"):
            sink.accept(item)
        assert sink.dropped == 2
        assert sink.finish() == ["c", "d"]

    def test_drain_partial_then_rest(self):
        sink = BoundedQueueSink(10)
        for item in range(5):
            sink.accept(item)
        assert sink.drain(2) == [0, 1]
        assert len(sink) == 3
        assert sink.drain() == [2, 3, 4]
        assert len(sink) == 0

    def test_drain_clamps_nonpositive_and_overlong(self):
        sink = BoundedQueueSink(10)
        sink.accept("x")
        assert sink.drain(0) == []
        assert sink.drain(99) == ["x"]

    def test_capacity_must_be_positive(self):
        with pytest.raises(AlgorithmError):
            BoundedQueueSink(0)


class TestBuildSink:
    def test_count_mode_and_collect_false_give_count_sink(self):
        assert isinstance(build_sink(mode="count"), CountSink)
        assert isinstance(build_sink(collect=False), CountSink)

    def test_earliest_with_limit_gives_bounded_heap(self):
        sink = build_sink(order_by="earliest", limit=4)
        assert isinstance(sink, TopKEarliestSink)
        assert sink.k == 4

    def test_earliest_without_limit_gives_ordered_collect(self):
        sink = build_sink(order_by="earliest")
        assert isinstance(sink, CollectSink)
        assert sink.ordered

    def test_default_is_plain_collect(self):
        sink = build_sink(limit=3)
        assert isinstance(sink, CollectSink)
        assert not sink.ordered
        assert sink.limit == 3

    def test_estimate_mode_never_reaches_a_sink(self):
        with pytest.raises(AlgorithmError):
            build_sink(mode="estimate")


class TestDrainIntoSink:
    def test_closes_generator_on_early_exit(self):
        closed = []

        def producer():
            try:
                for i in range(100):
                    yield make_match((i, i + 1))
            finally:
                closed.append(True)

        stats = SearchStats()
        sink = CollectSink(limit=3)
        drain_into_sink(producer(), sink, stats)
        assert closed == [True]
        assert len(sink.finish()) == 3
        assert stats.limit_hit
        assert stats.budget_exhausted

    def test_exhausted_generator_sets_no_stop_flags(self):
        stats = SearchStats()
        sink = CollectSink()
        drain_into_sink(
            iter([make_match((1, 2)), make_match((3, 4))]), sink, stats
        )
        assert len(sink.finish()) == 2
        assert not stats.limit_hit
        assert not stats.budget_exhausted

    def test_deadline_hit_suppresses_limit_flag(self):
        stats = SearchStats()
        stats.deadline_hit = True
        sink = CollectSink(limit=1)
        drain_into_sink(
            iter([make_match((1, 2)), make_match((3, 4))]), sink, stats
        )
        assert stats.budget_exhausted
        assert not stats.limit_hit
