"""Tests for the joint timestamp-assignment solver."""

import itertools

import pytest

from repro.core import (
    count_timestamp_assignments,
    iter_timestamp_assignments,
    windows_compatible,
)
from repro.graphs import TemporalConstraints


def naive_assignments(options, constraints):
    """Reference: full cartesian product with constraint re-checks."""
    result = []
    for times in itertools.product(*options):
        if all(
            c.is_satisfied(times[c.earlier], times[c.later])
            for c in constraints
        ):
            result.append(tuple(times))
    return sorted(result)


class TestWindowsCompatible:
    def test_exact_pair_exists(self):
        assert windows_compatible([1, 5], [4, 9], gap=3)

    def test_ordering_matters(self):
        # Later must be >= earlier.
        assert not windows_compatible([10], [5], gap=100)

    def test_gap_boundary(self):
        assert windows_compatible([0], [7], gap=7)
        assert not windows_compatible([0], [8], gap=7)

    def test_empty_inputs(self):
        assert not windows_compatible([], [1, 2], gap=5)
        assert not windows_compatible([1, 2], [], gap=5)

    def test_zero_gap_requires_equality(self):
        assert windows_compatible([3, 7], [7], gap=0)
        assert not windows_compatible([3, 8], [7], gap=0)


class TestIterAssignments:
    def test_matches_naive_enumeration(self):
        options = [(1, 4, 9), (2, 5), (3, 6, 8)]
        tc = TemporalConstraints([(0, 1, 4), (1, 2, 3)], num_edges=3)
        got = sorted(iter_timestamp_assignments(options, tc))
        assert got == naive_assignments(options, tc)

    def test_windows_off_matches_windows_on(self):
        options = [(1, 4, 9), (2, 5), (3, 6, 8), (0, 10)]
        tc = TemporalConstraints(
            [(0, 1, 4), (1, 2, 3), (0, 3, 9)], num_edges=4
        )
        on = sorted(iter_timestamp_assignments(options, tc, use_windows=True))
        off = sorted(iter_timestamp_assignments(options, tc, use_windows=False))
        assert on == off == naive_assignments(options, tc)

    def test_unconstrained_edges_multiply(self):
        options = [(1, 2), (5, 6, 7)]
        tc = TemporalConstraints([], num_edges=2)
        assert count_timestamp_assignments(options, tc) == 6

    def test_empty_option_list_yields_nothing(self):
        options = [(1, 2), ()]
        tc = TemporalConstraints([], num_edges=2)
        assert count_timestamp_assignments(options, tc) == 0

    def test_arity_mismatch_raises(self):
        tc = TemporalConstraints([], num_edges=3)
        with pytest.raises(ValueError, match="option lists"):
            list(iter_timestamp_assignments([(1,)], tc))

    def test_infeasible_combination(self):
        # t1 - t0 in [0, 1] but closest timestamps differ by 5.
        options = [(0,), (5,)]
        tc = TemporalConstraints([(0, 1, 1)], num_edges=2)
        assert count_timestamp_assignments(options, tc) == 0

    def test_transitive_pruning_correct(self):
        # Chain 0 -> 1 -> 2 with small gaps; implied window on (0, 2).
        options = [tuple(range(0, 30, 3))] * 3
        tc = TemporalConstraints([(0, 1, 3), (1, 2, 3)], num_edges=3)
        got = sorted(iter_timestamp_assignments(options, tc))
        assert got == naive_assignments(options, tc)

    def test_randomized_against_naive(self):
        import random

        rng = random.Random(42)
        for _ in range(25):
            m = rng.randint(2, 4)
            options = [
                tuple(sorted(rng.sample(range(20), rng.randint(1, 4))))
                for _ in range(m)
            ]
            pairs = [
                (i, j) for i in range(m) for j in range(m) if i != j
            ]
            rng.shuffle(pairs)
            seen = set()
            triples = []
            for i, j in pairs[: rng.randint(0, m)]:
                if (i, j) not in seen:
                    seen.add((i, j))
                    triples.append((i, j, rng.randint(0, 8)))
            tc = TemporalConstraints(triples, num_edges=m)
            got = sorted(iter_timestamp_assignments(options, tc))
            assert got == naive_assignments(options, tc)
