"""Property-based tests (hypothesis) for the core invariants.

Random TCSM instances are generated structurally (not from the seeded
helpers, so hypothesis can shrink) and the key library invariants are
checked: matcher/oracle agreement, match validity, order-construction
invariants, and STN-closure neutrality.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core import (
    MatchOptions,
    brute_force_matches,
    build_tcq,
    build_tcq_plus,
    find_matches,
    is_valid_match,
)
from repro.graphs import QueryGraph, TemporalConstraints, TemporalGraph

LABELS = ("A", "B")


@st.composite
def query_graphs(draw):
    n = draw(st.integers(min_value=2, max_value=4))
    labels = [draw(st.sampled_from(LABELS)) for _ in range(n)]
    possible = [(a, b) for a in range(n) for b in range(n) if a != b]
    # Always include a spanning path so the query is connected.
    edges = [(i, i + 1) for i in range(n - 1)]
    extra = draw(
        st.lists(st.sampled_from(possible), max_size=3, unique=True)
    )
    for pair in extra:
        if pair not in edges:
            edges.append(pair)
    return QueryGraph(labels, edges)


@st.composite
def constraint_sets(draw, query):
    m = query.num_edges
    if m < 2:
        return TemporalConstraints([], num_edges=m)
    pairs = draw(
        st.lists(
            st.tuples(
                st.integers(0, m - 1), st.integers(0, m - 1)
            ).filter(lambda p: p[0] != p[1]),
            max_size=3,
        )
    )
    seen = set()
    triples = []
    for i, j in pairs:
        if (i, j) in seen:
            continue
        seen.add((i, j))
        triples.append((i, j, draw(st.integers(0, 6))))
    return TemporalConstraints(triples, num_edges=m)


@st.composite
def temporal_graphs(draw):
    n = draw(st.integers(min_value=2, max_value=7))
    labels = [draw(st.sampled_from(LABELS)) for _ in range(n)]
    possible = [(a, b) for a in range(n) for b in range(n) if a != b]
    edges = draw(
        st.lists(
            st.tuples(st.sampled_from(possible), st.integers(0, 10)),
            min_size=1,
            max_size=14,
        )
    )
    return TemporalGraph(labels, [(u, v, t) for (u, v), t in edges])


@st.composite
def instances(draw):
    query = draw(query_graphs())
    constraints = draw(constraint_sets(query))
    graph = draw(temporal_graphs())
    return query, constraints, graph


@settings(max_examples=120, deadline=None)
@given(instances())
def test_matchers_agree_with_oracle(instance):
    query, tc, graph = instance
    oracle = set(brute_force_matches(query, tc, graph))
    for algo in ("tcsm-v2v", "tcsm-e2e", "tcsm-eve"):
        got = set(find_matches(query, tc, graph, algorithm=algo).matches)
        assert got == oracle


@settings(max_examples=120, deadline=None)
@given(instances())
def test_every_reported_match_is_valid(instance):
    query, tc, graph = instance
    for algo in ("tcsm-v2v", "tcsm-e2e", "tcsm-eve"):
        for match in find_matches(query, tc, graph, algorithm=algo).matches:
            assert is_valid_match(query, tc, graph, match)


@settings(max_examples=120, deadline=None)
@given(instances())
def test_stn_closure_never_changes_matches(instance):
    query, tc, graph = instance
    plain = set(find_matches(query, tc, graph, algorithm="tcsm-eve").matches)
    tightened = set(
        find_matches(
            query, tc, graph, algorithm="tcsm-eve",
            options=MatchOptions(tighten=True),
        ).matches
    )
    assert plain == tightened


@settings(max_examples=150, deadline=None)
@given(instances())
def test_tcq_order_invariants(instance):
    query, tc, _ = instance
    tcq = build_tcq(query, tc)
    assert sorted(tcq.order) == list(range(query.num_vertices))
    for pos in range(1, query.num_vertices):
        u = tcq.order[pos]
        if tcq.prec[pos] is not None:
            assert tcq.position[tcq.prec[pos]] < pos
            assert tcq.prec[pos] in query.neighbors(u)


@settings(max_examples=150, deadline=None)
@given(instances())
def test_tcq_plus_order_invariants(instance):
    query, tc, _ = instance
    tcq = build_tcq_plus(query, tc)
    assert sorted(tcq.order) == list(range(query.num_edges))
    covered: set[int] = set()
    for pos, e in enumerate(tcq.order):
        endpoints = set(query.edge(e))
        assert set(tcq.new_vertices[pos]) == endpoints - covered
        covered |= endpoints
    # Every constraint is placed exactly once.
    placed = [c for cs in tcq.check_at for c in cs]
    assert sorted(placed) == sorted(tc.constraints)


@settings(max_examples=80, deadline=None)
@given(instances(), st.integers(1, 4))
def test_limit_is_prefix_of_full_run(instance, limit):
    query, tc, graph = instance
    full = find_matches(query, tc, graph, algorithm="tcsm-eve").matches
    limited = find_matches(
        query, tc, graph, algorithm="tcsm-eve",
        options=MatchOptions(limit=limit),
    ).matches
    assert limited == full[: min(limit, len(full))]
